#!/usr/bin/env python
"""CI chaos harness: failpoint-killed workers under concurrent load.

The fault-tolerance acceptance run.  An in-process query server (real
sockets, real batcher, a real 2-way worker pool, a durable journal) is
driven by a verifying closed-loop load — every response is compared
bit-for-bit against a sequential reference engine — while deterministic
failpoints (:mod:`repro.faults`) attack it in three phases:

1. **Crash storm** — ``worker.before_task=crash@0.25#2``: each worker
   (and each respawned generation, on its own seeded schedule) has a 25%
   chance per task of dying by SIGKILL.  The pool must heal in place,
   re-dispatching lost shards; when a batch exhausts its crash budget
   the engine retries on a fresh pool and ultimately falls back to
   bit-identical sequential execution.  Every response must still be
   correct; at least two worker deaths must be observed.

2. **Stall** — ``worker.before_result=sleep(60)#3*1``: a worker hangs
   far past the batch deadline.  The deadline must kill the stuck
   worker and fail over; no request may take anywhere near the stall
   length.  At least one batch timeout must be observed.

3. **Recovery** — failpoints cleared, circuit breaker reset: the server
   must answer from a healthy, non-degraded pool again.

Afterwards the server is shut down and /dev/shm is checked for leaked
``repro_*`` / ``psm_*`` segments.  Any mismatched response, any request
exceeding the hang limit, any missing health counter, or any leak exits
non-zero.  The surrounding CI job adds ``timeout-minutes`` as the
outer hang watchdog.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import faults  # noqa: E402
from repro.core import ReverseKRanksEngine  # noqa: E402
from repro.serve.bootstrap import parse_fixture  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.journal import DurableIndexStore  # noqa: E402
from repro.serve.server import QueryServer, ServeConfig  # noqa: E402

#: A request taking longer than this means the deadline machinery failed
#: (the injected stall is 60s; a handled timeout resolves in a couple of
#: batch_timeout rounds).
HANG_LIMIT_S = 30.0


def shm_segments():
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return set()
    return {n for n in names if n.startswith(("repro_", "psm_"))}


def build_reference(graph, queries, k, algorithm):
    """Sequential ground truth: node -> [(node, rank), ...]."""
    engine = ReverseKRanksEngine(graph)
    engine.build_index(num_hubs=3, capacity=16)
    results = engine.query_many(list(queries), k, algorithm=algorithm)
    return {
        query: result.as_pairs() for query, result in zip(queries, results)
    }


def drive_load(
    host,
    port,
    expected,
    k,
    algorithm,
    num_clients,
    requests_per_client,
    queries_per_request,
):
    """Verifying closed loop: every response must equal the reference.

    Returns ``(queries_sent, mismatches, failures, max_request_s)``.
    Client-level retries absorb overload backpressure; anything else a
    request raises is a failure (the server must keep answering through
    the chaos, not shed errors).
    """
    nodes = sorted(expected)
    lock = threading.Lock()
    mismatches = []
    failures = []
    max_elapsed = [0.0]
    sent = [0]

    def client_loop(client_id):
        try:
            with ServeClient(
                host=host, port=port, timeout=120.0,
                retries=100, backoff_s=0.005,
            ) as client:
                cursor = client_id
                for _ in range(requests_per_client):
                    batch = [
                        nodes[(cursor + j) % len(nodes)]
                        for j in range(queries_per_request)
                    ]
                    cursor += queries_per_request
                    started = time.perf_counter()
                    answers = client.query_many(batch, k=k, algorithm=algorithm)
                    elapsed = time.perf_counter() - started
                    with lock:
                        sent[0] += len(batch)
                        max_elapsed[0] = max(max_elapsed[0], elapsed)
                        for query, answer in zip(batch, answers):
                            if answer != expected[query]:
                                mismatches.append((client_id, query))
        except BaseException as exc:  # noqa: BLE001 - tallied, not raised
            with lock:
                failures.append(f"client {client_id}: {exc!r}")

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return sent[0], mismatches, failures, max_elapsed[0]


def run_update_crash_phase(seed, summary, problems):
    """Phase 4: a worker dies holding the graph-sync broadcast.

    ``engine.apply_updates`` ships each mutation batch to the live pool
    as an overlay side-table + repaired-index broadcast.  With a crash
    armed on every second worker task, the pool dies exactly when that
    broadcast arrives; the engine must degrade (drop the pool, report
    ``pool_synced=False``) without surfacing an error, keep answering
    bit-identically to a from-scratch engine over an identically-mutated
    shadow graph, and — once the chaos is cleared — sync the next update
    into a fresh pool in place.
    """
    workload = parse_fixture("gnp:60:13")
    graph = workload.graph
    shadow = graph.copy()
    engine = ReverseKRanksEngine(graph)
    engine.build_index(num_hubs=3, capacity=8)
    engine.parallel_min_batch = 1
    queries = sorted(graph.nodes())[:10]
    phase = {"mismatches": 0, "degrades": 0, "in_place_syncs": 0}

    def verify():
        reference = ReverseKRanksEngine(shadow)
        reference.compact_graph()
        expected = reference.query_many(queries, 6, algorithm="dynamic")
        actual = engine.query_many(queries, 6, algorithm="dynamic")
        for want, got in zip(expected, actual):
            if want.as_pairs() != got.as_pairs():
                phase["mismatches"] += 1

    try:
        with engine:
            # Armed before the pool forks: task 1 per worker is the warm
            # query shard, the graph broadcast is task 2.
            faults.configure("worker.before_task=crash#2", seed=seed)
            engine.query_many(
                queries, 6, algorithm="dynamic",
                workers=2, worker_context="fork",
            )
            edges = sorted(graph.edges())
            report = engine.apply_updates(
                [("remove_edge", edges[0][0], edges[0][1])]
            )
            shadow.remove_edge(edges[0][0], edges[0][1])
            if report.pool_synced or engine._pool is not None:
                problems.append(
                    "update_crash: broadcast to crashed workers did not "
                    "degrade the pool"
                )
            else:
                phase["degrades"] += 1
            faults.clear()
            verify()

            # Chaos off: fresh pool, and the next update must sync in
            # place instead of tearing it down.
            engine.query_many(
                queries, 6, algorithm="dynamic",
                workers=2, worker_context="fork",
            )
            report = engine.apply_updates(
                [("add_edge", edges[1][0], edges[2][1], 0.7)]
            )
            shadow.add_edge(edges[1][0], edges[2][1], 0.7)
            if not report.pool_synced:
                problems.append(
                    "update_crash: post-recovery update did not sync the "
                    "live pool in place"
                )
            else:
                phase["in_place_syncs"] += 1
            verify()
    finally:
        faults.clear()
    if phase["mismatches"]:
        problems.append(
            f"update_crash: {phase['mismatches']} responses differed from "
            "the mutated-shadow reference"
        )
    summary["phases"]["update_crash"] = phase


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python scripts/chaos_smoke.py")
    parser.add_argument("--fixture", default="gnp:120:11")
    parser.add_argument("--k", type=int, default=6)
    parser.add_argument("--algorithm", default="dynamic")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--requests", type=int, default=13, help="phase-1 requests per client"
    )
    parser.add_argument("--queries-per-request", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--batch-timeout", type=float, default=2.0)
    args = parser.parse_args(argv)

    if "fork" not in multiprocessing.get_all_start_methods():
        print("SKIP: chaos smoke needs the fork start method", flush=True)
        return 0

    shm_before = shm_segments()
    workload = parse_fixture(args.fixture)
    graph = workload.graph
    nodes = sorted(graph.nodes())
    expected = build_reference(graph, nodes, args.k, args.algorithm)

    engine = ReverseKRanksEngine(graph)
    engine.build_index(num_hubs=3, capacity=16)
    engine.parallel_min_batch = 1  # every coalesced batch rides the pool
    summary = {"fixture": args.fixture, "phases": {}}

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        store = DurableIndexStore(Path(tmp) / "state")
        store.install(engine.index)
        config = ServeConfig(
            workers=2,
            worker_context="fork",
            max_batch=32,
            max_wait_ms=2.0,
            max_pending=max(64, args.clients * 4),
            batch_timeout_s=args.batch_timeout,
            on_pool_failure="retry",
        )
        server = QueryServer(engine, config=config, store=store).start()
        problems = []
        try:
            host, port = server.address

            def run_phase(name, clients, requests):
                sent, mismatches, failures, slowest = drive_load(
                    host, port, expected, args.k, args.algorithm,
                    clients, requests, args.queries_per_request,
                )
                with ServeClient(host=host, port=port) as probe:
                    health = probe.health()
                summary["phases"][name] = {
                    "queries": sent,
                    "mismatches": len(mismatches),
                    "failures": failures,
                    "slowest_request_s": round(slowest, 3),
                    "worker_crashes": health["worker_crashes"],
                    "worker_respawns": health["worker_respawns"],
                    "worker_timeouts": health["worker_timeouts"],
                    "degraded": health["degraded"],
                }
                if mismatches:
                    problems.append(
                        f"{name}: {len(mismatches)} responses differed "
                        "from the sequential reference"
                    )
                if failures:
                    problems.append(f"{name}: request failures: {failures}")
                if slowest > HANG_LIMIT_S:
                    problems.append(
                        f"{name}: a request took {slowest:.1f}s "
                        f"(hang limit {HANG_LIMIT_S}s)"
                    )
                return health

            # Phase 1: crash storm.
            faults.configure(
                "worker.before_task=crash@0.25#2", seed=args.seed
            )
            health = run_phase("crash_storm", args.clients, args.requests)
            if health["worker_crashes"] < 2:
                problems.append(
                    "crash_storm: expected >= 2 worker deaths, saw "
                    f"{health['worker_crashes']}"
                )

            # Phase 2: a worker stalls past the batch deadline.  Fresh
            # pool + reset breaker so the phase tests the deadline, not
            # phase 1's leftovers.
            engine.close_pool()
            engine.reset_parallel_breaker()
            faults.configure(
                "worker.before_result=sleep(60)#3*1", seed=args.seed
            )
            health = run_phase("stall", max(2, args.clients // 2), 4)
            if health["worker_timeouts"] < 1:
                problems.append(
                    "stall: expected >= 1 batch deadline kill, saw "
                    f"{health['worker_timeouts']}"
                )

            # Phase 3: chaos off; the server must be healthy again.
            faults.clear()
            engine.close_pool()
            engine.reset_parallel_breaker()
            health = run_phase("recovery", args.clients, 4)
            if health["degraded"]:
                problems.append("recovery: engine still degraded")
            if not health["pool_active"] or health["pool_alive"] != 2:
                problems.append(
                    f"recovery: pool not fully alive: {health}"
                )
        finally:
            faults.clear()
            server.stop()
            store.close()

    # Phase 4: worker crash during an incremental-update broadcast
    # (self-contained engine; the server phases above keep their
    # pre-built reference answers, which mutations would invalidate).
    run_update_crash_phase(args.seed, summary, problems)

    leaked = shm_segments() - shm_before
    if leaked:
        problems.append(f"leaked /dev/shm segments: {sorted(leaked)}")
    summary["problems"] = problems
    json.dump(summary, sys.stdout, indent=2)
    sys.stdout.write("\n")
    if problems:
        print("CHAOS SMOKE FAILED", file=sys.stderr)
        return 1
    print("chaos smoke passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
