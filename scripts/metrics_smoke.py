#!/usr/bin/env python
"""CI smoke for the observability layer: scrape a loaded 2-worker server.

The in-process test suite covers every obs component; this script is the
*process-level* rehearsal CI runs on top of it:

1. boot ``python -m repro.serve --workers 2 --metrics-port 0 --trace`` on
   a seeded fixture graph with a durable state directory;
2. drive concurrent queries through real sockets while scraping the
   plain-HTTP ``/metrics`` endpoint twice mid-load, asserting (a) every
   required metric family is present in one scrape — batcher flush
   causes, per-policy pool batch latency, worker respawn/timeout
   counters, journal fsync latency, codec IPC bytes — and (b) the
   serve/query counters are monotone across the two scrapes;
3. fetch the last batch trace via the framed-JSON ``trace`` op and
   assert the parent + worker spans are stitched under one trace id with
   every worker span contained in the parent batch duration;
4. stop the server gracefully (a live pool must not orphan its
   shared-memory graph segment — the workflow's /dev/shm check follows).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient  # noqa: E402

#: Families a loaded 2-worker traced run must expose in one scrape.
REQUIRED_FAMILIES = (
    "repro_serve_requests_total",
    "repro_serve_batches_total",
    "repro_serve_flushes_total",
    "repro_serve_batch_queries_bucket",
    "repro_query_batches_total",
    "repro_queries_total",
    "repro_shard_plans_total",
    "repro_pool_batches_total",
    "repro_pool_batch_seconds_bucket",
    "repro_worker_crashes_total",
    "repro_worker_respawns_total",
    "repro_worker_timeouts_total",
    "repro_ipc_bytes_total",
    "repro_journal_appends_total",
    "repro_journal_fsync_seconds_bucket",
    "repro_journal_size_bytes",
)

#: Counters whose samples must be monotone between the two scrapes.
MONOTONE_SAMPLES = (
    "repro_serve_requests_total",
    "repro_serve_queries_total",
    "repro_serve_batches_total",
    "repro_journal_appends_total",
)


def start_server(args, state_dir):
    """Launch the serve CLI; wait for its READY and METRICS lines."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--fixture",
            args.fixture,
            "--state-dir",
            str(state_dir),
            "--workers",
            "2",
            "--max-batch",
            "16",
            "--max-wait-ms",
            "4",
            "--default-algorithm",
            "indexed",
            "--default-k",
            str(args.k),
            "--metrics-port",
            "0",
            "--trace",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    deadline = time.monotonic() + args.boot_timeout
    endpoint = metrics_endpoint = None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("READY "):
            endpoint = line.split()[1]
        elif line.startswith("METRICS "):
            metrics_endpoint = line.split()[1]
        if endpoint and metrics_endpoint:
            break
        if process.poll() is not None:
            raise SystemExit(
                f"server exited during startup (rc={process.returncode})"
            )
    else:
        process.kill()
        raise SystemExit("server did not print READY + METRICS in time")
    host, port = endpoint.rsplit(":", 1)
    return process, host, int(port), metrics_endpoint


def scrape(metrics_endpoint):
    """One HTTP scrape; returns ``(raw_text, {name{labels}: value})``."""
    with urllib.request.urlopen(
        f"http://{metrics_endpoint}/metrics", timeout=30
    ) as response:
        assert response.status == 200, response.status
        content_type = response.headers.get("Content-Type", "")
        assert content_type.startswith("text/plain"), content_type
        text = response.read().decode("utf-8")
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return text, samples


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fixture", default="gnp:120:11")
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--load-queries", type=int, default=180)
    parser.add_argument("--boot-timeout", type=float, default=180.0)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-metrics-smoke-") as tmp:
        state_dir = Path(tmp) / "state"
        process, host, port, metrics_endpoint = start_server(args, state_dir)
        try:
            with ServeClient(host=host, port=port) as client:
                num_nodes = client.info()["num_nodes"]

            # Phase 1: concurrent load with two mid-load scrapes.
            per_thread = args.load_queries // args.clients
            errors = []
            scrapes = []

            def loop(offset):
                try:
                    with ServeClient(
                        host=host, port=port, timeout=120.0
                    ) as client:
                        for i in range(per_thread):
                            node = (offset * per_thread + i) % num_nodes
                            result = client.query(node, k=args.k)
                            assert len(result) == args.k, result
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=loop, args=(i,))
                for i in range(args.clients)
            ]
            for thread in threads:
                thread.start()
            # Two scrapes while the load is in flight.
            time.sleep(0.2)
            scrapes.append(scrape(metrics_endpoint))
            time.sleep(0.4)
            scrapes.append(scrape(metrics_endpoint))
            for thread in threads:
                thread.join()
            if errors:
                raise SystemExit(f"load phase failed: {errors[0]!r}")

            # One more scrape with the load fully drained: every family
            # the run can populate is populated now.
            final_text, final_samples = scrape(metrics_endpoint)
            missing = [
                family
                for family in REQUIRED_FAMILIES
                if family not in final_text
            ]
            if missing:
                raise SystemExit(f"scrape lacks metric families: {missing}")
            for first, second in ((scrapes[0][1], scrapes[1][1]),):
                for sample, early in first.items():
                    if not any(
                        sample.startswith(name) for name in MONOTONE_SAMPLES
                    ):
                        continue
                    late = second.get(sample)
                    if late is None or late < early:
                        raise SystemExit(
                            f"counter {sample} not monotone across scrapes: "
                            f"{early} -> {late}"
                        )
            answered = final_samples.get("repro_serve_queries_total", 0.0)
            if answered < args.load_queries:
                raise SystemExit(
                    f"metrics report {answered} queries < "
                    f"{args.load_queries} driven"
                )
            print(
                f"phase 1: {int(answered)} queries answered under load; "
                f"{len(REQUIRED_FAMILIES)} required families present, "
                f"counters monotone across mid-load scrapes"
            )

            # The framed-JSON metrics op must agree with the HTTP view.
            with ServeClient(host=host, port=port) as client:
                op_text = client.metrics()
                for family in REQUIRED_FAMILIES:
                    if family not in op_text:
                        raise SystemExit(
                            f"metrics op lacks family {family}"
                        )

                # Phase 2: one full multi-query batch (the drained-load
                # trailing batches can be single-query and run
                # sequentially), then its stitched trace.
                probe = list(range(0, num_nodes, max(1, num_nodes // 12)))
                client.query_many(probe, k=args.k)
                state = client.trace()
            if not state["enabled"]:
                raise SystemExit("--trace did not enable the server tracer")
            trace = state["trace"]
            if not trace:
                raise SystemExit("no batch trace recorded under --trace")
            root = trace["root"]
            if root["name"] != "engine.query_many":
                raise SystemExit(f"unexpected trace root: {root['name']}")
            json.dumps(trace)  # must be JSON-clean end to end
            dispatch = next(
                (
                    child
                    for child in root.get("children", [])
                    if child["name"] == "engine.pool_dispatch"
                ),
                None,
            )
            if dispatch is None:
                # Small trailing batches may run sequentially (below the
                # engine's parallel_min_batch) — still a stitching
                # failure for this smoke, which drives full batches.
                raise SystemExit(
                    "last traced batch has no pool dispatch span: "
                    f"{[c['name'] for c in root.get('children', [])]}"
                )
            workers = [
                child
                for child in dispatch.get("children", [])
                if child["name"] == "worker.shard"
            ]
            if not workers:
                raise SystemExit("no worker.shard spans stitched into trace")
            for span in workers:
                if not 0.0 < span["duration_s"] <= root["duration_s"]:
                    raise SystemExit(
                        f"worker span duration {span['duration_s']} outside "
                        f"parent batch duration {root['duration_s']}"
                    )
            print(
                f"phase 2: trace {trace['trace_id']} stitched "
                f"{len(workers)} worker spans under one parent batch span"
            )

            # Phase 3: graceful stop (pool cleanup incl. shm segment).
            with ServeClient(host=host, port=port) as client:
                client.shutdown()
            process.wait(timeout=60)
            if process.returncode != 0:
                raise SystemExit(
                    f"graceful shutdown exited rc={process.returncode}"
                )
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
    print("metrics smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
