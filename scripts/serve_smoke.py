#!/usr/bin/env python
"""CI smoke for the query server: concurrency, kill -9, bit-for-bit restart.

The in-process test suite covers every serve component; this script is
the *process-level* rehearsal CI runs on top of it:

1. boot ``python -m repro.serve`` on a seeded fixture graph with a
   durable state directory;
2. drive ~200 concurrent queries through real sockets (closed loop,
   several client threads) and record reference answers plus the
   journal's durable learning high-water mark;
3. ``kill -9`` the server — no shutdown hook, no final compaction; the
   journal's tail is whatever fsync last persisted;
4. boot a fresh server process on the same state directory and assert
   (a) the replayed index is at least as warm as every answer the dead
   server journalled (``known_ranks`` high-water mark) and (b) the
   reference queries answer **bit-for-bit identically**;
5. stop it gracefully via the ``shutdown`` op and re-check that the
   state directory ends compacted (empty journal).

Run with ``--workers 1`` (the default) under CI: kill -9 of a parent
with a live worker pool orphans the pool's shared-memory graph segment
(nobody left to unlink it), which the workflow's /dev/shm leak check
would rightly flag.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.journal import DurableIndexStore  # noqa: E402


def start_server(args, state_dir):
    """Launch ``python -m repro.serve`` and wait for its READY line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--fixture",
            args.fixture,
            "--state-dir",
            str(state_dir),
            "--workers",
            str(args.workers),
            "--max-batch",
            str(args.max_batch),
            "--max-wait-ms",
            "4",
            "--default-algorithm",
            "indexed",
            "--default-k",
            str(args.k),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    deadline = time.monotonic() + args.boot_timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("READY "):
            break
        if process.poll() is not None:
            raise SystemExit(
                f"server exited during startup (rc={process.returncode})"
            )
    else:
        process.kill()
        raise SystemExit("server did not print READY in time")
    endpoint = line.split()[1]
    host, port = endpoint.rsplit(":", 1)
    return process, host, int(port)


def drive_concurrent_load(host, port, num_nodes, args):
    """~200 concurrent queries from several closed-loop client threads."""
    per_thread = args.load_queries // args.clients
    errors = []

    def loop(offset):
        try:
            with ServeClient(host=host, port=port, timeout=120.0) as client:
                for i in range(per_thread):
                    node = (offset * per_thread + i) % num_nodes
                    result = client.query(node, k=args.k)
                    assert len(result) == args.k, result
        except BaseException as exc:  # noqa: BLE001 - collected for the report
            errors.append(exc)

    threads = [
        threading.Thread(target=loop, args=(i,)) for i in range(args.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise SystemExit(f"load phase failed: {errors[0]!r}")
    return per_thread * args.clients


def reference_answers(host, port, queries, args):
    """One bit-exact answer set: every query, both algorithms."""
    answers = {}
    with ServeClient(host=host, port=port, timeout=120.0) as client:
        for algorithm in ("indexed", "dynamic"):
            answers[algorithm] = client.query_many(
                queries, k=args.k, algorithm=algorithm
            )
    return answers


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fixture", default="gnp:120:11")
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--load-queries", type=int, default=200)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--boot-timeout", type=float, default=120.0)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        state_dir = Path(tmp) / "state"

        # Phase 1: boot + concurrent load.
        process, host, port = start_server(args, state_dir)
        try:
            with ServeClient(host=host, port=port) as client:
                num_nodes = client.info()["num_nodes"]
            completed = drive_concurrent_load(host, port, num_nodes, args)
            queries = list(range(0, num_nodes, max(1, num_nodes // 32)))
            answers_before = reference_answers(host, port, queries, args)
            with ServeClient(host=host, port=port) as client:
                stats = client.stats()
            print(
                f"phase 1: {completed} concurrent queries answered in "
                f"{stats['batches']} batches "
                f"(known_ranks={stats['index_known_ranks']}, "
                f"journal_records={stats['journal_records']})"
            )
            # The durable high-water mark: everything learned by ANSWERED
            # batches is journalled, so the replayed index must know at
            # least this many ranks.
            durable_known = stats["index_known_ranks"]

            # Phase 2: kill -9 — the crash the journal exists for.
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        # Phase 3: restart on the same state directory.
        process, host, port = start_server(args, state_dir)
        try:
            with ServeClient(host=host, port=port) as client:
                stats = client.stats()
            replayed_known = stats["index_known_ranks"]
            if replayed_known < durable_known:
                raise SystemExit(
                    f"restart lost durable learning: replayed index knows "
                    f"{replayed_known} ranks < {durable_known} at kill time"
                )
            answers_after = reference_answers(host, port, queries, args)
            for algorithm in answers_before:
                if answers_before[algorithm] != answers_after[algorithm]:
                    raise SystemExit(
                        f"post-restart {algorithm} answers differ from "
                        "pre-kill answers"
                    )
            print(
                f"phase 3: restarted warm (known_ranks={replayed_known}), "
                f"{len(queries)} reference queries bit-for-bit identical "
                "across the kill"
            )

            # Phase 4: graceful stop through the protocol.
            with ServeClient(host=host, port=port) as client:
                client.shutdown()
            process.wait(timeout=60)
            if process.returncode != 0:
                raise SystemExit(
                    f"graceful shutdown exited rc={process.returncode}"
                )
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        # A clean stop compacts: the journal must be empty on disk.
        store = DurableIndexStore(state_dir)
        if store.journal.num_records != 0:
            raise SystemExit(
                f"journal not compacted on clean shutdown: "
                f"{store.journal.num_records} records remain"
            )
        store.close()
        print("phase 4: clean shutdown, journal compacted to empty")
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
