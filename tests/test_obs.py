"""The observability layer: metrics registry, tracing, and their wiring.

Registry tests are pure unit tests (concurrency included); the
span-stitching and chaos-metric tests run a *real* 2-worker pool so the
trace-id propagation across the IPC boundary and the event-time metric
writes are exercised end to end, not mocked.
"""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro import faults
from repro.core import ReverseKRanksEngine
from repro.errors import ParallelExecutionError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsError,
    MetricsRegistry,
    NULL_REGISTRY,
    Tracer,
    get_registry,
    summarize_trace,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="fork start method unavailable"
)
FAST_CONTEXT = "fork" if HAVE_FORK else None


@pytest.fixture(autouse=True)
def _clear_faults():
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_and_gauge_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(MetricsError):
            counter.inc(-1)
        gauge = registry.gauge("repro_g", "help")
        gauge.set(7)
        gauge.inc(3)
        gauge.dec(1)
        assert gauge.value == 9.0

    def test_labels_memoized_and_checked(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_l_total", "help", labels=("path",))
        child = family.labels(path="a")
        assert family.labels(path="a") is child
        child.inc()
        assert registry.sample("repro_l_total", {"path": "a"}) == 1.0
        assert registry.sample("repro_l_total", {"path": "b"}) == 0.0
        with pytest.raises(MetricsError):
            family.labels(wrong="a")
        with pytest.raises(MetricsError):
            family.inc()  # labelled family needs .labels()

    def test_registration_idempotent_but_conflicts_raise(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_same_total", "help")
        assert registry.counter("repro_same_total", "help") is first
        with pytest.raises(MetricsError):
            registry.gauge("repro_same_total", "help")
        with pytest.raises(MetricsError):
            registry.counter("repro_same_total", "help", labels=("x",))
        with pytest.raises(MetricsError):
            registry.counter("0bad name", "help")

    def test_disabled_registry_is_inert(self):
        counter = NULL_REGISTRY.counter("repro_off_total", "help")
        counter.inc(100)
        counter.labels(anything="goes").inc()
        assert counter.value == 0.0
        assert NULL_REGISTRY.render() == ""

    def test_process_global_default_registry(self):
        assert get_registry() is get_registry()
        assert get_registry().enabled

    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_c_total", "help", labels=("t",))
        hist = registry.histogram(
            "repro_c_seconds", "help", buckets=(0.5, 1.0)
        )
        rounds, threads = 500, 8

        def worker(tid):
            child = counter.labels(t=str(tid % 2))
            for _ in range(rounds):
                child.inc()
                hist.observe(0.25)

        pool = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = registry.sample("repro_c_total", {"t": "0"}) + registry.sample(
            "repro_c_total", {"t": "1"}
        )
        assert total == rounds * threads
        assert hist.count == rounds * threads
        assert hist.total == pytest.approx(0.25 * rounds * threads)


class TestHistogram:
    def test_bucket_edges_are_le_inclusive(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h", "help", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 100.0):
            hist.observe(value)
        # le-inclusive cumulative: le=1 sees {0.5, 1.0}, le=2 adds
        # {1.5, 2.0}, le=5 adds {4.9, 5.0}, +Inf adds {100.0}.
        assert hist.cumulative_counts() == (2, 4, 6, 7)
        assert hist.count == 7
        assert hist.total == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 4.9 + 5.0 + 100.0)

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.histogram("repro_bad", "help", buckets=(2.0, 1.0))
        with pytest.raises(MetricsError):
            registry.histogram("repro_empty", "help", buckets=())

    def test_default_latency_buckets_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestExposition:
    def test_golden_render(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_x_total", "Things counted.", labels=("path",)
        )
        counter.labels(path="a").inc(3)
        gauge = registry.gauge("repro_depth", "Current depth.")
        gauge.set(2.5)
        hist = registry.histogram(
            "repro_lat_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(0.5)
        assert registry.render() == (
            "# HELP repro_depth Current depth.\n"
            "# TYPE repro_depth gauge\n"
            "repro_depth 2.5\n"
            "# HELP repro_lat_seconds Latency.\n"
            "# TYPE repro_lat_seconds histogram\n"
            'repro_lat_seconds_bucket{le="0.1"} 1\n'
            'repro_lat_seconds_bucket{le="1"} 2\n'
            'repro_lat_seconds_bucket{le="+Inf"} 2\n'
            "repro_lat_seconds_sum 0.55\n"
            "repro_lat_seconds_count 2\n"
            "# HELP repro_x_total Things counted.\n"
            "# TYPE repro_x_total counter\n"
            'repro_x_total{path="a"} 3\n'
        )

    def test_render_is_deterministic(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_o_total", "help", labels=("k",))
        for key in ("z", "a", "m"):
            family.labels(k=key).inc()
        assert registry.render() == registry.render()
        lines = [
            line
            for line in registry.render().splitlines()
            if line.startswith("repro_o_total{")
        ]
        assert lines == sorted(lines)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_tracer_allocates_no_spans(self):
        tracer = Tracer()
        assert not tracer.enabled
        with tracer.trace("root") as root:
            with tracer.span("child") as child:
                child.set(x=1)
        assert root is child  # the shared no-op singleton
        assert tracer.spans_created == 0
        assert tracer.last_trace is None

    def test_span_tree_nesting_and_meta(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("root", queries=4):
            with tracer.span("a"):
                with tracer.span("a.inner") as inner:
                    inner.set(hits=2)
            with tracer.span("b"):
                pass
        trace = tracer.last_trace
        assert set(trace) == {"trace_id", "root"}
        root = trace["root"]
        assert root["name"] == "root"
        assert root["meta"] == {"queries": 4}
        assert [child["name"] for child in root["children"]] == ["a", "b"]
        inner = root["children"][0]["children"][0]
        assert inner["name"] == "a.inner"
        assert inner["meta"] == {"hits": 2}
        assert inner["duration_s"] <= root["duration_s"]
        assert inner["start_offset_s"] >= 0.0
        assert tracer.spans_created == 4
        json.dumps(trace)  # must be JSON-clean

    def test_exception_recorded_on_span(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.trace("root"):
                with tracer.span("boom"):
                    raise ValueError("no")
        root = tracer.last_trace["root"]
        assert root["children"][0]["meta"]["error"] == "ValueError"

    def test_attach_grafts_foreign_subtrees(self):
        tracer = Tracer(enabled=True)
        foreign = {"name": "worker.shard", "start_offset_s": 0.0, "duration_s": 0.5}
        with tracer.trace("root"):
            with tracer.span("dispatch"):
                tracer.attach([foreign])
        dispatch = tracer.last_trace["root"]["children"][0]
        assert dispatch["children"] == [foreign]

    def test_explicit_trace_id_propagates(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("root", trace_id="cafe1234"):
            pass
        assert tracer.last_trace["trace_id"] == "cafe1234"

    def test_summarize_trace_top_spans(self):
        trace = {
            "trace_id": "x",
            "root": {
                "name": "root",
                "start_offset_s": 0.0,
                "duration_s": 10.0,
                "children": [
                    {"name": "a", "start_offset_s": 0.0, "duration_s": 4.0},
                    {"name": "a", "start_offset_s": 4.0, "duration_s": 3.0},
                    {"name": "b", "start_offset_s": 7.0, "duration_s": 1.0},
                ],
            },
        }
        summary = summarize_trace(trace, top=2)
        assert summary == [
            {"name": "root", "total_s": 10.0, "count": 1},
            {"name": "a", "total_s": 7.0, "count": 2},
        ]


# ----------------------------------------------------------------------
# Engine wiring: counters, staleness fix, trace plumbing
# ----------------------------------------------------------------------
class TestEngineObservability:
    def test_sequential_batch_counters(self, path_graph):
        with ReverseKRanksEngine(path_graph) as engine:
            engine.query_many([0, 5], 2, algorithm="dynamic")
            registry = engine.registry
            assert (
                registry.sample(
                    "repro_query_batches_total", {"path": "sequential"}
                )
                == 1.0
            )
            assert (
                registry.sample(
                    "repro_queries_total", {"algorithm": "dynamic"}
                )
                == 2.0
            )

    def test_injected_registry_is_used(self, path_graph):
        registry = MetricsRegistry()
        with ReverseKRanksEngine(path_graph, registry=registry) as engine:
            assert engine.registry is registry
            engine.query_many([0], 2, algorithm="static")
        assert registry.sample(
            "repro_queries_total", {"algorithm": "static"}
        ) == 1.0

    def test_tracer_disabled_by_default_and_allocation_free(self, path_graph):
        with ReverseKRanksEngine(path_graph) as engine:
            engine.query_many([0, 3], 2, algorithm="dynamic")
            assert engine.tracer.spans_created == 0
            assert engine.last_trace is None

    def test_sequential_trace_tree(self, path_graph):
        with ReverseKRanksEngine(path_graph) as engine:
            engine.tracer.enabled = True
            engine.query_many([0, 3], 2, algorithm="dynamic")
            trace = engine.last_trace
            assert trace["root"]["name"] == "engine.query_many"
            assert trace["root"]["meta"]["algorithm"] == "dynamic"
            names = [c["name"] for c in trace["root"]["children"]]
            assert names == ["engine.sequential"]

    @needs_fork
    def test_stale_ipc_fields_reset_on_sequential_batch(self, random_gnp):
        """Regression: a sequential batch after a parallel one must not
        keep reporting the parallel batch's ipc bytes / stats."""
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        with ReverseKRanksEngine(random_gnp) as engine:
            engine.query_many(
                queries, 3, algorithm="dynamic", workers=2,
                worker_context=FAST_CONTEXT,
            )
            assert engine.last_batch_ipc_bytes > 0
            parallel_stats = engine.last_batch_stats
            assert parallel_stats is not None
            engine.query_many(queries, 3, algorithm="dynamic")
            assert engine.last_batch_ipc_bytes == 0
            # A fresh aggregate, not the parallel batch's leftover.
            assert engine.last_batch_stats is not parallel_stats

    @needs_fork
    def test_fallback_batches_counted_with_path_label(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        faults.configure("worker.before_task=crash", seed=3)
        with ReverseKRanksEngine(random_gnp) as engine:
            engine.query_many(
                queries, 3, algorithm="dynamic", workers=2,
                worker_context=FAST_CONTEXT, on_pool_failure="sequential",
            )
            registry = engine.registry
            assert (
                registry.sample(
                    "repro_query_batches_total",
                    {"path": "sequential_fallback"},
                )
                == 1.0
            )
            assert engine.sequential_fallbacks == 1
            # The fallback batch ran in-process: nothing crossed the IPC
            # boundary, so the per-batch byte field must say so.
            assert engine.last_batch_ipc_bytes == 0


# ----------------------------------------------------------------------
# Cross-process span stitching + pool/planner metrics
# ----------------------------------------------------------------------
@needs_fork
class TestSpanStitching:
    def test_two_worker_trace_reassembles_under_one_id(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:8]
        with ReverseKRanksEngine(random_gnp) as engine:
            engine.tracer.enabled = True
            engine.query_many(
                queries, 3, algorithm="dynamic", workers=2,
                shard_policy="cost", worker_context=FAST_CONTEXT,
            )
            trace = engine.last_trace
            registry = engine.registry

        root = trace["root"]
        assert root["name"] == "engine.query_many"
        dispatch = next(
            child
            for child in root["children"]
            if child["name"] == "engine.pool_dispatch"
        )
        workers = [
            child
            for child in dispatch["children"]
            if child["name"] == "worker.shard"
        ]
        assert len(workers) == 2
        assert {span["meta"]["shard"] for span in workers} == {0, 1}
        for span in workers:
            # Worker clocks are process-local; the invariant that survives
            # the boundary is containment in the parent batch duration.
            assert 0.0 < span["duration_s"] <= root["duration_s"]
            nested = [c["name"] for c in span["children"]]
            assert "engine.query_many" in nested
            assert "worker.encode" in nested
        assert dispatch["meta"]["ipc_bytes"] > 0

        plan_span = next(
            child
            for child in root["children"]
            if child["name"] == "engine.plan"
        )
        assert plan_span["meta"]["policy"] == "cost"
        assert plan_span["meta"]["skew"] >= 1.0
        assert registry.sample(
            "repro_shard_plans_total", {"policy": "cost"}
        ) == 1.0
        assert registry.sample(
            "repro_ipc_bytes_total", {"direction": "result"}
        ) == dispatch["meta"]["ipc_bytes"]
        assert registry.sample(
            "repro_pool_batches_total"
        ) == 1.0
        # The trace summary is computable and topped by the root span.
        summary = summarize_trace(trace, top=5)
        assert summary[0]["name"] == "engine.query_many"

    def test_untraced_parallel_batch_ships_no_trees(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        with ReverseKRanksEngine(random_gnp) as engine:
            engine.query_many(
                queries, 3, algorithm="dynamic", workers=2,
                worker_context=FAST_CONTEXT,
            )
            assert engine.last_trace is None
            assert engine.tracer.spans_created == 0


@needs_fork
class TestChaosMetrics:
    def test_crash_and_respawn_counters_reach_registry(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        faults.configure("worker.before_task=crash#2", seed=7)
        with ReverseKRanksEngine(random_gnp) as engine:
            # Several batches: each worker crashes on its second task and
            # the pool heals in place (respawn + redispatch).
            for _ in range(3):
                engine.query_many(
                    queries, 3, algorithm="dynamic", workers=2,
                    worker_context=FAST_CONTEXT,
                )
            registry = engine.registry
            health = engine.pool_health()
        crashes = registry.sample("repro_worker_crashes_total")
        respawns = registry.sample("repro_worker_respawns_total")
        assert crashes >= 1
        assert respawns >= 1
        # pool_health reads the same instruments: byte-compatible payload.
        assert health["worker_crashes"] == int(crashes)
        assert health["worker_respawns"] == int(respawns)
        # In-place healing absorbed every crash: no batch-level pool
        # failure was declared.
        assert registry.sample("repro_pool_failures_total") == 0.0
        assert health["pool_failures"] == 0

    def test_timeout_counter_reaches_registry(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:4]
        faults.configure("worker.before_result=sleep(30)", seed=7)
        with ReverseKRanksEngine(random_gnp) as engine:
            with pytest.raises(ParallelExecutionError):
                engine.query_many(
                    queries, 3, algorithm="dynamic", workers=2,
                    worker_context=FAST_CONTEXT, batch_timeout=0.5,
                    on_pool_failure="raise",
                )
            assert engine.registry.sample("repro_worker_timeouts_total") >= 1
            assert engine.pool_health()["worker_timeouts"] >= 1


# ----------------------------------------------------------------------
# Serve ops: metrics / trace, and stats byte-compatibility
# ----------------------------------------------------------------------
class TestServeObservability:
    @pytest.fixture()
    def served(self, path_graph, tmp_path):
        from repro.serve import (
            DurableIndexStore,
            QueryServer,
            ServeClient,
            ServeConfig,
        )

        registry = MetricsRegistry()
        store = DurableIndexStore(tmp_path / "state", registry=registry)
        engine = ReverseKRanksEngine(path_graph, registry=registry)
        engine.build_index(num_hubs=3, capacity=8)
        store.install(engine.index)
        config = ServeConfig(max_batch=4, max_wait_ms=2.0)
        with QueryServer(
            engine, config=config, store=store, registry=registry
        ) as server:
            host, port = server.address
            with ServeClient(host=host, port=port) as client:
                yield client, registry
        engine.close_pool()

    def test_metrics_op_renders_shared_registry(self, served):
        client, registry = served
        client.query_many([0, 5], k=2, algorithm="indexed")
        text = client.metrics()
        assert text == registry.render()
        for family in (
            "repro_serve_batches_total",
            "repro_serve_flushes_total",
            "repro_queries_total",
            "repro_journal_appends_total",
        ):
            assert family in text
        # Counters are monotone between scrapes.
        client.query_many([1], k=2, algorithm="indexed")
        assert registry.sample("repro_serve_queries_total") == 3.0

    def test_stats_payload_matches_registry(self, served):
        client, registry = served
        client.query_many([0, 5], k=2, algorithm="indexed")
        stats = client.stats()
        assert stats["queries"] == int(
            registry.sample("repro_serve_queries_total")
        )
        assert stats["batches"] == int(
            registry.sample("repro_serve_batches_total")
        )
        assert stats["overloads"] == 0

    def test_trace_op_toggles_and_returns_tree(self, served):
        client, registry = served
        state = client.trace()
        assert state == {"enabled": False, "trace": None}
        state = client.trace(enable=True)
        assert state["enabled"] is True
        client.query_many([0, 5], k=2, algorithm="indexed")
        state = client.trace()
        assert state["trace"]["root"]["name"] == "engine.query_many"
        state = client.trace(enable=False)
        assert state["enabled"] is False


# ----------------------------------------------------------------------
# Journal metrics
# ----------------------------------------------------------------------
class TestJournalMetrics:
    def _store(self, path_graph, tmp_path, registry, **kwargs):
        from repro.serve import DurableIndexStore

        store = DurableIndexStore(
            tmp_path / "state", registry=registry, **kwargs
        )
        engine = ReverseKRanksEngine(path_graph)
        engine.build_index(num_hubs=3, capacity=8)
        store.install(engine.index)
        return store, engine

    @staticmethod
    def _delta(seed: int):
        from repro.core.hub_index import HubIndexDelta

        return HubIndexDelta(
            ranks={(seed, seed + 1): seed + 3}, explorations={seed: 1}
        )

    def test_append_fsync_and_compaction_metrics(self, path_graph, tmp_path):
        registry = MetricsRegistry()
        store, engine = self._store(
            path_graph, tmp_path, registry, compact_bytes=1
        )
        store.record(self._delta(1))
        assert registry.sample("repro_journal_appends_total") >= 1.0
        fsyncs = registry.get("repro_journal_fsync_seconds")
        assert fsyncs is not None and fsyncs.count >= 1
        assert registry.sample("repro_journal_append_bytes_total") > 0
        size = registry.get("repro_journal_size_bytes")
        assert size is not None and size.value == store.journal.size_bytes
        before = size.value
        # compact_bytes=1: any journal content trips the threshold.
        assert store.maybe_compact(engine.index) is True
        assert registry.sample("repro_journal_compactions_total") >= 1.0
        assert size.value == store.journal.size_bytes < before
        store.close()

    def test_append_failure_counted(self, path_graph, tmp_path):
        from repro.errors import FailpointError

        registry = MetricsRegistry()
        store, engine = self._store(path_graph, tmp_path, registry)
        faults.configure("journal.write=error*1")
        with pytest.raises(FailpointError):
            store.record(self._delta(1))
        assert registry.sample("repro_journal_append_failures_total") == 1.0
        store.close()


# ----------------------------------------------------------------------
# Bench: --trace guard and diff compatibility (tier-1)
# ----------------------------------------------------------------------
class TestBenchTraceGuard:
    def test_smoke_trace_produces_valid_span_json(self, tmp_path):
        from repro.bench.__main__ import main as bench_main

        trace_dir = tmp_path / "traces"
        report_path = tmp_path / "report.json"
        code = bench_main(
            [
                "--smoke",
                "--families",
                "path",
                "--trace",
                "--trace-dir",
                str(trace_dir),
                "--output",
                str(report_path),
                "--quiet",
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["config"]["trace"] is True
        rows = report["workloads"][0]["algorithms"]
        for name, row in rows.items():
            if row.get("skipped"):
                continue
            summary = row["trace_summary"]
            assert summary[0]["name"] == "engine.query_many"
            assert summary[0]["total_s"] > 0
        traces = sorted(trace_dir.glob("*.trace.json"))
        assert traces
        for path in traces:
            trace = json.loads(path.read_text())
            assert set(trace) == {"trace_id", "root"}
            root = trace["root"]
            assert root["name"] == "engine.query_many"
            assert root["duration_s"] > 0
            for child in root.get("children", []):
                assert child["duration_s"] <= root["duration_s"]

    def test_diff_ignores_trace_fields(self):
        from repro.bench.diff import compare_reports

        def report(extra_fields):
            return {
                "workloads": [
                    {
                        "name": "w",
                        "backend_consistent": True,
                        "algorithms": {
                            "dynamic": {
                                "best_seconds": 0.5,
                                "validated": True,
                                **extra_fields,
                            }
                        },
                    }
                ]
            }

        old = report({})
        new = report(
            {"trace_summary": [{"name": "x", "total_s": 0.4, "count": 1}]}
        )
        rows, failures = compare_reports(old, new, tolerance=0.25)
        assert failures == []
        assert rows[0]["status"] == "ok"
