"""Incremental graph maintenance: overlays, repairs, live pool sync.

Unit-level coverage for the delta-overlay/index-repair machinery that
``engine.apply_updates`` composes: Graph version-counter pins (no-op
mutations must not invalidate caches), OverlayGraph construction and
side-table transport, apply_updates semantics (validation, no-op early
return, recompaction triggers, partial-batch recovery), hub-index repair
deltas and replica merging, and — under fork — the worker-pool graph
broadcast that replaces teardown.  The end-to-end differential sweep
lives in ``test_fuzz_mutation.py``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.core import ReverseKRanksEngine
from repro.core.hub_index import HubIndex, HubIndexDelta
from repro.core.validation import results_equivalent
from repro.errors import (
    BichromaticError,
    EdgeNotFoundError,
    GraphValidationError,
    IndexParameterError,
    NodeNotFoundError,
    ParallelExecutionError,
)
from repro.graph import BichromaticPartition, CompactGraph, Graph
from repro.graph.overlay import OverlayGraph

from conftest import _gnp_graph, sample_queries

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="fork start method unavailable"
)


def _mutable_gnp(seed: int = 7, num_nodes: int = 22, directed: bool = False):
    """Private copy of the conftest G(n, p): mutation tests need their own."""
    return _gnp_graph(num_nodes, 0.2, seed=seed, directed=directed)


def _stats_dict(result):
    payload = result.stats.as_dict()
    payload.pop("elapsed_seconds")
    return payload


def _assert_same_answers(engine, reference, queries, k=3, algorithm="dynamic"):
    """Bit-identical ranks AND QueryStats (minus wall-clock) per query."""
    got = engine.query_many(queries, k, algorithm=algorithm)
    want = reference.query_many(queries, k, algorithm=algorithm)
    for mine, theirs in zip(got, want):
        assert mine.as_pairs() == theirs.as_pairs(), (algorithm, mine.query)
        assert _stats_dict(mine) == _stats_dict(theirs), (algorithm, mine.query)


# ----------------------------------------------------------------------
# Satellite: no-op mutations must not bump Graph.version
# ----------------------------------------------------------------------
class TestVersionPins:
    def test_adding_existing_node_keeps_version(self):
        graph = Graph()
        graph.add_node("a")
        version = graph.version
        graph.add_node("a")
        assert graph.version == version

    def test_readding_edge_with_equal_weight_keeps_version(self):
        graph = Graph()
        graph.add_edge("a", "b", 2.0)
        version = graph.version
        graph.add_edge("a", "b", 2.0)
        assert graph.version == version
        assert graph.weight("a", "b") == 2.0

    def test_readding_edge_with_larger_weight_keeps_version(self):
        # Parallel edges collapse to the minimum: a heavier duplicate
        # changes nothing, so no cache may be invalidated for it.
        graph = Graph()
        graph.add_edge("a", "b", 2.0)
        version = graph.version
        graph.add_edge("a", "b", 5.0)
        assert graph.version == version
        assert graph.weight("a", "b") == 2.0

    def test_lowering_edge_weight_bumps_version(self):
        graph = Graph()
        graph.add_edge("a", "b", 2.0)
        version = graph.version
        graph.add_edge("a", "b", 1.0)
        assert graph.version == version + 1
        assert graph.weight("a", "b") == 1.0

    def test_self_loop_keeps_version(self):
        graph = Graph()
        graph.add_node("a")
        version = graph.version
        graph.add_edge("a", "a", 1.0)
        assert graph.version == version
        assert not graph.has_edge("a", "a")

    def test_noop_batch_invalidates_nothing(self):
        graph = _mutable_gnp()
        engine = ReverseKRanksEngine(graph)
        engine.build_index(num_hubs=3, capacity=8)
        csr = engine.compact_graph()
        version = graph.version
        revision = engine.index.revision

        report = engine.apply_updates(
            [
                ("add_node", 0),
                ("add_edge", 0, 0, 1.0),
                ("add_edge", 0, 1, 1000.0) if graph.has_edge(0, 1)
                else ("add_node", 1),
            ]
        )

        assert report.applied == 0
        assert report.noops == 3
        assert report.touched == ()
        assert not report.recompacted
        assert not report.index_repaired
        assert report.index_delta is None
        assert graph.version == version
        assert engine.compact_graph() is csr  # CSR cache survived
        assert engine.index.revision == revision
        noop_counter = engine.registry.get("repro_graph_updates_total")
        assert noop_counter.labels(result="noop").value == 3


# ----------------------------------------------------------------------
# OverlayGraph
# ----------------------------------------------------------------------
class TestOverlayGraph:
    def _overlaid(self, seed=3):
        graph = _mutable_gnp(seed=seed, num_nodes=14)
        base = CompactGraph.from_graph(graph)
        edges = sorted(graph.edges())
        graph.remove_edge(*edges[0][:2])
        graph.add_edge(edges[1][0], edges[2][1], 0.75)
        graph.add_edge(5, 99, 1.5)  # appends node 99
        touched = {edges[0][0], edges[0][1], edges[1][0], edges[2][1], 5}
        overlay = OverlayGraph.from_base(graph, base, touched, appended=[99])
        return graph, base, overlay

    def test_enumeration_matches_fresh_compile(self):
        graph, _, overlay = self._overlaid()
        fresh = CompactGraph.from_graph(graph)
        assert list(overlay.edges()) == list(fresh.edges())
        for node in graph.nodes():
            assert list(overlay.neighbor_items(node)) == list(
                fresh.neighbor_items(node)
            )
            assert list(overlay.in_neighbor_items(node)) == list(
                fresh.in_neighbor_items(node)
            )
            assert overlay.out_degree(node) == fresh.out_degree(node)
        assert overlay.num_edges == fresh.num_edges
        assert overlay.num_nodes == fresh.num_nodes

    def test_appended_node_accounting(self):
        graph, base, overlay = self._overlaid()
        assert overlay.appended_nodes == [99]
        assert overlay.num_nodes == base.num_nodes + 1
        assert overlay.has_edge(5, 99)
        assert overlay.overlay_rows >= 5

    def test_state_round_trip_is_bit_identical(self):
        _, base, overlay = self._overlaid()
        state = overlay.overlay_state()
        rebuilt = OverlayGraph.from_state(base, state)
        assert list(rebuilt.edges()) == list(overlay.edges())
        assert rebuilt.overlay_rows == overlay.overlay_rows
        assert rebuilt.appended_nodes == overlay.appended_nodes
        assert rebuilt.content_digest() == overlay.content_digest()

    def test_state_refuses_foreign_base(self):
        _, _, overlay = self._overlaid()
        other = CompactGraph.from_graph(_mutable_gnp(seed=9, num_nodes=14))
        with pytest.raises(GraphValidationError, match="digest mismatch"):
            OverlayGraph.from_state(other, overlay.overlay_state())

    def test_state_refuses_unknown_format(self):
        _, base, _ = self._overlaid()
        with pytest.raises(GraphValidationError, match="unrecognised"):
            OverlayGraph.from_state(base, {"format": "bogus"})

    def test_overlay_refuses_pickle(self):
        _, _, overlay = self._overlaid()
        with pytest.raises(GraphValidationError):
            pickle.dumps(overlay)

    def test_node_removal_requires_recompaction(self):
        graph = _mutable_gnp(seed=4, num_nodes=12)
        base = CompactGraph.from_graph(graph)
        victim = sorted(graph.nodes())[0]
        neighbors = set(graph.neighbors(victim))
        graph.remove_node(victim)
        with pytest.raises(GraphValidationError, match="node accounting"):
            OverlayGraph.from_base(graph, base, neighbors)


# ----------------------------------------------------------------------
# engine.apply_updates
# ----------------------------------------------------------------------
class TestApplyUpdates:
    def test_malformed_op_rejected_before_any_mutation(self):
        graph = _mutable_gnp(seed=5)
        engine = ReverseKRanksEngine(graph)
        version = graph.version
        edges = sorted(graph.edges())
        batch = [
            ("remove_edge", edges[0][0], edges[0][1]),
            ("add_edge", 1),  # malformed: too few fields
        ]
        with pytest.raises(GraphValidationError, match="malformed"):
            engine.apply_updates(batch)
        assert graph.version == version  # first op was NOT applied
        assert graph.has_edge(edges[0][0], edges[0][1])

    def test_non_tuple_op_rejected(self):
        engine = ReverseKRanksEngine(_mutable_gnp(seed=5))
        with pytest.raises(GraphValidationError, match="not an operation"):
            engine.apply_updates(["add_edge"])

    def test_bichromatic_engine_refuses_updates(self):
        graph = _mutable_gnp(seed=6)
        nodes = sorted(graph.nodes())
        partition = BichromaticPartition(graph, nodes[len(nodes) // 2 :])
        engine = ReverseKRanksEngine(graph, partition=partition)
        with pytest.raises(BichromaticError, match="monochromatic-only"):
            engine.apply_updates([("add_node", "new")])

    def test_compact_graph_engine_refuses_updates(self):
        compiled = CompactGraph.from_graph(_mutable_gnp(seed=6))
        engine = ReverseKRanksEngine(compiled)
        with pytest.raises(GraphValidationError, match="immutable"):
            engine.apply_updates([("add_node", "new")])

    def test_effective_batch_lands_as_overlay(self):
        graph = _mutable_gnp(seed=8)
        shadow = graph.copy()
        engine = ReverseKRanksEngine(graph)
        engine.compact_graph()
        edges = sorted(graph.edges())

        report = engine.apply_updates(
            [
                ("remove_edge", edges[0][0], edges[0][1]),
                ("add_edge", edges[1][0], edges[2][1], 0.5),
                ("add_edge", 3, "fresh-node", 2.0),
            ]
        )
        shadow.remove_edge(edges[0][0], edges[0][1])
        shadow.add_edge(edges[1][0], edges[2][1], 0.5)
        shadow.add_edge(3, "fresh-node", 2.0)

        assert report.applied == 3
        assert not report.recompacted
        assert report.overlay_rows > 0
        assert report.appended == ("fresh-node",)
        assert report.graph_version == graph.version
        csr = engine.compact_graph()
        assert isinstance(csr, OverlayGraph)

        reference = ReverseKRanksEngine(shadow)
        reference.compact_graph()
        queries = sample_queries(shadow, 4)
        _assert_same_answers(engine, reference, queries, algorithm="dynamic")
        _assert_same_answers(engine, reference, queries, algorithm="static")

    def test_node_removal_forces_recompaction(self):
        graph = _mutable_gnp(seed=9)
        engine = ReverseKRanksEngine(graph)
        engine.compact_graph()
        victim = sorted(graph.nodes())[-1]
        report = engine.apply_updates([("remove_node", victim)])
        assert report.recompacted
        assert report.removed == (victim,)
        assert report.overlay_rows == 0
        assert not isinstance(engine.compact_graph(), OverlayGraph)

    def test_overlay_threshold_forces_recompaction(self):
        graph = _mutable_gnp(seed=10)
        engine = ReverseKRanksEngine(graph)
        engine.overlay_threshold = 1  # any 2-node touch set crosses it
        engine.compact_graph()
        edges = sorted(graph.edges())
        report = engine.apply_updates(
            [("remove_edge", edges[0][0], edges[0][1])]
        )
        assert report.recompacted
        recompactions = engine.registry.get("repro_csr_recompactions_total")
        # Initial compile + threshold-forced recompile.
        assert recompactions.value == 2

    def test_missing_edge_recovery_leaves_engine_consistent(self):
        graph = _mutable_gnp(seed=11)
        shadow = graph.copy()
        engine = ReverseKRanksEngine(graph)
        engine.build_index(num_hubs=3, capacity=8)
        engine.compact_graph()
        edges = sorted(graph.edges())

        batch = [
            ("remove_edge", edges[0][0], edges[0][1]),  # applied, stays
            ("remove_edge", "ghost", "ghost2"),  # raises mid-batch
            ("add_edge", edges[1][0], edges[1][1], 0.1),  # never reached
        ]
        with pytest.raises(EdgeNotFoundError):
            engine.apply_updates(batch)

        # Non-transactional: op 0 stays applied; the engine resynchronised.
        shadow.remove_edge(edges[0][0], edges[0][1])
        assert not graph.has_edge(edges[0][0], edges[0][1])
        reference = ReverseKRanksEngine(shadow)
        reference.compact_graph()
        queries = sample_queries(shadow, 4)
        _assert_same_answers(engine, reference, queries, algorithm="dynamic")

    def test_missing_node_removal_raises(self):
        engine = ReverseKRanksEngine(_mutable_gnp(seed=12))
        with pytest.raises(NodeNotFoundError):
            engine.apply_updates([("remove_node", "ghost")])

    def test_update_counters_track_results(self):
        graph = _mutable_gnp(seed=13)
        engine = ReverseKRanksEngine(graph)
        engine.compact_graph()
        edges = sorted(graph.edges())
        engine.apply_updates(
            [
                ("remove_edge", edges[0][0], edges[0][1]),
                ("add_node", edges[0][0]),  # noop: exists
            ]
        )
        family = engine.registry.get("repro_graph_updates_total")
        assert family.labels(result="applied").value == 1
        assert family.labels(result="noop").value == 1


# ----------------------------------------------------------------------
# Hub-index repair deltas
# ----------------------------------------------------------------------
class TestIndexRepair:
    def _indexed_engine(self, seed=21):
        graph = _mutable_gnp(seed=seed)
        engine = ReverseKRanksEngine(graph)
        engine.build_index(num_hubs=3, capacity=8)
        return graph, engine

    def test_repair_delta_versions_chain(self):
        graph, engine = self._indexed_engine()
        pre_version = graph.version
        edges = sorted(graph.edges())
        report = engine.apply_updates(
            [("remove_edge", edges[0][0], edges[0][1])]
        )
        delta = report.index_delta
        assert isinstance(delta, HubIndexDelta)
        assert delta.graph_version == pre_version
        assert delta.repaired_to_version == graph.version

    def test_replica_merges_repair_delta(self):
        graph, engine = self._indexed_engine(seed=22)
        replica = HubIndex.from_state(graph, engine.index.export_state())
        edges = sorted(graph.edges())
        report = engine.apply_updates(
            [
                ("remove_edge", edges[0][0], edges[0][1]),
                ("add_edge", edges[1][0], edges[2][1], 0.4),
            ]
        )
        replica.merge_delta(report.index_delta)
        assert replica.export_state() == engine.index.export_state()

    def test_stale_repair_delta_refuses_to_chain(self):
        graph, engine = self._indexed_engine(seed=23)
        replica = HubIndex.from_state(graph, engine.index.export_state())
        edges = sorted(graph.edges())
        first = engine.apply_updates(
            [("remove_edge", edges[0][0], edges[0][1])]
        )
        second = engine.apply_updates(
            [("remove_edge", edges[1][0], edges[1][1])]
        )
        # Skipping ``first`` leaves a hole in the version chain.
        with pytest.raises(IndexParameterError, match="does not chain"):
            replica.merge_delta(second.index_delta)
        # Replaying in order walks the replica forward.
        replica.merge_delta(first.index_delta)
        replica.merge_delta(second.index_delta)
        assert replica.export_state() == engine.index.export_state()

    def test_repaired_index_matches_same_hub_rebuild(self):
        graph, engine = self._indexed_engine(seed=24)
        shadow = graph.copy()
        edges = sorted(graph.edges())
        engine.apply_updates(
            [
                ("remove_edge", edges[0][0], edges[0][1]),
                ("add_edge", edges[2][0], edges[3][1], 0.8),
            ]
        )
        shadow.remove_edge(edges[0][0], edges[0][1])
        shadow.add_edge(edges[2][0], edges[3][1], 0.8)

        reference = ReverseKRanksEngine(shadow)
        rebuilt = HubIndex.build(
            shadow,
            capacity=8,
            hubs=engine.index.hubs,
            backend=reference.compact_graph(),
        )
        reference.adopt_index(rebuilt)
        queries = sample_queries(shadow, 4)
        got = engine.query_many(queries, 3, algorithm="indexed")
        want = reference.query_many(queries, 3, algorithm="indexed")
        for mine, theirs in zip(got, want):
            assert mine.as_pairs() == theirs.as_pairs()
            assert _stats_dict(mine) == _stats_dict(theirs)


# ----------------------------------------------------------------------
# Satellite: graph updates must not tear down the worker pool
# ----------------------------------------------------------------------
@needs_fork
class TestPoolGraphSync:
    def _warm_engine(self, seed=31):
        graph = _mutable_gnp(seed=seed)
        engine = ReverseKRanksEngine(graph)
        engine.build_index(num_hubs=3, capacity=8)
        engine.parallel_min_batch = 1
        queries = sample_queries(graph, 6)
        engine.query_many(
            queries, 3, algorithm="dynamic", workers=2, worker_context="fork"
        )
        assert engine._pool is not None
        return graph, engine, queries

    def test_update_broadcast_keeps_worker_pids(self):
        graph, engine, queries = self._warm_engine()
        with engine:
            pids = sorted(p.pid for p in engine._pool._processes)
            edges = sorted(graph.edges())
            report = engine.apply_updates(
                [("remove_edge", edges[0][0], edges[0][1])]
            )
            assert report.pool_synced
            assert not report.recompacted
            assert engine._pool is not None
            assert sorted(p.pid for p in engine._pool._processes) == pids
            syncs = engine.registry.get("repro_pool_graph_syncs_total")
            assert syncs.value == 1

    def test_parallel_answers_match_sequential_after_update(self):
        graph, engine, queries = self._warm_engine(seed=32)
        with engine:
            shadow = graph.copy()
            edges = sorted(graph.edges())
            engine.apply_updates(
                [
                    ("remove_edge", edges[0][0], edges[0][1]),
                    ("add_edge", edges[1][0], edges[2][1], 0.6),
                ]
            )
            shadow.remove_edge(edges[0][0], edges[0][1])
            shadow.add_edge(edges[1][0], edges[2][1], 0.6)
            reference = ReverseKRanksEngine(shadow)
            reference.compact_graph()
            for algorithm in ("dynamic", "static"):
                parallel = engine.query_many(
                    queries, 3, algorithm=algorithm,
                    workers=2, worker_context="fork",
                )
                expected = reference.query_many(queries, 3, algorithm=algorithm)
                for mine, theirs in zip(parallel, expected):
                    assert mine.as_pairs() == theirs.as_pairs()
            parallel = engine.query_many(
                queries, 3, algorithm="indexed",
                workers=2, worker_context="fork",
            )
            sequential = engine.query_many(queries, 3, algorithm="indexed")
            for mine, theirs in zip(parallel, sequential):
                assert results_equivalent(mine, theirs)
                assert mine.rank_values() == theirs.rank_values()

    def test_recompaction_tears_pool_down(self):
        graph, engine, queries = self._warm_engine(seed=33)
        with engine:
            victim = sorted(graph.nodes())[-1]
            report = engine.apply_updates([("remove_node", victim)])
            assert report.recompacted
            assert not report.pool_synced
            assert engine._pool is None
            # Later queries still work, sequential or re-pooled.
            live_queries = [q for q in queries if q != victim]
            results = engine.query_many(live_queries, 3, algorithm="dynamic")
            assert len(results) == len(live_queries)

    def test_dead_worker_degrades_sync_gracefully(self):
        graph, engine, queries = self._warm_engine(seed=34)
        with engine:
            victim = engine._pool._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10.0)
            deadline = time.monotonic() + 10.0
            while victim.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            edges = sorted(graph.edges())
            shadow = graph.copy()
            report = engine.apply_updates(
                [("remove_edge", edges[0][0], edges[0][1])]
            )
            shadow.remove_edge(edges[0][0], edges[0][1])
            # The crash degraded the broadcast: pool dropped, not synced.
            assert not report.pool_synced
            assert engine._pool is None
            reference = ReverseKRanksEngine(shadow)
            reference.compact_graph()
            _assert_same_answers(
                engine, reference, queries, algorithm="dynamic"
            )

    def test_pool_refuses_foreign_overlay_state(self):
        graph, engine, _ = self._warm_engine(seed=35)
        with engine:
            other_graph = _mutable_gnp(seed=36)
            other = ReverseKRanksEngine(other_graph)
            base = other.compact_graph()
            edges = sorted(other_graph.edges())
            other_graph.remove_edge(edges[0][0], edges[0][1])
            overlay = OverlayGraph.from_base(
                other_graph, base, {edges[0][0], edges[0][1]}
            )
            with pytest.raises(ParallelExecutionError, match="rebuild the pool"):
                engine._pool.update_graph(overlay, overlay.overlay_state())
