"""The epoch-stamped scratch arena: reset semantics, reuse parity, growth.

The arena's contract is behavioural invisibility: any number of queries
drawing scratch from one arena must produce results — ranks, entry
identity and order, and every QueryStats counter — bit-identical to
fresh-allocation runs.  These tests pin that down at three levels: the
EpochStamps primitive, the IntHeap reuse protocol, and end-to-end query
sweeps (including the >256-epoch wraparound, which a hundred multi-
refinement queries cross many times over).
"""

from __future__ import annotations

import pytest

from repro.core import AlgorithmKind, ReverseKRanksEngine
from repro.core.config import BoundSet
from repro.core.sds_dynamic import dynamic_reverse_k_ranks
from repro.core.sds_static import static_reverse_k_ranks
from repro.graph import CompactGraph
from repro.traversal import EpochStamps, IntHeap, ScratchArena


def _stats_signature(result):
    """QueryStats as a comparable dict, ignoring wall-clock noise."""
    signature = result.stats.as_dict()
    signature.pop("elapsed_seconds")
    return signature


# ----------------------------------------------------------------------
# EpochStamps
# ----------------------------------------------------------------------
class TestEpochStamps:
    def test_stale_entries_from_epoch_e_invisible_at_e_plus_1(self):
        stamps = EpochStamps(8)
        epoch = stamps.advance()
        stamps.stamps[3] = epoch
        stamps.stamps[5] = epoch
        assert stamps.is_current(3) and stamps.is_current(5)
        stamps.advance()
        assert not stamps.is_current(3)
        assert not stamps.is_current(5)
        assert not any(stamps.is_current(key) for key in range(8))

    def test_wraparound_zeroes_without_resurrecting_entries(self):
        stamps = EpochStamps(4)
        first = stamps.advance()
        stamps.stamps[0] = first
        # Drive the one-byte epoch past its wrap point several times.
        for _ in range(700):
            epoch = stamps.advance()
            # Whatever the epoch value, entries stamped in *earlier*
            # epochs must never read as current.
            assert not stamps.is_current(0)
            stamps.stamps[0] = epoch
            assert stamps.is_current(0)
        assert 1 <= stamps.epoch <= 255

    def test_grow_keeps_new_keys_absent(self):
        stamps = EpochStamps(2)
        epoch = stamps.advance()
        stamps.stamps[1] = epoch
        stamps.grow(6)
        assert stamps.capacity == 6
        assert stamps.is_current(1)
        assert not any(stamps.is_current(key) for key in range(2, 6))

    def test_advance_zeroes_in_place(self):
        stamps = EpochStamps(3)
        table = stamps.stamps
        for _ in range(600):
            stamps.advance()
        assert stamps.stamps is table  # hot-loop local refs stay valid


# ----------------------------------------------------------------------
# IntHeap growth + clear-reuse
# ----------------------------------------------------------------------
class TestIntHeapReuse:
    def test_grow_raises_capacity_and_keeps_entries(self):
        heap = IntHeap(2)
        heap.push(0, 2.0)
        heap.push(1, 1.0)
        heap.grow(5)
        assert heap.capacity == 5
        heap.push(4, 0.5)
        assert heap.pop() == (4, 0.5)
        assert heap.pop() == (1, 1.0)
        assert heap.pop() == (0, 2.0)
        heap.grow(3)  # shrinking is ignored
        assert heap.capacity == 5

    def test_cleared_heap_pops_in_fresh_order(self):
        reused = IntHeap(6)
        for _ in range(5):
            fresh = IntHeap(6)
            reused.clear()
            for key, priority in [(3, 1.0), (1, 1.0), (4, 0.5), (2, 1.0)]:
                fresh.push(key, priority)
                reused.push(key, priority)
            fresh_order = [fresh.pop() for _ in range(4)]
            reused_order = [reused.pop() for _ in range(4)]
            assert fresh_order == reused_order

    def test_clear_mid_population_resets_positions(self):
        heap = IntHeap(4)
        heap.push(0, 1.0)
        heap.push(3, 2.0)
        heap.clear()
        assert len(heap) == 0
        assert 0 not in heap and 3 not in heap
        heap.push(0, 5.0)  # would raise if the position slot leaked
        assert heap.check_invariant()


# ----------------------------------------------------------------------
# Arena reuse: identical results and stats across >= 100 queries
# ----------------------------------------------------------------------
class TestArenaReuseParity:
    def test_reuse_across_100_queries_matches_fresh_allocation(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        arena = ScratchArena()
        nodes = sorted(random_gnp.nodes(), key=repr)
        served = 0
        for round_index in range(5):  # 5 x 22 nodes = 110 queries
            k = 3 + round_index
            for query in nodes:
                shared = dynamic_reverse_k_ranks(
                    random_gnp, query, k, backend=csr, arena=arena
                )
                fresh = dynamic_reverse_k_ranks(
                    random_gnp, query, k, backend=csr
                )
                assert shared.as_pairs() == fresh.as_pairs()
                assert [e.node for e in shared.entries] == [
                    e.node for e in fresh.entries
                ]
                assert _stats_signature(shared) == _stats_signature(fresh)
                served += 1
        assert served >= 100
        assert arena.queries_served >= 100

    def test_static_and_bound_ablation_reuse_parity(self, tie_heavy_graph):
        csr = CompactGraph.from_graph(tie_heavy_graph)
        arena = ScratchArena()
        queries = sorted(tie_heavy_graph.nodes(), key=repr)
        bound_sets = [
            BoundSet.none(),
            BoundSet(use_parent=True, use_height=False, use_count=False),
            BoundSet(use_parent=False, use_height=True, use_count=False),
            BoundSet(use_parent=False, use_height=False, use_count=True),
            BoundSet.all(),
        ]
        for bounds in bound_sets:
            for query in queries:
                shared = dynamic_reverse_k_ranks(
                    tie_heavy_graph, query, 4, bounds=bounds,
                    backend=csr, arena=arena,
                )
                fresh = dynamic_reverse_k_ranks(
                    tie_heavy_graph, query, 4, bounds=bounds, backend=csr
                )
                assert shared.as_pairs() == fresh.as_pairs()
                assert _stats_signature(shared) == _stats_signature(fresh)

    def test_generic_dict_path_reuse_parity(self, weighted_grid):
        # No backend: the arena serves the AddressableHeap/dict loops.
        arena = ScratchArena()
        for query in sorted(weighted_grid.nodes(), key=repr):
            shared = static_reverse_k_ranks(
                weighted_grid, query, 3, arena=arena
            )
            fresh = static_reverse_k_ranks(weighted_grid, query, 3)
            assert shared.as_pairs() == fresh.as_pairs()
            assert _stats_signature(shared) == _stats_signature(fresh)

    def test_engine_owns_and_reuses_one_arena(self, random_gnp):
        engine = ReverseKRanksEngine(random_gnp)
        queries = sorted(random_gnp.nodes(), key=repr)
        assert engine.arena.queries_served == 0
        first = engine.query_many(queries, 4, algorithm="dynamic")
        served_after_first = engine.arena.queries_served
        assert served_after_first >= len(queries)
        second = engine.query_many(queries, 4, algorithm="dynamic")
        assert engine.arena.queries_served > served_after_first
        assert [r.as_pairs() for r in first] == [r.as_pairs() for r in second]
        assert [_stats_signature(r) for r in first] == [
            _stats_signature(r) for r in second
        ]

    def test_indexed_queries_share_the_arena(self, random_gnp):
        engine = ReverseKRanksEngine(random_gnp)
        engine.build_index(num_hubs=3, capacity=8)
        before = engine.arena.queries_served
        engine.query_many(
            sorted(random_gnp.nodes(), key=repr)[:6], 4,
            algorithm=AlgorithmKind.INDEXED,
        )
        assert engine.arena.queries_served > before


# ----------------------------------------------------------------------
# Growth when a larger graph arrives
# ----------------------------------------------------------------------
class TestArenaGrowth:
    def test_arena_grows_and_stays_exact_across_graph_sizes(
        self, path_graph, random_gnp
    ):
        arena = ScratchArena()
        small_csr = CompactGraph.from_graph(path_graph)
        for query in path_graph.nodes():
            shared = dynamic_reverse_k_ranks(
                path_graph, query, 3, backend=small_csr, arena=arena
            )
            fresh = dynamic_reverse_k_ranks(path_graph, query, 3, backend=small_csr)
            assert shared.as_pairs() == fresh.as_pairs()
        small_capacity = arena.capacity
        assert small_capacity == path_graph.num_nodes

        larger_csr = CompactGraph.from_graph(random_gnp)
        for query in sorted(random_gnp.nodes(), key=repr):
            shared = dynamic_reverse_k_ranks(
                random_gnp, query, 4, backend=larger_csr, arena=arena
            )
            fresh = dynamic_reverse_k_ranks(random_gnp, query, 4, backend=larger_csr)
            assert shared.as_pairs() == fresh.as_pairs()
            assert _stats_signature(shared) == _stats_signature(fresh)
        assert arena.capacity == random_gnp.num_nodes > small_capacity

        # And shrinking back to the small graph neither shrinks the arena
        # nor resurrects stale large-graph state.
        for query in path_graph.nodes():
            shared = dynamic_reverse_k_ranks(
                path_graph, query, 3, backend=small_csr, arena=arena
            )
            fresh = dynamic_reverse_k_ranks(path_graph, query, 3, backend=small_csr)
            assert shared.as_pairs() == fresh.as_pairs()
        assert arena.capacity == random_gnp.num_nodes

    def test_ensure_capacity_is_monotonic(self):
        arena = ScratchArena(4)
        assert arena.capacity == 4
        arena.ensure_capacity(2)
        assert arena.capacity == 4
        arena.ensure_capacity(9)
        assert arena.capacity == 9
        assert len(arena.parent_bound) == 9
        assert len(arena.height_bound) == 9
        assert len(arena.lcount) == 9
        assert arena.tree_heap.capacity == 9
        assert arena.refine_heap.capacity == 9
        assert arena.tree_settled.capacity == 9
