"""Tests for the benchmark subsystem: workloads, harness, report, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    WORKLOAD_FAMILIES,
    build_report,
    build_suite,
    dataset_workload,
    gnp_workload,
    huge_suite,
    lattice_workload,
    powerlaw_workload,
    render_table,
    run_workload,
    smoke_suite,
)
from repro.bench.__main__ import main as bench_main
from repro.errors import WorkloadError


# ----------------------------------------------------------------------
# Workload generators
# ----------------------------------------------------------------------
def test_all_families_have_generators():
    assert set(WORKLOAD_FAMILIES) == {
        "path",
        "grid",
        "gnp",
        "powerlaw",
        "bichromatic",
        "lattice",
    }


def test_workloads_are_deterministic():
    first = gnp_workload(num_nodes=20, seed=9)
    second = gnp_workload(num_nodes=20, seed=9)
    assert first.graph.structurally_equal(second.graph)
    assert first.queries == second.queries
    other_seed = gnp_workload(num_nodes=20, seed=10)
    assert not first.graph.structurally_equal(other_seed.graph)


def test_smoke_suite_covers_every_family():
    suite = smoke_suite()
    assert [workload.family for workload in suite] == list(WORKLOAD_FAMILIES)
    for workload in suite:
        assert workload.num_nodes <= 32
        assert workload.queries
        assert all(workload.graph.has_node(query) for query in workload.queries)
        assert 1 <= workload.k < workload.num_nodes


def test_powerlaw_is_hub_heavy():
    workload = powerlaw_workload(num_nodes=60, attach=2, seed=3)
    degrees = sorted(
        (workload.graph.degree(node) for node in workload.graph.nodes()),
        reverse=True,
    )
    # Preferential attachment concentrates degree in the head.
    assert degrees[0] >= 3 * degrees[len(degrees) // 2]


def test_bichromatic_workload_queries_are_facilities():
    workload = build_suite(families=["bichromatic"], scale="smoke")[0]
    assert workload.partition is not None
    assert all(workload.partition.is_facility(query) for query in workload.queries)
    assert workload.k <= workload.partition.num_communities


def test_unknown_family_and_scale_rejected():
    with pytest.raises(WorkloadError):
        build_suite(families=["nope"])
    with pytest.raises(WorkloadError):
        build_suite(scale="gigantic")


def test_large_scale_defines_sampled_monochromatic_workloads():
    # Only the (cheap-to-generate) path family is materialised; the other
    # large presets are thousands of nodes and belong to the bench itself.
    (workload,) = build_suite(families=["path"], scale="large")
    assert workload.num_nodes >= 2000
    assert workload.naive_sample
    assert workload.index_params
    described = workload.describe()
    assert described["naive_sample"] == workload.naive_sample
    assert described["index_params"] == workload.index_params
    from repro.bench.workloads import _SCALES

    assert sorted(_SCALES["large"]) == ["gnp", "grid", "path", "powerlaw"]
    # Bichromatic has no large preset yet; asking for it explicitly fails.
    with pytest.raises(WorkloadError):
        build_suite(families=["bichromatic"], scale="large")


def test_lattice_workload_shape_and_determinism():
    first = lattice_workload(side=6, seed=3)
    second = lattice_workload(side=6, seed=3)
    assert first.graph.structurally_equal(second.graph)
    assert first.queries == second.queries
    assert first.num_nodes == 36
    assert first.family == "lattice"
    assert first.name == "lattice-6x6"
    # The diagonal shortcuts make it more than a pure grid.
    grid_edges = 2 * 6 * (6 - 1)
    assert first.graph.num_edges >= grid_edges
    with pytest.raises(WorkloadError):
        lattice_workload(side=1)
    with pytest.raises(WorkloadError):
        lattice_workload(side=4, diagonal_fraction=1.5)


def test_huge_scale_presets_use_auto_budgets():
    from repro.bench.workloads import _SCALES

    assert sorted(_SCALES["huge"]) == ["lattice"]
    preset = _SCALES["huge"]["lattice"]
    assert preset["side"] == 320  # n = 102,400 — the huge tier target
    assert preset["naive_sample"]
    assert preset["index_params"] == {"num_hubs": "auto", "explore_limit": "auto"}
    # Every large preset also defers to the budget policy now.
    for family, params in _SCALES["large"].items():
        assert params["index_params"]["num_hubs"] == "auto", family
    # Materialising the side=320 lattice is a bench-only cost; huge_suite
    # itself is exercised by the slow-marked smoke below.
    assert callable(huge_suite)


def test_dataset_workload_reads_edge_list(tmp_path):
    path = tmp_path / "tiny.txt"
    path.write_text("# tiny dataset\n0 1 1.0\n1 2 2.0\n2 3 1.5\n3 0 1.0\n")
    workload = dataset_workload(path, num_queries=2, seed=1)
    assert workload.family == "dataset"
    assert workload.name == "dataset-tiny"
    assert workload.num_nodes == 4
    assert workload.params["path"] == str(path)
    # Small graphs keep the exhaustive naive baseline.
    assert workload.naive_sample is None
    result = run_workload(workload, repetitions=1, warmup=0)
    assert result.algorithms["naive"].validated is True


def test_combined_scales_concatenate_suites():
    suite = build_suite(scale="smoke,default", families=["gnp"])
    assert [workload.name for workload in suite] == ["gnp-n30", "gnp-n120"]


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_result():
    workload = gnp_workload(num_nodes=18, avg_degree=4.0, seed=2, num_queries=2, k=2)
    return run_workload(workload, repetitions=2, warmup=1)


def test_harness_times_all_four_algorithms(tiny_result):
    assert set(tiny_result.algorithms) == {"naive", "static", "dynamic", "indexed"}
    for name, timing in tiny_result.algorithms.items():
        assert len(timing.repetitions) == 2
        assert timing.mean_seconds is not None and timing.mean_seconds >= 0
        assert timing.best_seconds <= max(timing.repetitions)
        assert timing.validated is True, name
    assert tiny_result.algorithms["indexed"].index_build_seconds is not None
    assert tiny_result.backend == "csr"
    assert tiny_result.backend_consistent is True


def test_harness_skips_indexed_on_bichromatic():
    workload = build_suite(families=["bichromatic"], scale="smoke")[0]
    result = run_workload(workload, repetitions=1, warmup=0)
    assert result.algorithms["indexed"].skipped
    assert not result.algorithms["indexed"].repetitions
    assert result.algorithms["dynamic"].validated is True
    # Bichromatic queries run on the CSR backend too (the SDS fast path
    # supports the partition predicates) and are checked against dict.
    assert result.backend == "csr"
    assert result.backend_consistent is True


def test_harness_samples_naive_on_large_workloads():
    workload = gnp_workload(
        num_nodes=36, avg_degree=4.0, seed=5, num_queries=2, k=3,
        naive_sample=10, index_params={"num_hubs": 3, "explore_limit": 18},
    )
    result = run_workload(workload, repetitions=1, warmup=0)
    naive = result.algorithms["naive"]
    assert naive.sampled_candidates == 10
    # Extrapolation scales the sampled batch to all |V| - 1 candidates.
    assert naive.estimated_full_seconds == pytest.approx(
        naive.mean_seconds * (36 - 1) / 10
    )
    assert naive.validated is True
    # Optimised algorithms are spot-checked against the sampled exact
    # ranks (and each other) and still count as validated.
    for name in ("static", "dynamic", "indexed"):
        timing = result.algorithms[name]
        assert timing.validated is True, name
        assert timing.speedup_vs_naive is not None
    assert result.backend_consistent is True
    payload = result.as_dict()
    assert payload["algorithms"]["naive"]["sampled_candidates"] == 10
    assert payload["algorithms"]["naive"]["estimated_full_seconds"] > 0


def test_harness_index_cache_round_trip(tmp_path):
    workload = gnp_workload(num_nodes=24, avg_degree=4.0, seed=7, num_queries=2, k=2)
    cold = run_workload(
        workload, repetitions=1, warmup=0, index_cache=tmp_path
    )
    assert cold.algorithms["indexed"].index_cache == "miss"
    assert list(tmp_path.glob("*.hubindex"))

    # Workloads regenerate deterministically, so a fresh graph object with
    # the same mutation history accepts the cached index.
    rebuilt = gnp_workload(num_nodes=24, avg_degree=4.0, seed=7, num_queries=2, k=2)
    warm = run_workload(
        rebuilt, repetitions=1, warmup=0, index_cache=tmp_path
    )
    assert warm.algorithms["indexed"].index_cache == "hit"
    assert warm.algorithms["indexed"].validated is True


# ----------------------------------------------------------------------
# Workers axis
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def workers_axis_result():
    workload = gnp_workload(
        num_nodes=24, avg_degree=4.0, seed=4, num_queries=4, k=3
    )
    return run_workload(workload, repetitions=1, warmup=0, workers=(1, 2))


def test_workers_axis_adds_suffixed_rows(workers_axis_result):
    algorithms = workers_axis_result.algorithms
    assert {"naive", "static", "dynamic", "indexed"} <= set(algorithms)
    for name in ("naive", "static", "dynamic", "indexed"):
        assert algorithms[name].workers == 1
        parallel = algorithms[f"{name}@w2"]
        assert parallel.workers == 2
        assert parallel.validated is True
        assert len(parallel.repetitions) == 1
        assert parallel.speedup_vs_serial is not None
        assert parallel.speedup_vs_naive is not None
    assert workers_axis_result.parallel_consistent is True


def test_workers_axis_report_fields(workers_axis_result):
    report = build_report([workers_axis_result], config={"workers": [1, 2]})
    (workload,) = report["workloads"]
    assert workload["parallel_consistent"] is True
    assert workload["algorithms"]["dynamic"]["workers"] == 1
    parallel = workload["algorithms"]["dynamic@w2"]
    assert parallel["workers"] == 2
    assert parallel["speedup_vs_serial"] > 0
    table = render_table(report)
    assert "dynamic@w2" in table
    json.dumps(report)


def test_single_parallel_workers_value_keys_rows_plainly():
    workload = gnp_workload(
        num_nodes=20, avg_degree=4.0, seed=6, num_queries=3, k=2
    )
    result = run_workload(workload, repetitions=1, warmup=0, workers=2)
    assert set(result.algorithms) == {"naive", "static", "dynamic", "indexed"}
    for name, timing in result.algorithms.items():
        assert timing.workers == 2, name
        assert timing.validated is True, name
    # The sequential reference was computed untimed; the check still ran.
    assert result.parallel_consistent is True


def test_workers_axis_skips_sampled_naive_retiming():
    workload = gnp_workload(
        num_nodes=36, avg_degree=4.0, seed=5, num_queries=2, k=3,
        naive_sample=10, index_params={"num_hubs": 3, "explore_limit": 18},
    )
    result = run_workload(workload, repetitions=1, warmup=0, workers=(1, 2))
    assert result.algorithms["naive"].sampled_candidates == 10
    assert result.algorithms["naive@w2"].skipped
    assert result.algorithms["dynamic@w2"].validated is True
    assert result.parallel_consistent is True


def test_workers_axis_rejects_bad_values_and_no_csr():
    workload = gnp_workload(num_nodes=18, seed=2, num_queries=2, k=2)
    with pytest.raises(WorkloadError):
        run_workload(workload, repetitions=1, warmup=0, workers=0)
    with pytest.raises(WorkloadError):
        run_workload(workload, repetitions=1, warmup=0, workers=(1, -2))
    with pytest.raises(WorkloadError):
        run_workload(
            workload, repetitions=1, warmup=0, workers=2, use_csr=False
        )


def test_cli_workers_axis(tmp_path):
    output = tmp_path / "bench.json"
    exit_code = bench_main(
        ["--smoke", "--families", "path", "--workers", "1,2",
         "--output", str(output), "--quiet"]
    )
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["config"]["workers"] == [1, 2]
    (workload,) = report["workloads"]
    assert workload["parallel_consistent"] is True
    assert "dynamic@w2" in workload["algorithms"]


def test_cli_rejects_malformed_workers(tmp_path, capsys):
    exit_code = bench_main(
        ["--smoke", "--workers", "two", "--output", str(tmp_path / "x.json")]
    )
    assert exit_code == 2
    assert "--workers" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Report + CLI
# ----------------------------------------------------------------------
def test_report_schema(tiny_result):
    report = build_report([tiny_result], config={"scale": "test"})
    assert report["schema_version"] == 1
    assert report["config"]["scale"] == "test"
    (workload,) = report["workloads"]
    assert workload["backend_consistent"] is True
    for name in ("naive", "static", "dynamic", "indexed"):
        timing = workload["algorithms"][name]
        assert timing["mean_seconds"] >= 0
        assert timing["per_query_seconds"] >= 0
        assert timing["validated"] is True
    assert workload["algorithms"]["naive"]["speedup_vs_naive"] == 1.0
    table = render_table(report)
    assert "gnp-n18" in table and "naive" in table
    json.dumps(report)  # must be JSON-serialisable as-is


def test_cli_smoke_writes_report(tmp_path, capsys):
    output = tmp_path / "BENCH_core.json"
    exit_code = bench_main(["--smoke", "--output", str(output), "--quiet"])
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["schema_version"] == 1
    assert report["config"]["scale"] == "smoke"
    families = {workload["family"] for workload in report["workloads"]}
    assert len(families) >= 3
    for workload in report["workloads"]:
        algorithms = workload["algorithms"]
        assert {"naive", "static", "dynamic", "indexed"} <= set(algorithms)
        for name, timing in algorithms.items():
            if timing.get("skipped"):
                continue
            assert timing["mean_seconds"] >= 0
            assert timing["validated"] is True


def test_cli_family_subset(tmp_path):
    output = tmp_path / "bench.json"
    exit_code = bench_main(
        ["--smoke", "--families", "path,grid", "--output", str(output), "--quiet"]
    )
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert [workload["family"] for workload in report["workloads"]] == ["path", "grid"]


def test_cli_scale_overrides_smoke_timing_defaults(tmp_path):
    # --scale overrides --smoke wholesale: the resolved scale, not the
    # flag, picks the repetition/warmup defaults, so `--smoke --scale
    # smoke` stays cold/fast while any other --scale gets the full 3+1.
    output = tmp_path / "bench.json"
    exit_code = bench_main(
        ["--smoke", "--scale", "smoke", "--families", "path",
         "--output", str(output), "--quiet"]
    )
    assert exit_code == 0
    config = json.loads(output.read_text())["config"]
    assert (config["repetitions"], config["warmup"]) == (1, 0)

    exit_code = bench_main(
        ["--smoke", "--scale", "default", "--families", "path",
         "--output", str(output), "--quiet"]
    )
    assert exit_code == 0
    config = json.loads(output.read_text())["config"]
    assert config["scale"] == "default"
    assert (config["repetitions"], config["warmup"]) == (3, 1)


def test_cli_rejects_unknown_family(tmp_path, capsys):
    exit_code = bench_main(
        ["--smoke", "--families", "nope", "--output", str(tmp_path / "x.json")]
    )
    assert exit_code == 2
    assert "unknown workload family" in capsys.readouterr().err


def test_cli_dataset_run(tmp_path):
    dataset = tmp_path / "toy.txt"
    dataset.write_text("0 1 1.0\n1 2 1.5\n2 3 1.0\n3 4 2.0\n4 0 1.0\n")
    output = tmp_path / "bench.json"
    exit_code = bench_main(
        ["--dataset", str(dataset), "--repetitions", "1", "--warmup", "0",
         "--output", str(output), "--quiet"]
    )
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["config"]["scale"] == "dataset"
    assert report["config"]["dataset"] == str(dataset)
    (workload,) = report["workloads"]
    assert workload["family"] == "dataset"
    assert workload["name"] == "dataset-toy"


def test_cli_dataset_missing_file_fails_cleanly(tmp_path, capsys):
    exit_code = bench_main(
        ["--dataset", str(tmp_path / "nope.txt"),
         "--output", str(tmp_path / "x.json"), "--quiet"]
    )
    assert exit_code == 2
    assert capsys.readouterr().err


# ----------------------------------------------------------------------
# Huge-tier smoke (slow)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_huge_tier_smoke_shares_graph_and_parallel_index():
    # A scaled-down huge-tier run: same preset shape (lattice + sampled
    # naive + auto budgets + workers axis) on an affordable side=40
    # lattice.  Asserts the three huge-tier facts end to end: workers map
    # the shared-memory graph, the pool-built hub index is bit-identical
    # to the sequential build, and every parallel batch matches its
    # sequential reference.
    workload = lattice_workload(
        side=40, num_queries=2, k=8, naive_sample=12,
        index_params={"num_hubs": "auto", "explore_limit": "auto"},
    )
    result = run_workload(workload, repetitions=1, warmup=0, workers=(1, 2))
    assert result.parallel_consistent is True
    assert result.parallel_index_consistent is True
    parallel = result.algorithms["indexed@w2"]
    assert parallel.graph_shared is True
    assert parallel.startup_payload_bytes is not None
    payload = result.as_dict()
    assert payload["algorithms"]["indexed@w2"]["graph_shared"] is True
    assert payload["parallel_index_consistent"] is True
    json.dumps(payload)


# ----------------------------------------------------------------------
# Mutation axis (--mutation-rate)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mutation_result():
    workload = gnp_workload(
        num_nodes=24, avg_degree=4.0, seed=6, num_queries=4, k=3
    )
    return run_workload(workload, repetitions=2, warmup=0, mutation_rate=0.5)


def test_mutation_axis_adds_mut_rows(mutation_result):
    algorithms = mutation_result.algorithms
    for name in ("dynamic", "indexed"):
        row = algorithms[f"{name}@mut"]
        assert row.validated is True
        assert len(row.repetitions) == 2
        # Every repetition applied at least one effective update, and
        # the counts were cross-checked against the repro.obs counters.
        assert row.updates_applied >= 2
        assert row.csr_recompactions is not None
        assert row.pool_graph_syncs is not None
        assert row.mean_seconds is not None and row.mean_seconds >= 0
    # Plain rows are untouched by the pass and carry no update fields.
    assert algorithms["dynamic"].updates_applied is None
    assert mutation_result.mutation_consistent is True


def test_mutation_axis_report_fields(mutation_result):
    report = build_report([mutation_result], config={"mutation_rate": 0.5})
    (workload,) = report["workloads"]
    assert workload["mutation_consistent"] is True
    row = workload["algorithms"]["dynamic@mut"]
    assert row["updates_applied"] >= 2
    assert "csr_recompactions" in row
    assert "pool_graph_syncs" in row
    json.dumps(report)


def test_mutation_axis_rejects_bad_rate_and_no_csr():
    workload = gnp_workload(num_nodes=18, seed=2, num_queries=2, k=2)
    with pytest.raises(WorkloadError):
        run_workload(workload, repetitions=1, warmup=0, mutation_rate=-0.1)
    with pytest.raises(WorkloadError):
        run_workload(
            workload, repetitions=1, warmup=0, use_csr=False,
            mutation_rate=0.5,
        )


def test_mutation_axis_skips_bichromatic():
    workload = build_suite(families=["bichromatic"], scale="smoke")[0]
    result = run_workload(workload, repetitions=1, warmup=0, mutation_rate=0.5)
    assert result.algorithms["dynamic@mut"].skipped
    assert not result.algorithms["dynamic@mut"].repetitions
    assert result.mutation_consistent is None


def test_mutation_axis_with_workers_syncs_live_pool():
    workload = gnp_workload(
        num_nodes=24, avg_degree=4.0, seed=9, num_queries=4, k=3
    )
    result = run_workload(
        workload, repetitions=1, warmup=0, workers=(1, 2), mutation_rate=0.5
    )
    assert result.mutation_consistent is True
    for name in ("dynamic", "indexed"):
        parallel = result.algorithms[f"{name}@mut@w2"]
        assert parallel.workers == 2
        assert parallel.validated is True
        assert parallel.updates_applied >= 1
    # The headline claim: across the pass, updates rode the in-place
    # pool broadcast (a row after a threshold recompaction legitimately
    # finds the pool closed, so the guarantee is pass-level).
    mut_rows = [
        timing for key, timing in result.algorithms.items() if "@mut" in key
    ]
    assert sum(row.pool_graph_syncs for row in mut_rows) >= 1


def test_cli_mutation_rate(tmp_path):
    output = tmp_path / "bench.json"
    exit_code = bench_main(
        ["--smoke", "--families", "gnp", "--mutation-rate", "0.5",
         "--output", str(output), "--quiet"]
    )
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["config"]["mutation_rate"] == 0.5
    (workload,) = report["workloads"]
    assert workload["mutation_consistent"] is True
    assert "dynamic@mut" in workload["algorithms"]
    assert "indexed@mut" in workload["algorithms"]
