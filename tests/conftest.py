"""Shared fixtures: small deterministic graphs exercising every code path.

All random structure is generated from fixed seeds so failures reproduce
exactly; fixtures are session-scoped because the query algorithms never
mutate graphs.
"""

from __future__ import annotations

import random

import pytest

from repro.graph import BichromaticPartition, Graph, GraphBuilder


def _gnp_graph(num_nodes: int, probability: float, seed: int, directed: bool) -> Graph:
    """Seeded G(n, p) with weights in [1, 5), built through GraphBuilder."""
    rng = random.Random(seed)
    builder = GraphBuilder(directed=directed, name=f"gnp-{num_nodes}-{seed}")
    for node in range(num_nodes):
        builder.add_node(node)
    for source in range(num_nodes):
        for target in range(num_nodes):
            if source == target or (not directed and source >= target):
                continue
            if rng.random() < probability:
                builder.add_interaction(source, target, round(rng.uniform(1.0, 5.0), 2))
    return builder.build()


@pytest.fixture(scope="session")
def path_graph() -> Graph:
    """0 - 1 - ... - 9 with unit weights: ranks are hand-computable."""
    graph = Graph(name="path-10")
    for node in range(9):
        graph.add_edge(node, node + 1, 1.0)
    return graph


@pytest.fixture(scope="session")
def weighted_grid() -> Graph:
    """4x4 grid with deterministic non-uniform weights (many near-ties)."""
    graph = Graph(name="grid-4x4")
    size = 4
    for row in range(size):
        for col in range(size):
            node = row * size + col
            if col + 1 < size:
                graph.add_edge(node, node + 1, 1.0 + ((row + col) % 3) * 0.5)
            if row + 1 < size:
                graph.add_edge(node, node + size, 1.0 + ((row * col) % 4) * 0.25)
    return graph


@pytest.fixture(scope="session")
def random_gnp() -> Graph:
    """Seeded undirected G(n=22, p=0.2)."""
    return _gnp_graph(22, 0.2, seed=7, directed=False)


@pytest.fixture(scope="session")
def directed_gnp() -> Graph:
    """Seeded directed G(n=16, p=0.22)."""
    return _gnp_graph(16, 0.22, seed=11, directed=True)


@pytest.fixture(scope="session")
def tie_heavy_graph() -> Graph:
    """Seeded graph with few distinct weights, forcing distance ties."""
    rng = random.Random(23)
    graph = Graph(name="tie-heavy")
    for node in range(18):
        graph.add_node(node)
    for source in range(18):
        for target in range(source + 1, 18):
            if rng.random() < 0.25:
                graph.add_edge(source, target, rng.choice([1.0, 1.0, 2.0]))
    return graph


@pytest.fixture(scope="session")
def bichromatic_case(random_gnp) -> BichromaticPartition:
    """Every third node of the random graph is a facility (V2)."""
    facilities = [node for node in random_gnp.nodes() if node % 3 == 0]
    return BichromaticPartition(random_gnp, facilities)


@pytest.fixture(
    scope="session",
    params=["path", "grid", "gnp", "directed", "ties"],
)
def any_graph(request, path_graph, weighted_grid, random_gnp, directed_gnp, tie_heavy_graph):
    """Every fixture graph in turn, for cross-cutting correctness tests."""
    return {
        "path": path_graph,
        "grid": weighted_grid,
        "gnp": random_gnp,
        "directed": directed_gnp,
        "ties": tie_heavy_graph,
    }[request.param]


def sample_queries(graph, count: int = 3):
    """A deterministic spread of query nodes for a fixture graph."""
    nodes = sorted(graph.nodes(), key=repr)
    if len(nodes) <= count:
        return nodes
    stride = max(1, len(nodes) // count)
    return nodes[::stride][:count]
