"""HubIndex save/load round-trips and staleness rejection."""

from __future__ import annotations

import pickle

import pytest

from repro.core.engine import ReverseKRanksEngine
from repro.core.hub_index import HubIndex
from repro.core.sds_indexed import indexed_reverse_k_ranks
from repro.errors import IndexParameterError
from repro.graph import CompactGraph, Graph


def build_graph(extra_edge: bool = False) -> Graph:
    graph = Graph(name="io-fixture")
    edges = [(0, 1, 2.0), (1, 2, 1.0), (2, 3, 3.0), (3, 4, 1.5), (0, 4, 9.0)]
    for source, target, weight in edges:
        graph.add_edge(source, target, weight)
    if extra_edge:
        graph.add_edge(1, 4, 2.5)
    return graph


def test_save_load_round_trip(tmp_path):
    graph = build_graph()
    index = HubIndex.build(graph, num_hubs=2, capacity=4)
    path = tmp_path / "warm.hubindex"
    assert index.save(path) == path

    loaded = HubIndex.load(path, graph)
    assert loaded.graph is graph
    assert loaded.capacity == index.capacity
    assert loaded.hubs == index.hubs
    assert loaded.num_known_ranks == index.num_known_ranks
    for hub in index.hubs:
        assert loaded.explored_count(hub) == index.explored_count(hub)
        for node in graph.nodes():
            assert loaded.known_rank(hub, node) == index.known_rank(hub, node)
    for node in graph.nodes():
        assert loaded.known_reverse_ranks(node) == index.known_reverse_ranks(node)
        assert loaded.check_value(node) == index.check_value(node)

    # A loaded index answers queries exactly like the original.
    for query in (0, 3):
        assert (
            indexed_reverse_k_ranks(graph, query, 2, index=loaded).as_pairs()
            == indexed_reverse_k_ranks(graph, query, 2, index=index).as_pairs()
        )


def test_save_rejects_stale_index(tmp_path):
    # Saving after a mutation would pair the build-time version with a
    # digest of the *mutated* adjacency — a file load() could mistake for
    # fresh — so save() itself must refuse.
    graph = build_graph()
    index = HubIndex.build(graph, num_hubs=1, capacity=4)
    graph.add_edge(0, 1, 0.5)
    with pytest.raises(IndexParameterError, match="stale"):
        index.save(tmp_path / "stale.hubindex")


def test_load_rejects_mutated_graph(tmp_path):
    graph = build_graph()
    path = tmp_path / "stale.hubindex"
    HubIndex.build(graph, num_hubs=1, capacity=4).save(path)
    # Lowering an existing edge's weight bumps the mutation version while
    # keeping the structural fingerprint (|V|, |E|) unchanged — exactly the
    # mutation only the version check can catch.
    graph.add_edge(0, 1, 0.5)
    with pytest.raises(IndexParameterError, match="stale"):
        HubIndex.load(path, graph)


def test_load_rejects_different_graph(tmp_path):
    path = tmp_path / "wrong.hubindex"
    HubIndex.build(build_graph(), num_hubs=1, capacity=4).save(path)
    with pytest.raises(IndexParameterError, match="different graph"):
        HubIndex.load(path, build_graph(extra_edge=True))


def test_load_rejects_non_index_payload(tmp_path):
    path = tmp_path / "junk.hubindex"
    with open(path, "wb") as handle:
        pickle.dump({"format": "something-else"}, handle)
    with pytest.raises(IndexParameterError, match="not a serialised hub index"):
        HubIndex.load(path, build_graph())


def test_load_rejects_future_io_version(tmp_path):
    from repro.core.hub_index import _IO_MAGIC

    graph = build_graph()
    path = tmp_path / "future.hubindex"
    HubIndex.build(graph, num_hubs=1, capacity=4).save(path)
    with open(path, "rb") as handle:
        handle.read(len(_IO_MAGIC))
        payload = pickle.load(handle)
    payload["io_version"] = 999
    with open(path, "wb") as handle:
        handle.write(_IO_MAGIC)
        pickle.dump(payload, handle)
    with pytest.raises(IndexParameterError, match="I/O version"):
        HubIndex.load(path, graph)


def test_load_rejects_same_shape_different_weights(tmp_path):
    graph = build_graph()
    path = tmp_path / "weights.hubindex"
    HubIndex.build(graph, num_hubs=2, capacity=4).save(path)
    # Identical mutation history (same |V|, |E|, directed AND version),
    # different weights: only the adjacency content digest can tell.
    twin = Graph(name="io-fixture")
    edges = [(0, 1, 9.0), (1, 2, 1.0), (2, 3, 3.0), (3, 4, 1.5), (0, 4, 9.0)]
    for source, target, weight in edges:
        twin.add_edge(source, target, weight)
    assert twin.version == graph.version
    with pytest.raises(IndexParameterError, match="digest"):
        HubIndex.load(path, twin)


def test_load_rejects_files_without_magic_before_unpickling(tmp_path):
    path = tmp_path / "nomagic.hubindex"
    path.write_bytes(b"definitely not an index payload")
    with pytest.raises(IndexParameterError, match="not a serialised hub index"):
        HubIndex.load(path, build_graph())


def test_load_rejects_truncated_file_with_valid_magic(tmp_path):
    # A crash mid-write leaves a file whose magic prefix is intact but
    # whose pickle stream is cut short.  load() must surface that as the
    # typed IndexParameterError, not a raw UnpicklingError/EOFError.
    graph = build_graph()
    path = tmp_path / "truncated.hubindex"
    HubIndex.build(graph, num_hubs=2, capacity=4).save(path)
    blob = path.read_bytes()
    from repro.core.hub_index import _IO_MAGIC

    assert blob.startswith(_IO_MAGIC)
    path.write_bytes(blob[: len(_IO_MAGIC) + (len(blob) - len(_IO_MAGIC)) // 2])
    with pytest.raises(IndexParameterError, match="truncated or corrupted"):
        HubIndex.load(path, graph)


def test_save_is_atomic_under_write_failure(tmp_path, monkeypatch):
    # A failed save must leave a previously-good index file byte-identical
    # (os.replace never ran) and must not litter temp files.
    graph = build_graph()
    path = tmp_path / "atomic.hubindex"
    index = HubIndex.build(graph, num_hubs=2, capacity=4)
    index.save(path)
    good_bytes = path.read_bytes()

    import repro.core.hub_index as hub_index_module

    def exploding_fsync(fd):
        raise OSError("disk full")

    monkeypatch.setattr(hub_index_module.os, "fsync", exploding_fsync)
    with pytest.raises(OSError, match="disk full"):
        index.save(path)
    monkeypatch.undo()

    assert path.read_bytes() == good_bytes
    assert [p.name for p in tmp_path.iterdir()] == ["atomic.hubindex"]
    # The surviving file still loads.
    assert HubIndex.load(path, graph).hubs == index.hubs


def test_save_to_new_path_under_write_failure_leaves_no_file(
    tmp_path, monkeypatch
):
    graph = build_graph()
    path = tmp_path / "never.hubindex"
    index = HubIndex.build(graph, num_hubs=1, capacity=4)

    import repro.core.hub_index as hub_index_module

    monkeypatch.setattr(
        hub_index_module.os,
        "fsync",
        lambda fd: (_ for _ in ()).throw(OSError("disk full")),
    )
    with pytest.raises(OSError, match="disk full"):
        index.save(path)
    assert list(tmp_path.iterdir()) == []


def test_save_replaces_existing_file_atomically(tmp_path):
    # Overwriting an index goes through the same temp+replace dance; the
    # final file is the new payload and no temp residue remains.
    graph = build_graph()
    path = tmp_path / "replace.hubindex"
    small = HubIndex.build(graph, num_hubs=1, capacity=4)
    small.save(path)
    big = HubIndex.build(graph, num_hubs=2, capacity=4)
    big.save(path)
    assert [p.name for p in tmp_path.iterdir()] == ["replace.hubindex"]
    assert HubIndex.load(path, graph).hubs == big.hubs


def test_engine_adopts_loaded_index(tmp_path):
    graph = build_graph()
    path = tmp_path / "adopt.hubindex"
    HubIndex.build(graph, num_hubs=2, capacity=4).save(path)
    engine = ReverseKRanksEngine(graph)
    engine.adopt_index(HubIndex.load(path, graph))
    results = engine.query_many([0, 3], 2, algorithm="indexed")
    baseline = engine.query_many([0, 3], 2, algorithm="naive")
    for got, want in zip(results, baseline):
        assert got.rank_values() == want.rank_values()


def test_adopt_index_rejects_foreign_graph():
    graph = build_graph()
    other = build_graph()
    engine = ReverseKRanksEngine(graph)
    with pytest.raises(IndexParameterError):
        engine.adopt_index(HubIndex.build(other, num_hubs=1, capacity=4))


def test_csr_backed_build_matches_dict_build():
    graph = build_graph()
    csr = CompactGraph.from_graph(graph)
    dict_index = HubIndex.build(graph, num_hubs=2, capacity=4)
    csr_index = HubIndex.build(graph, num_hubs=2, capacity=4, backend=csr)
    for hub in dict_index.hubs:
        for node in graph.nodes():
            assert dict_index.known_rank(hub, node) == csr_index.known_rank(hub, node)


def test_build_rejects_stale_backend():
    graph = build_graph()
    csr = CompactGraph.from_graph(graph)
    # Same node count, new version: only the version check can catch it —
    # and a stale build would record wrong ranks pinned to the new version.
    graph.add_edge(0, 1, 0.5)
    with pytest.raises(IndexParameterError, match="stale"):
        HubIndex.build(graph, num_hubs=1, capacity=4, backend=csr)
