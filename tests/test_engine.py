"""Tests for the engine facade, algorithm dispatch and query statistics."""

from __future__ import annotations

import pytest

from repro.core import (
    AlgorithmKind,
    BoundSet,
    ReverseKRanksEngine,
    results_equivalent,
)
from repro.errors import (
    BichromaticError,
    IndexParameterError,
    InvalidKError,
    InvalidQueryNodeError,
)


def test_engine_dispatches_all_algorithms(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    engine.build_index(num_hubs=3, capacity=16)
    baseline = engine.query(0, 4, AlgorithmKind.NAIVE)
    for kind in ("static", "dynamic", "indexed"):
        assert results_equivalent(baseline, engine.query(0, 4, kind))


def test_engine_indexed_requires_index(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    with pytest.raises(IndexParameterError):
        engine.query(0, 2, AlgorithmKind.INDEXED)


def test_engine_rejects_mismatched_partition(random_gnp, weighted_grid, bichromatic_case):
    with pytest.raises(BichromaticError):
        ReverseKRanksEngine(weighted_grid, partition=bichromatic_case)


def test_engine_bichromatic_mode(bichromatic_case):
    engine = ReverseKRanksEngine(bichromatic_case.graph, partition=bichromatic_case)
    query = sorted(bichromatic_case.facilities, key=repr)[0]
    baseline = engine.query(query, 3, AlgorithmKind.NAIVE)
    assert all(bichromatic_case.is_community(node) for node in baseline.nodes())
    for kind in (AlgorithmKind.STATIC, AlgorithmKind.DYNAMIC):
        assert results_equivalent(baseline, engine.query(query, 3, kind))
    with pytest.raises(IndexParameterError):
        engine.query(query, 3, AlgorithmKind.INDEXED)
    with pytest.raises(IndexParameterError):
        engine.build_index(num_hubs=2)


def test_engine_rejects_bichromatic_query_from_community(bichromatic_case):
    engine = ReverseKRanksEngine(bichromatic_case.graph, partition=bichromatic_case)
    community_node = sorted(bichromatic_case.communities, key=repr)[0]
    with pytest.raises(BichromaticError):
        engine.query(community_node, 2, AlgorithmKind.NAIVE)


def test_invalid_query_arguments(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    with pytest.raises(InvalidKError):
        engine.query(0, 0)
    with pytest.raises(InvalidKError):
        engine.query(0, True)
    with pytest.raises(InvalidQueryNodeError):
        engine.query("missing", 2)
    with pytest.raises(ValueError):
        engine.query(0, 2, algorithm="no-such-algorithm")


def test_dynamic_bounds_reduce_refinements(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    static = engine.query(0, 3, AlgorithmKind.STATIC)
    dynamic = engine.query(0, 3, AlgorithmKind.DYNAMIC)
    naive = engine.query(0, 3, AlgorithmKind.NAIVE)
    assert dynamic.stats.rank_refinements <= static.stats.rank_refinements
    assert static.stats.rank_refinements <= naive.stats.rank_refinements
    assert naive.stats.rank_refinements == random_gnp.num_nodes - 1


def test_stats_record_pruning_work(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    result = engine.query(0, 2, AlgorithmKind.DYNAMIC, bounds=BoundSet.all())
    stats = result.stats.as_dict()
    assert stats["tree_pops"] > 0
    assert stats["elapsed_seconds"] >= 0
    assert result.algorithm == "Dynamic-Three"
    # The bound ablation presets surface in the result label.
    parent_only = engine.query(0, 2, AlgorithmKind.DYNAMIC, bounds=BoundSet.parent_only())
    assert parent_only.algorithm == "Dynamic-Parent"


def test_indexed_engine_answers_from_index(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    engine.build_index(num_hubs=4, capacity=16)
    first = engine.query(0, 3, AlgorithmKind.INDEXED)
    second = engine.query(0, 3, AlgorithmKind.INDEXED)
    assert results_equivalent(first, second)
    # The warmed index must answer or prune at least as much as on the
    # first, colder run.
    warm = second.stats.answered_by_index + second.stats.pruned_by_check_dictionary
    cold = first.stats.answered_by_index + first.stats.pruned_by_check_dictionary
    assert warm >= cold


def test_query_result_container_protocol(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    result = engine.query(0, 3, AlgorithmKind.NAIVE)
    assert len(result) == len(result.nodes()) == len(result.as_pairs())
    for entry in result:
        assert entry.node in result
        assert result.ranks()[entry.node] == entry.rank
    assert result.kth_rank() == max(result.rank_values())
    assert "reverse 3-ranks" in result.summary()
