"""In-process chaos: failpoint-killed workers under concurrent clients.

The compact, deterministic sibling of ``scripts/chaos_smoke.py`` (which
CI runs at larger scale with probabilistic failpoints).  Every phase
asserts the headline property end to end: whatever the failpoints do to
the worker pool, every response the server releases is bit-identical to
a sequential reference, and no request hangs.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

import pytest

from repro import faults
from repro.core import ReverseKRanksEngine
from repro.serve import QueryServer, ServeClient, ServeConfig

from conftest import _gnp_graph, sample_queries

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not HAVE_FORK, reason="chaos suite needs the fork start method"
)


def shm_segments():
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return set()
    return {n for n in names if n.startswith(("repro_", "psm_"))}


@pytest.fixture(autouse=True)
def _disarm_failpoints():
    yield
    faults.clear()


@pytest.fixture
def reference(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    engine.build_index(num_hubs=3, capacity=16)
    nodes = sorted(random_gnp.nodes())
    results = engine.query_many(nodes, 4, algorithm="dynamic")
    return {node: result.as_pairs() for node, result in zip(nodes, results)}


def drive(host, port, expected, num_clients, requests_per_client):
    """Concurrent verifying load; returns (mismatches, failures, slowest)."""
    nodes = sorted(expected)
    lock = threading.Lock()
    mismatches, failures, slowest = [], [], [0.0]

    def client_loop(client_id):
        try:
            with ServeClient(
                host=host, port=port, timeout=60.0,
                retries=50, backoff_s=0.005,
            ) as client:
                cursor = client_id
                for _ in range(requests_per_client):
                    batch = [nodes[(cursor + j) % len(nodes)] for j in range(2)]
                    cursor += 2
                    started = time.perf_counter()
                    answers = client.query_many(batch, k=4, algorithm="dynamic")
                    elapsed = time.perf_counter() - started
                    with lock:
                        slowest[0] = max(slowest[0], elapsed)
                        for query, answer in zip(batch, answers):
                            if answer != expected[query]:
                                mismatches.append(query)
        except BaseException as exc:  # noqa: BLE001 - tallied for the assert
            with lock:
                failures.append(repr(exc))

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return mismatches, failures, slowest[0]


def test_chaos_phases_serve_correctly_and_heal(random_gnp, reference):
    """Crash storm -> stall past the deadline -> recovery, one server.

    Phase 1 arms a deterministic every-second-task crash: both workers
    (and every respawned generation) die repeatedly, the batch crash
    budget trips, the engine retries and ultimately degrades to
    sequential — all while every released response stays bit-identical.
    Phase 2 arms a one-shot 30s stall; the 1s batch deadline must kill
    the stuck worker and fail over fast.  Phase 3 clears the chaos and
    requires a healthy, non-degraded pool answering correctly again.
    """
    shm_before = shm_segments()
    engine = ReverseKRanksEngine(random_gnp)
    engine.build_index(num_hubs=3, capacity=16)
    engine.parallel_min_batch = 1
    config = ServeConfig(
        workers=2,
        worker_context="fork",
        max_wait_ms=2.0,
        max_pending=256,
        batch_timeout_s=1.0,
        on_pool_failure="retry",
    )
    with QueryServer(engine, config=config) as server:
        host, port = server.address

        # Phase 1: every worker dies on its second task, generation
        # after generation, until the engine gives up on the pool.
        faults.configure("worker.before_task=crash#2", seed=7)
        mismatches, failures, slowest = drive(host, port, reference, 4, 4)
        assert mismatches == []
        assert failures == []
        assert slowest < 30.0
        with ServeClient(host=host, port=port) as probe:
            health = probe.health()
        assert health["worker_crashes"] >= 2
        assert health["worker_respawns"] >= 1

        # Phase 2: fresh pool; each worker hangs once, on its second
        # result, 30x longer than the batch deadline.
        faults.clear()
        engine.close_pool()
        engine.reset_parallel_breaker()
        faults.configure("worker.before_result=sleep(30)#2*1", seed=7)
        mismatches, failures, slowest = drive(host, port, reference, 2, 4)
        assert mismatches == []
        assert failures == []
        assert slowest < 15.0  # deadline resolved it, not the 30s nap
        with ServeClient(host=host, port=port) as probe:
            health = probe.health()
        assert health["worker_timeouts"] >= 1

        # Phase 3: chaos off — healthy, non-degraded, still correct.
        faults.clear()
        engine.close_pool()
        engine.reset_parallel_breaker()
        mismatches, failures, slowest = drive(host, port, reference, 4, 2)
        assert mismatches == []
        assert failures == []
        with ServeClient(host=host, port=port) as probe:
            health = probe.health()
        assert health["degraded"] is False
        assert health["pool_active"] is True
        assert health["pool_alive"] == 2
        assert health["healthy"] is True

    assert shm_segments() - shm_before == set()


def test_chaos_worker_crash_during_graph_sync():
    """A worker dying mid graph-broadcast degrades the sync, never the answers.

    apply_updates ships the overlay side-table + repaired index to the
    live pool; arming a crash on each worker's second task makes both
    workers die exactly when that broadcast arrives.  The engine must
    absorb the WorkerCrashError (drop the pool, report
    ``pool_synced=False``), keep serving bit-identical sequential
    answers, rebuild a healthy pool on the next parallel batch, and sync
    the *next* update in place again once the chaos is gone.
    """
    shm_before = shm_segments()
    graph = _gnp_graph(22, 0.2, seed=19, directed=False)
    shadow = graph.copy()
    engine = ReverseKRanksEngine(graph)
    engine.build_index(num_hubs=3, capacity=8)
    engine.parallel_min_batch = 1
    queries = sorted(graph.nodes())[:6]

    def check_against_fresh():
        reference = ReverseKRanksEngine(shadow)
        reference.compact_graph()
        expected = reference.query_many(queries, 3, algorithm="dynamic")
        actual = engine.query_many(queries, 3, algorithm="dynamic")
        for want, got in zip(expected, actual):
            assert got.as_pairs() == want.as_pairs(), want.query
            left, right = want.stats.as_dict(), got.stats.as_dict()
            left.pop("elapsed_seconds")
            right.pop("elapsed_seconds")
            assert left == right, want.query

    with engine:
        # Armed before the pool forks (workers inherit the failpoint
        # table at spawn): task 1 per worker is the warm query shard,
        # the graph broadcast is task 2 — both workers die holding it.
        faults.configure("worker.before_task=crash#2", seed=11)
        engine.query_many(
            queries, 3, algorithm="dynamic", workers=2, worker_context="fork"
        )
        assert engine._pool is not None
        edges = sorted(graph.edges())
        report = engine.apply_updates(
            [("remove_edge", edges[0][0], edges[0][1])]
        )
        shadow.remove_edge(edges[0][0], edges[0][1])
        assert report.applied == 1
        assert not report.pool_synced
        assert engine._pool is None  # degraded, not wedged
        faults.clear()
        check_against_fresh()

        # A fresh pool serves the mutated graph bit-identically...
        parallel = engine.query_many(
            queries, 3, algorithm="dynamic", workers=2, worker_context="fork"
        )
        sequential = engine.query_many(queries, 3, algorithm="dynamic")
        assert [r.as_pairs() for r in parallel] == [
            r.as_pairs() for r in sequential
        ]
        # ...and with the chaos gone the next update syncs in place.
        pids = sorted(p.pid for p in engine._pool._processes)
        report = engine.apply_updates(
            [("add_edge", edges[1][0], edges[2][1], 0.7)]
        )
        shadow.add_edge(edges[1][0], edges[2][1], 0.7)
        assert report.pool_synced
        assert sorted(p.pid for p in engine._pool._processes) == pids
        check_against_fresh()

    assert shm_segments() - shm_before == set()
