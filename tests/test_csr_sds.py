"""CSR-vs-dict parity for the array-specialised SDS-tree pipeline.

The CSR fast path (:mod:`repro.traversal.csr_sds`) must be a bit-identical
transcription of the dict-backed framework: same ranks, same result nodes,
and — the stronger bar — the same :class:`~repro.core.types.QueryStats`
counters (``rank_refinements`` above all, the paper's pruning-power proxy).
These tests sweep directed, tie-heavy and bichromatic fixtures, every
``BoundSet`` ablation, and the hub-indexed algorithm.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bichromatic import bichromatic_reverse_k_ranks
from repro.core.config import BoundSet
from repro.core.hub_index import HubIndex
from repro.core.sds_dynamic import dynamic_reverse_k_ranks
from repro.core.sds_static import static_reverse_k_ranks
from repro.errors import GraphValidationError
from repro.core.sds_indexed import indexed_reverse_k_ranks
from repro.graph import BichromaticPartition, CompactGraph, Graph
from repro.graph.views import transpose_view
from repro.traversal import shortest_path_distances

BOUND_PRESETS = [
    BoundSet.none(),
    BoundSet.parent_only(),
    BoundSet.parent_and_count(),
    BoundSet.parent_and_height(),
    BoundSet.all(),
]


def stats_signature(result):
    """Every stats counter except wall-clock time."""
    payload = result.stats.as_dict()
    payload.pop("elapsed_seconds")
    return payload


def random_graph(seed: int, num_nodes: int = 40, directed: bool = False,
                 tie_heavy: bool = False) -> Graph:
    rng = random.Random(7_000 + seed)
    graph = Graph(directed=directed, name=f"parity-{seed}")
    graph.add_nodes(range(num_nodes))
    for source in range(num_nodes):
        for target in range(source + 1 if not directed else 0, num_nodes):
            if source == target:
                continue
            if rng.random() < 7.0 / num_nodes:
                weight = (
                    float(rng.randint(1, 3)) if tie_heavy
                    else round(rng.uniform(1.0, 10.0), 2)
                )
                graph.add_edge(source, target, weight)
    return graph


def assert_bit_identical(dict_result, csr_result):
    assert dict_result.as_pairs() == csr_result.as_pairs()
    assert stats_signature(dict_result) == stats_signature(csr_result)


# ----------------------------------------------------------------------
# Static + dynamic parity across fixture shapes and bound ablations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("directed", [False, True])
@pytest.mark.parametrize("tie_heavy", [False, True])
def test_dynamic_parity_including_refinement_counts(seed, directed, tie_heavy):
    graph = random_graph(seed, directed=directed, tie_heavy=tie_heavy)
    csr = CompactGraph.from_graph(graph)
    for query in (0, 13, 27):
        for k in (1, 5):
            for bounds in BOUND_PRESETS:
                dict_result = dynamic_reverse_k_ranks(graph, query, k, bounds=bounds)
                csr_result = dynamic_reverse_k_ranks(csr, query, k, bounds=bounds)
                backend_result = dynamic_reverse_k_ranks(
                    graph, query, k, bounds=bounds, backend=csr
                )
                assert_bit_identical(dict_result, csr_result)
                assert_bit_identical(dict_result, backend_result)


@pytest.mark.parametrize("seed", range(4))
def test_static_parity(seed):
    graph = random_graph(seed, tie_heavy=True)
    csr = CompactGraph.from_graph(graph)
    for query in (0, 20):
        assert_bit_identical(
            static_reverse_k_ranks(graph, query, 4),
            static_reverse_k_ranks(csr, query, 4),
        )


# ----------------------------------------------------------------------
# Indexed parity (twin deterministic indexes, learning included)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_indexed_parity_with_warm_index_learning(seed):
    graph = random_graph(seed, num_nodes=36)
    csr = CompactGraph.from_graph(graph)
    build = dict(num_hubs=5, explore_limit=20, capacity=8)
    dict_index = HubIndex.build(graph, **build)
    csr_index = HubIndex.build(graph, **build)
    # Repeated queries keep both indexes learning in lockstep; parity must
    # survive the warm-index feedback loop, not just the first query.
    for query in (0, 11, 23, 11):
        for k in (2, 6):
            assert_bit_identical(
                indexed_reverse_k_ranks(graph, query, k, index=dict_index),
                indexed_reverse_k_ranks(graph, query, k, index=csr_index, backend=csr),
            )
    assert dict_index.num_known_ranks == csr_index.num_known_ranks


# ----------------------------------------------------------------------
# Bichromatic parity (candidate/counted predicate masks)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("tie_heavy", [False, True])
def test_bichromatic_parity(seed, tie_heavy):
    graph = random_graph(seed, num_nodes=36, tie_heavy=tie_heavy)
    csr = CompactGraph.from_graph(graph)
    facilities = random.Random(seed).sample(range(36), 12)
    partition = BichromaticPartition(graph, facilities)
    query = sorted(partition.facilities)[0]
    for k in (1, 4):
        for bounds in (BoundSet.none(), BoundSet.all()):
            assert_bit_identical(
                bichromatic_reverse_k_ranks(partition, query, k, bounds=bounds),
                bichromatic_reverse_k_ranks(
                    partition, query, k, bounds=bounds, backend=csr
                ),
            )


# ----------------------------------------------------------------------
# Backend freshness validation
# ----------------------------------------------------------------------
def test_stale_backend_rejected():
    graph = random_graph(0)
    csr = CompactGraph.from_graph(graph)
    graph.add_edge(0, 39, 1.0)
    with pytest.raises(GraphValidationError):
        dynamic_reverse_k_ranks(graph, 0, 2, backend=csr)


def test_foreign_backend_rejected():
    graph = random_graph(0)
    other = random_graph(1, num_nodes=10)
    with pytest.raises(GraphValidationError):
        dynamic_reverse_k_ranks(graph, 0, 2, backend=CompactGraph.from_graph(other))


def test_foreign_backend_with_identical_shape_rejected():
    # Two independently built graphs with the same construction sequence
    # share node count AND mutation version; only the source-identity
    # weakref can tell their compilations apart.
    twin_a = random_graph(0)
    twin_b = random_graph(0)
    assert twin_a.version == twin_b.version
    with pytest.raises(GraphValidationError, match="different graph"):
        dynamic_reverse_k_ranks(
            twin_b, 0, 2, backend=CompactGraph.from_graph(twin_a)
        )


def test_non_compact_backend_rejected():
    graph = random_graph(0)
    with pytest.raises(GraphValidationError):
        dynamic_reverse_k_ranks(graph, 0, 2, backend=graph)


def test_transposed_backend_rejected():
    # A reverse_view shares source identity, node count and version with
    # the forward compilation, but its adjacency roles are swapped —
    # the freshness gate must not let it traverse as the forward graph.
    graph = random_graph(2, directed=True)
    reverse = CompactGraph.from_graph(graph).reverse_view()
    assert reverse.is_transposed
    with pytest.raises(GraphValidationError, match="transposed"):
        dynamic_reverse_k_ranks(graph, 0, 2, backend=reverse)
    # Double reversal restores the forward orientation.
    assert not reverse.reverse_view().is_transposed


# ----------------------------------------------------------------------
# Reverse views over CompactGraph stay on the fast path
# ----------------------------------------------------------------------
def test_transpose_view_of_compact_graph_is_compact():
    graph = random_graph(3, directed=True)
    csr = CompactGraph.from_graph(graph)
    reverse = transpose_view(csr)
    assert getattr(reverse, "is_compact", False)
    # Swapped adjacency: out-neighbours of the reverse are in-neighbours
    # of the original, in identical order.
    for node in (0, 7, 21):
        assert list(reverse.neighbor_items(node)) == list(csr.in_neighbor_items(node))
        assert list(reverse.in_neighbor_items(node)) == list(csr.neighbor_items(node))
        assert reverse.out_degree(node) == csr.in_degree(node)


def test_reverse_view_distances_match_dict_transpose():
    graph = random_graph(5, directed=True)
    csr = CompactGraph.from_graph(graph)
    fast = shortest_path_distances(transpose_view(csr), 4)
    slow = shortest_path_distances(transpose_view(graph), 4)
    assert fast == slow


def test_reverse_view_of_undirected_graph_is_itself():
    csr = CompactGraph.from_graph(random_graph(1))
    assert csr.reverse_view() is csr
    assert transpose_view(csr) is csr
