"""The query service: framing, batching, admission, durability, CLI plumbing.

Server tests run a real :class:`QueryServer` on a loopback TCP port (or a
unix socket) inside the test process — the engine, batcher and handler
threads are all genuine; only process isolation is skipped (the
subprocess restart path is covered by ``scripts/serve_smoke.py`` in CI).
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time

import pytest

from repro.core import ReverseKRanksEngine
from repro.errors import (
    ProtocolError,
    ServeError,
    ServerOverloadedError,
)
from repro.serve import (
    DurableIndexStore,
    QueryServer,
    ServeClient,
    ServeConfig,
    recv_message,
    send_message,
)
from repro.serve.bootstrap import parse_fixture, prepare_engine

from conftest import sample_queries


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestProtocol:
    def pair(self):
        return socket.socketpair()

    def test_round_trip(self):
        left, right = self.pair()
        with left, right:
            message = {"op": "query", "queries": [1, 2], "k": 3, "x": "é"}
            send_message(left, message)
            assert recv_message(right) == message

    def test_clean_eof_returns_none(self):
        left, right = self.pair()
        with right:
            left.close()
            assert recv_message(right) is None

    def test_eof_mid_frame_raises(self):
        left, right = self.pair()
        with right:
            left.sendall(struct.pack("<I", 100) + b"{\"a\"")
            left.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(right)

    def test_oversized_frame_rejected_without_allocation(self):
        left, right = self.pair()
        with left, right:
            left.sendall(struct.pack("<I", (1 << 31) + 17))
            with pytest.raises(ProtocolError, match="limit"):
                recv_message(right)

    def test_non_json_payload_raises(self):
        left, right = self.pair()
        with left, right:
            left.sendall(struct.pack("<I", 4) + b"\xff\xfe\x00\x01")
            with pytest.raises(ProtocolError, match="not valid JSON"):
                recv_message(right)

    def test_non_object_payload_raises(self):
        left, right = self.pair()
        with left, right:
            left.sendall(struct.pack("<I", 7) + b"[1,2,3]")
            with pytest.raises(ProtocolError, match="JSON object"):
                recv_message(right)


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
def make_server(graph, store=None, **config_kwargs):
    engine = ReverseKRanksEngine(graph)
    engine.build_index(num_hubs=3, capacity=16)
    config_kwargs.setdefault("max_wait_ms", 2.0)
    server = QueryServer(
        engine, config=ServeConfig(**config_kwargs), store=store
    )
    return server


class TestQueryServer:
    def test_answers_match_direct_engine(self, random_gnp):
        reference = ReverseKRanksEngine(random_gnp)
        reference.build_index(num_hubs=3, capacity=16)
        queries = sample_queries(random_gnp, 4)
        with make_server(random_gnp) as server:
            host, port = server.address
            with ServeClient(host=host, port=port) as client:
                for algorithm in ("dynamic", "indexed"):
                    served = client.query_many(
                        queries, k=4, algorithm=algorithm
                    )
                    direct = reference.query_many(
                        queries, 4, algorithm=algorithm
                    )
                    assert served == [
                        result.as_pairs() for result in direct
                    ]

    def test_single_query_form(self, random_gnp):
        query = sample_queries(random_gnp, 1)[0]
        with make_server(random_gnp) as server:
            host, port = server.address
            with ServeClient(host=host, port=port) as client:
                pairs = client.query(query, k=3, algorithm="dynamic")
        assert len(pairs) == 3

    def test_defaults_applied(self, random_gnp):
        query = sample_queries(random_gnp, 1)[0]
        with make_server(random_gnp, default_k=5) as server:
            host, port = server.address
            with ServeClient(host=host, port=port) as client:
                assert len(client.query(query)) == 5

    def test_concurrent_clients_coalesce_into_batches(self, random_gnp):
        nodes = sorted(random_gnp.nodes())
        with make_server(random_gnp, max_batch=64) as server:
            host, port = server.address
            server.batcher.pause()
            outputs = [None] * 12
            threads = []

            def issue(i):
                with ServeClient(host=host, port=port) as client:
                    outputs[i] = client.query(
                        nodes[i % len(nodes)], k=3, algorithm="indexed"
                    )

            for i in range(12):
                thread = threading.Thread(target=issue, args=(i,))
                thread.start()
                threads.append(thread)
            # Wait until every request is parked in the batcher, then
            # release them as ONE coalesced batch.
            deadline = threading.Event()
            for _ in range(500):
                if server.batcher.requests >= 12:
                    break
                deadline.wait(0.01)
            assert server.batcher.requests == 12
            server.batcher.resume()
            for thread in threads:
                thread.join()
            assert all(out is not None for out in outputs)
            assert server.batcher.batches == 1
            assert server.batcher.queries == 12

    def test_max_batch_caps_each_engine_call(self, random_gnp):
        """A parked backlog drains in max_batch-sized chunks.

        The cap bounds the engine call itself, not just the flush
        trigger — otherwise the one-query-per-request baseline server
        (``max_batch=1``) would quietly coalesce its backlog and the
        batching benchmark would compare a server against itself.
        """
        nodes = sorted(random_gnp.nodes())
        with make_server(random_gnp, max_batch=4) as server:
            host, port = server.address
            server.batcher.pause()
            outputs = [None] * 12
            threads = []

            def issue(i):
                with ServeClient(host=host, port=port) as client:
                    outputs[i] = client.query(
                        nodes[i % len(nodes)], k=3, algorithm="indexed"
                    )

            for i in range(12):
                thread = threading.Thread(target=issue, args=(i,))
                thread.start()
                threads.append(thread)
            for _ in range(500):
                if server.batcher.requests >= 12:
                    break
                time.sleep(0.01)
            assert server.batcher.requests == 12
            server.batcher.resume()
            for thread in threads:
                thread.join()
            assert all(out is not None for out in outputs)
            assert server.batcher.queries == 12
            assert server.batcher.batches == 3

    def test_overload_is_explicit_and_retryable(self, random_gnp):
        nodes = sorted(random_gnp.nodes())
        with make_server(random_gnp, max_pending=2) as server:
            host, port = server.address
            server.batcher.pause()
            try:
                with ServeClient(host=host, port=port) as blocker:
                    # Park 2 queries (fills max_pending) without waiting
                    # for the reply frame.
                    send_message(
                        blocker._sock,
                        {
                            "op": "query",
                            "queries": nodes[:2],
                            "k": 3,
                            "algorithm": "dynamic",
                        },
                    )
                    for _ in range(500):
                        if server.batcher.requests >= 1:
                            break
                        threading.Event().wait(0.01)
                    with ServeClient(host=host, port=port) as client:
                        with pytest.raises(ServerOverloadedError):
                            client.query(nodes[0], k=3, algorithm="dynamic")
                    assert server.batcher.overloads == 1
                    server.batcher.resume()
                    # The parked request still completes...
                    reply = recv_message(blocker._sock)
                    assert reply["ok"] is True
                # ...and the shed one succeeds on retry.
                with ServeClient(host=host, port=port) as client:
                    assert client.query(nodes[0], k=3, algorithm="dynamic")
            finally:
                server.batcher.resume()

    def test_bad_request_fails_alone(self, random_gnp):
        nodes = sorted(random_gnp.nodes())
        with make_server(random_gnp) as server:
            host, port = server.address
            with ServeClient(host=host, port=port) as client:
                with pytest.raises(ServeError, match="InvalidQueryNodeError"):
                    client.query(10_000, k=3)
                with pytest.raises(ServeError, match="k"):
                    client.query(nodes[0], k=0)
                with pytest.raises(ServeError, match="algorithm|Algorithm"):
                    client.query(nodes[0], k=3, algorithm="nonsense")
                with pytest.raises(ServeError, match="non-empty"):
                    client._call({"op": "query", "queries": []})
                # The connection and server survive all of it.
                assert client.ping()
                assert client.query(nodes[0], k=3)

    def test_unknown_op_is_an_error(self, random_gnp):
        with make_server(random_gnp) as server:
            host, port = server.address
            with ServeClient(host=host, port=port) as client:
                with pytest.raises(ServeError, match="unknown op"):
                    client._call({"op": "frobnicate"})

    def test_info_and_stats(self, random_gnp):
        with make_server(random_gnp, max_batch=32) as server:
            host, port = server.address
            with ServeClient(host=host, port=port) as client:
                info = client.info()
                assert info["num_nodes"] == random_gnp.num_nodes
                assert info["max_batch"] == 32
                assert info["has_index"] is True
                assert info["durable"] is False
                client.query(sorted(random_gnp.nodes())[0], k=3)
                stats = client.stats()
                assert stats["queries"] >= 1
                assert stats["batches"] >= 1
                assert stats["index_known_ranks"] > 0

    def test_unix_socket_transport(self, random_gnp, tmp_path):
        path = str(tmp_path / "serve.sock")
        engine = ReverseKRanksEngine(random_gnp)
        engine.build_index(num_hubs=3, capacity=16)
        server = QueryServer(
            engine, config=ServeConfig(max_wait_ms=2.0), unix_path=path
        )
        with server:
            with ServeClient(unix_path=path) as client:
                assert client.ping()
                assert client.query(
                    sorted(random_gnp.nodes())[0], k=3, algorithm="indexed"
                )
        # The socket file is cleaned up on stop.
        assert not (tmp_path / "serve.sock").exists()

    def test_shutdown_op_stops_server(self, random_gnp):
        server = make_server(random_gnp).start()
        host, port = server.address
        with ServeClient(host=host, port=port) as client:
            client.shutdown()
        server.serve_forever()  # returns because stop() ran
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)

    def test_garbage_frame_gets_error_response(self, random_gnp):
        with make_server(random_gnp) as server:
            host, port = server.address
            with socket.create_connection((host, port)) as raw:
                raw.sendall(struct.pack("<I", 3) + b"abc")
                reply = recv_message(raw)
                assert reply["ok"] is False

    def test_answered_learning_survives_crash(self, random_gnp, tmp_path):
        """Durability ordering: an answered query's learning is on disk.

        The server process state is abandoned (no stop(), no final
        compaction — the kill -9 analogue for in-process tests) and the
        store directory alone must reproduce every rank the clients'
        answered queries taught the index.
        """
        engine = ReverseKRanksEngine(random_gnp)
        engine.build_index(num_hubs=3, capacity=16)
        store = DurableIndexStore(tmp_path / "state")
        store.install(engine.index)
        server = QueryServer(
            engine, config=ServeConfig(max_wait_ms=2.0), store=store
        ).start()
        host, port = server.address
        queries = sample_queries(random_gnp, 4)
        with ServeClient(host=host, port=port) as client:
            client.query_many(queries, k=4, algorithm="indexed")
            answered_state = pickle.dumps(engine.export_state())
        # Simulated kill -9: nothing is stopped, closed, or compacted.
        del server, store

        replayed = DurableIndexStore(tmp_path / "state").load(random_gnp)
        assert pickle.dumps(replayed.export_state()) == answered_state

    def test_clean_stop_compacts_journal(self, random_gnp, tmp_path):
        engine = ReverseKRanksEngine(random_gnp)
        engine.build_index(num_hubs=3, capacity=16)
        store = DurableIndexStore(tmp_path / "state")
        store.install(engine.index)
        with QueryServer(
            engine, config=ServeConfig(max_wait_ms=2.0), store=store
        ) as server:
            host, port = server.address
            with ServeClient(host=host, port=port) as client:
                client.query_many(
                    sample_queries(random_gnp, 4), k=4, algorithm="indexed"
                )
        reopened = DurableIndexStore(tmp_path / "state")
        assert reopened.journal.num_records == 0  # folded on shutdown
        loaded = reopened.load(random_gnp)
        assert pickle.dumps(loaded.export_state()) == pickle.dumps(
            engine.export_state()
        )


# ----------------------------------------------------------------------
# Config validation and bootstrap
# ----------------------------------------------------------------------
class TestConfigAndBootstrap:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_wait_ms": -1.0},
            {"max_pending": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ServeError):
            ServeConfig(**kwargs)

    def test_parse_fixture_specs(self):
        workload = parse_fixture("gnp:40:9")
        assert workload.family == "gnp"
        assert workload.num_nodes == 40
        assert workload.seed == 9
        assert parse_fixture("grid:5").num_nodes == 25

    @pytest.mark.parametrize(
        "spec", ["nope:10", "gnp:a", "gnp:1:2:3", "bichromatic:20"]
    )
    def test_bad_fixture_specs_rejected(self, spec):
        with pytest.raises(ServeError):
            parse_fixture(spec)

    def test_prepare_engine_restores_from_store(self, tmp_path):
        workload = parse_fixture("gnp:30:5")
        store = DurableIndexStore(tmp_path / "state")
        engine, restored = prepare_engine(workload, store=store)
        assert restored is False
        engine.index.start_learning_log()
        engine.query_many(workload.queries, workload.k, algorithm="indexed")
        store.record(engine.index.pop_learning_log())
        state = pickle.dumps(engine.export_state())
        del store

        workload2 = parse_fixture("gnp:30:5")
        engine2, restored2 = prepare_engine(
            workload2, store=DurableIndexStore(tmp_path / "state")
        )
        assert restored2 is True
        assert pickle.dumps(engine2.export_state()) == state


# ----------------------------------------------------------------------
# Fault tolerance: health op, journal faults, client retries, backoff
# ----------------------------------------------------------------------
import multiprocessing
import os as _os
import random as _random

from repro import faults
from repro.errors import ServeConnectionError
from repro.serve.loadgen import overload_backoff_s

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(autouse=True)
def _disarm_failpoints():
    yield
    faults.clear()


class TestFaultTolerance:
    def test_health_op_basics(self, random_gnp):
        with make_server(random_gnp) as server:
            host, port = server.address
            with ServeClient(host=host, port=port) as client:
                health = client.health()
        assert health["ok"] is True
        assert health["healthy"] is True
        assert health["journal_failures"] == 0
        assert health["pool_active"] is False
        assert health["degraded"] is False
        assert health["worker_crashes"] == 0

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_health_reflects_pool_crash_and_server_heals(self, random_gnp):
        """Kill a live worker; the next batch heals and health says so."""
        reference = ReverseKRanksEngine(random_gnp)
        reference.build_index(num_hubs=3, capacity=16)
        queries = sample_queries(random_gnp, 6)
        with make_server(
            random_gnp, workers=2, worker_context="fork"
        ) as server:
            host, port = server.address
            with ServeClient(host=host, port=port) as client:
                first = client.query_many(queries, k=4, algorithm="dynamic")
                pool = server.engine._pool
                assert pool is not None
                _os.kill(pool._processes[0].pid, 9)
                healed = client.query_many(queries, k=4, algorithm="dynamic")
                health = client.health()
            server.engine.close_pool()
        direct = reference.query_many(queries, 4, algorithm="dynamic")
        expected = [result.as_pairs() for result in direct]
        assert first == expected
        assert healed == expected
        assert health["worker_crashes"] >= 1
        assert health["worker_respawns"] >= 1
        assert health["degraded"] is False

    def test_journal_fault_fails_batch_loudly_and_server_survives(
        self, random_gnp, tmp_path
    ):
        """A journal I/O fault must fail the batch, not fake durability.

        The response contract is: learning is fsynced before any answer
        releases.  With ``journal.fsync=error`` armed, the batch's
        requests get an error response (mentioning the failpoint), the
        batcher thread survives, the failure is counted in ``health``,
        and the very next batch — fault disarmed by its ``*1`` budget —
        succeeds and journals normally.
        """
        engine = ReverseKRanksEngine(random_gnp)
        engine.build_index(num_hubs=3, capacity=16)
        store = DurableIndexStore(tmp_path / "state")
        store.install(engine.index)
        queries = sample_queries(random_gnp, 4)
        with QueryServer(
            engine, config=ServeConfig(max_wait_ms=2.0), store=store
        ) as server:
            host, port = server.address
            faults.configure("journal.fsync=error*1")
            with ServeClient(host=host, port=port) as client:
                with pytest.raises(ServeError, match="FailpointError"):
                    client.query_many(queries, k=4, algorithm="indexed")
                health = client.health()
                assert health["healthy"] is True
                assert health["journal_failures"] == 1
                # The batcher survived; the next batch answers and
                # journals normally.
                answers = client.query_many(queries, k=4, algorithm="indexed")
                assert answers
                assert client.health()["journal_failures"] == 1
            # The failed batch journalled nothing; the good one did
            # (clean stop will compact, so check before leaving).
            assert store.journal.num_records == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_timeout_s": 0.0},
            {"batch_timeout_s": -1.0},
            {"on_pool_failure": "nonsense"},
        ],
    )
    def test_bad_fault_config_rejected(self, kwargs):
        with pytest.raises(ServeError):
            ServeConfig(**kwargs)


class TestClientRetries:
    def test_connect_failure_is_typed(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServeConnectionError):
            ServeClient(host="127.0.0.1", port=free_port, timeout=0.5)

    def test_mid_request_failure_is_typed(self, random_gnp):
        with make_server(random_gnp) as server:
            host, port = server.address
            client = ServeClient(host=host, port=port)
            try:
                client._sock.close()  # simulate the connection dying
                with pytest.raises(ServeConnectionError):
                    client.ping()
            finally:
                client.close()

    def test_retries_reconnect_after_dead_socket(self, random_gnp):
        with make_server(random_gnp) as server:
            host, port = server.address
            client = ServeClient(
                host=host, port=port, retries=2, backoff_s=0.001
            )
            try:
                client._sock.close()
                assert client.ping()  # reconnects transparently
                assert client.retries_used >= 1
            finally:
                client.close()

    def test_retries_cover_overload_backpressure(self, random_gnp):
        """An overloaded response retries inside the client knob."""
        nodes = sorted(random_gnp.nodes())
        with make_server(random_gnp, max_pending=2) as server:
            host, port = server.address
            server.batcher.pause()
            try:
                with ServeClient(host=host, port=port) as blocker:
                    send_message(
                        blocker._sock,
                        {
                            "op": "query",
                            "queries": nodes[:2],
                            "k": 3,
                            "algorithm": "dynamic",
                        },
                    )
                    for _ in range(500):
                        if server.batcher.requests >= 1:
                            break
                        time.sleep(0.01)
                    # Unblock the batcher shortly after the first
                    # overloaded rejection so the retry can land.
                    threading.Timer(0.05, server.batcher.resume).start()
                    with ServeClient(
                        host=host, port=port, retries=50, backoff_s=0.005
                    ) as client:
                        assert client.query(
                            nodes[0], k=3, algorithm="dynamic"
                        )
                        assert client.retries_used >= 1
                    assert recv_message(blocker._sock)["ok"] is True
            finally:
                server.batcher.resume()

    def test_retry_knob_validation(self):
        with pytest.raises(ServeError):
            ServeClient(host="127.0.0.1", port=1, retries=-1)


class TestOverloadBackoff:
    def test_full_jitter_window_bounds(self):
        rng = _random.Random(3)
        for attempt in range(20):
            delay = overload_backoff_s(attempt, rng, base_s=0.002, cap_s=0.25)
            assert 0.0 <= delay <= min(0.25, 0.002 * 2**attempt)

    def test_cap_bounds_late_attempts(self):
        rng = _random.Random(5)
        samples = [
            overload_backoff_s(30, rng, base_s=0.002, cap_s=0.25)
            for _ in range(50)
        ]
        assert all(0.0 <= s <= 0.25 for s in samples)
        # Full jitter: the window is actually used, not a fixed point.
        assert max(samples) > 0.1
        assert min(samples) < 0.1

    def test_deterministic_given_rng(self):
        a = [overload_backoff_s(i, _random.Random(9)) for i in range(5)]
        b = [overload_backoff_s(i, _random.Random(9)) for i in range(5)]
        assert a == b
