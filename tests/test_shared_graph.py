"""Shared-memory graph transport: share/attach round trips, digest
verification, segment lifecycle (no leaks on any exit path) and the
bit-identity of pool-built hub indexes.

The /dev/shm scans compare the set of ``repro_shm_*`` segments before and
after each lifecycle event, so concurrent unrelated segments (none exist
in CI, but local runs may differ) never cause false failures.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time
from pathlib import Path

import pytest

from repro.core.engine import ReverseKRanksEngine
from repro.core.hub_index import HubIndex
from repro.errors import GraphValidationError, WorkerCrashError
from repro.graph import (
    CompactGraph,
    Graph,
    SharedGraphHandle,
    attach_compact_graph,
    share_compact_graph,
)
from repro.parallel import ShardPlanner, WorkerPool

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
FAST_CONTEXT = "fork" if HAVE_FORK else None

_SHM_DIR = Path("/dev/shm")


def _repro_segments() -> set:
    """Names of live repro shared-memory segments (empty set if no shmfs)."""
    if not _SHM_DIR.is_dir():
        return set()
    return {
        entry.name
        for entry in _SHM_DIR.iterdir()
        if entry.name.startswith("repro_shm_")
    }


# ----------------------------------------------------------------------
# share / attach round trips
# ----------------------------------------------------------------------
class TestShareAttach:
    def test_round_trip_preserves_graph(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        owner = share_compact_graph(csr)
        try:
            attached, segment = attach_compact_graph(owner.handle)
            try:
                assert attached.num_nodes == csr.num_nodes
                assert attached.num_edges == csr.num_edges
                assert attached.directed == csr.directed
                assert attached.content_digest() == csr.content_digest()
                offsets, targets, weights = csr.out_csr()
                a_offsets, a_targets, a_weights = attached.out_csr()
                assert list(a_offsets) == list(offsets)
                assert list(a_targets) == list(targets)
                assert list(a_weights) == list(weights)
                assert list(attached.nodes()) == list(csr.nodes())
            finally:
                # The cast views keep the mapping alive; drop every
                # reference before closing the segment.
                del attached, a_offsets, a_targets, a_weights
                import gc

                gc.collect()
                segment.close()
        finally:
            owner.unlink()
        assert owner.segment_name not in _repro_segments()

    def test_attached_graph_answers_queries_identically(self, weighted_grid):
        from repro.core.naive import naive_reverse_k_ranks

        csr = CompactGraph.from_graph(weighted_grid)
        owner = share_compact_graph(csr)
        try:
            attached, segment = attach_compact_graph(owner.handle)
            try:
                queries = sorted(weighted_grid.nodes(), key=repr)[:3]
                for query in queries:
                    expected = naive_reverse_k_ranks(csr, query, 3)
                    actual = naive_reverse_k_ranks(attached, query, 3)
                    assert expected.as_pairs() == actual.as_pairs()
            finally:
                del attached, expected, actual
                import gc

                gc.collect()
                segment.close()
        finally:
            owner.unlink()

    def test_string_node_graph_round_trips(self):
        graph = Graph(name="strings")
        for source, target, weight in [
            ("a", "b", 1.0), ("b", "c", 2.0), ("c", "a", 1.5),
        ]:
            graph.add_edge(source, target, weight)
        csr = CompactGraph.from_graph(graph)
        owner = share_compact_graph(csr)
        try:
            attached, segment = attach_compact_graph(owner.handle)
            try:
                assert list(attached.nodes()) == list(csr.nodes())
                assert attached.content_digest() == csr.content_digest()
            finally:
                del attached
                import gc

                gc.collect()
                segment.close()
        finally:
            owner.unlink()

    def test_attached_graph_refuses_pickling(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        owner = share_compact_graph(csr)
        try:
            attached, segment = attach_compact_graph(owner.handle)
            try:
                with pytest.raises(GraphValidationError, match="shared-memory"):
                    pickle.dumps(attached)
            finally:
                del attached
                import gc

                gc.collect()
                segment.close()
        finally:
            owner.unlink()

    def test_requires_compact_graph(self, random_gnp):
        with pytest.raises(GraphValidationError):
            share_compact_graph(random_gnp)


# ----------------------------------------------------------------------
# digest verification — corrupted or mismatched segments fail loudly
# ----------------------------------------------------------------------
class TestDigestVerification:
    def test_tampered_buffer_bytes_are_rejected(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        owner = share_compact_graph(csr)
        try:
            # Flip one byte near the segment's end (inside the buffers).
            view = owner._segment.buf
            view[len(view) - 8] ^= 0xFF
            with pytest.raises(GraphValidationError, match="digest"):
                attach_compact_graph(owner.handle)
        finally:
            owner.unlink()
        assert owner.segment_name not in _repro_segments()

    def test_wrong_digest_in_handle_is_rejected(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        owner = share_compact_graph(csr)
        try:
            forged = SharedGraphHandle(
                segment_name=owner.handle.segment_name,
                total_bytes=owner.handle.total_bytes,
                digest="0" * 64,
            )
            with pytest.raises(GraphValidationError, match="digest"):
                attach_compact_graph(forged)
        finally:
            owner.unlink()

    def test_missing_segment_raises_file_not_found(self):
        # An already-unlinked segment (attach after the owning pool closed)
        # is documented to surface as FileNotFoundError, not a repro error.
        handle = SharedGraphHandle(
            segment_name="repro_shm_feedfacedeadbeef",
            total_bytes=128,
            digest="0" * 64,
        )
        with pytest.raises(FileNotFoundError):
            attach_compact_graph(handle)


# ----------------------------------------------------------------------
# owner lifecycle
# ----------------------------------------------------------------------
def test_owner_unlink_is_idempotent_and_removes_segment(random_gnp):
    csr = CompactGraph.from_graph(random_gnp)
    before = _repro_segments()
    owner = share_compact_graph(csr)
    name = owner.segment_name
    if _SHM_DIR.is_dir():
        assert name in _repro_segments()
    owner.unlink()
    owner.unlink()  # never raises
    assert _repro_segments() == before


# ----------------------------------------------------------------------
# WorkerPool transport
# ----------------------------------------------------------------------
@needs_fork
class TestPoolTransport:
    def test_pool_uses_shared_graph_by_default(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        with WorkerPool(csr, workers=2, context=FAST_CONTEXT) as pool:
            assert pool.uses_shared_graph
            assert pool.shared_segment_name is not None
            if _SHM_DIR.is_dir():
                assert pool.shared_segment_name in _repro_segments()
            plan = ShardPlanner(2).plan(queries)
            outcome = pool.run_batch(plan, 3, "dynamic")
            assert len(outcome.results) == len(queries)
        assert pool.shared_segment_name not in _repro_segments()

    def test_pickled_fallback_matches_shared_results(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        plan = ShardPlanner(2).plan(queries)
        with WorkerPool(
            csr, workers=2, context=FAST_CONTEXT, share_graph=False
        ) as pickled_pool:
            assert not pickled_pool.uses_shared_graph
            assert pickled_pool.shared_segment_name is None
            pickled = pickled_pool.run_batch(plan, 3, "dynamic")
        with WorkerPool(csr, workers=2, context=FAST_CONTEXT) as shared_pool:
            shared = shared_pool.run_batch(plan, 3, "dynamic")
        assert [result.as_pairs() for result in shared.results] == [
            result.as_pairs() for result in pickled.results
        ]

    def test_shared_startup_payload_is_graph_size_independent(self):
        # The whole point of the transport: worker startup bytes must not
        # grow with the graph.  Compare a small and a 4x larger grid.
        def grid(side):
            graph = Graph(name=f"g{side}")
            for row in range(side):
                for col in range(side):
                    node = row * side + col
                    if col + 1 < side:
                        graph.add_edge(node, node + 1, 1.0 + (node % 7) / 10)
                    if row + 1 < side:
                        graph.add_edge(node, node + side, 1.0 + (node % 5) / 10)
            return CompactGraph.from_graph(graph)

        sizes = {}
        for side in (8, 32):
            with WorkerPool(grid(side), workers=1, context=FAST_CONTEXT) as pool:
                assert pool.uses_shared_graph
                sizes[side] = pool.startup_payload_bytes
        # Identical payload shape: a handle travels, not the graph.
        assert sizes[32] <= sizes[8] + 64

    def test_no_segment_leak_after_worker_crash(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        before = _repro_segments()
        # crash_retries=0: fail-fast instead of self-healing, so the
        # crash actually surfaces and we exercise the leak-on-crash path.
        pool = WorkerPool(csr, workers=2, context=FAST_CONTEXT, crash_retries=0)
        try:
            os.kill(pool.worker_pids[0], signal.SIGKILL)
            deadline = time.time() + 5.0
            while pool._processes[0].is_alive() and time.time() < deadline:
                time.sleep(0.05)
            with pytest.raises(WorkerCrashError):
                pool.run_batch(ShardPlanner(2).plan(queries), 3, "dynamic")
        finally:
            pool.close()
        pool.close()  # idempotent after a crash
        assert _repro_segments() == before

    def test_no_segment_leak_when_pool_is_garbage_collected(self, random_gnp):
        import gc

        csr = CompactGraph.from_graph(random_gnp)
        before = _repro_segments()
        pool = WorkerPool(csr, workers=1, context=FAST_CONTEXT)
        del pool
        gc.collect()
        assert _repro_segments() == before

    def test_run_hub_build_returns_per_chunk_deltas(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        hubs = sorted(random_gnp.nodes(), key=repr)[:4]
        with WorkerPool(csr, workers=2, context=FAST_CONTEXT) as pool:
            deltas = pool.run_hub_build(hubs, 10, 8)
        assert len(deltas) == 2  # one per non-empty contiguous chunk
        merged = HubIndex(random_gnp, 8, hubs)
        # build_parallel stamps the budget on the merged index before
        # merging; export_state persists it (repairs after from_state
        # re-explore at the original budget), so mirror that here.
        merged._explore_limit = 10
        for delta in deltas:
            merged.merge_delta(delta)
        sequential = HubIndex.build(
            random_gnp, hubs=hubs, explore_limit=10, capacity=8, backend=csr
        )
        assert pickle.dumps(merged.export_state()) == pickle.dumps(
            sequential.export_state()
        )


# ----------------------------------------------------------------------
# Parallel hub builds are bit-identical to sequential ones
# ----------------------------------------------------------------------
@needs_fork
class TestParallelHubBuildParity:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_engine_parallel_build_is_bit_identical(self, any_graph, workers):
        if any_graph.directed:
            pytest.skip("hub indexes are undirected-only in this fixture set")
        sequential = HubIndex.build(
            any_graph,
            num_hubs=4,
            explore_limit=12,
            capacity=8,
            backend=CompactGraph.from_graph(any_graph),
        )
        with ReverseKRanksEngine(any_graph) as engine:
            parallel = engine.build_index(
                num_hubs=4,
                explore_limit=12,
                capacity=8,
                workers=workers,
                worker_context=FAST_CONTEXT,
            )
            assert pickle.dumps(parallel.export_state()) == pickle.dumps(
                sequential.export_state()
            )

    def test_auto_budget_parallel_build_matches(self, random_gnp):
        with ReverseKRanksEngine(random_gnp) as engine:
            parallel = engine.build_index(
                num_hubs="auto",
                explore_limit="auto",
                capacity=8,
                workers=2,
                worker_context=FAST_CONTEXT,
            )
            state = pickle.dumps(parallel.export_state())
        sequential = HubIndex.build(
            random_gnp,
            num_hubs="auto",
            explore_limit="auto",
            capacity=8,
            backend=CompactGraph.from_graph(random_gnp),
        )
        assert state == pickle.dumps(sequential.export_state())
