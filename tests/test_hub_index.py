"""Unit tests for hub selection and the hub index dictionaries."""

from __future__ import annotations

import random

import pytest

from repro.core.hub_index import HubIndex
from repro.core.hubs import HubSelectionStrategy, select_hubs
from repro.errors import (
    IndexCapacityError,
    IndexParameterError,
    NodeNotFoundError,
)
from repro.traversal.rank import exact_rank, rank_row


def test_select_hubs_degree_picks_highest_degree(random_gnp):
    hubs = select_hubs(random_gnp, 3, HubSelectionStrategy.DEGREE)
    assert len(hubs) == 3
    cutoff = min(random_gnp.out_degree(hub) for hub in hubs)
    outside = [n for n in random_gnp.nodes() if n not in hubs]
    assert all(random_gnp.out_degree(node) <= cutoff for node in outside)


def test_select_hubs_strategies_are_deterministic(random_gnp):
    for strategy in ("degree", "closeness", "random"):
        first = select_hubs(random_gnp, 4, strategy, rng=random.Random(5))
        second = select_hubs(random_gnp, 4, strategy, rng=random.Random(5))
        assert first == second


def test_select_hubs_clamps_and_validates(random_gnp):
    assert len(select_hubs(random_gnp, 10_000)) == random_gnp.num_nodes
    with pytest.raises(IndexParameterError):
        select_hubs(random_gnp, 0)


def test_build_rejects_bad_parameters(random_gnp):
    with pytest.raises(IndexParameterError):
        HubIndex(random_gnp, capacity=0)
    with pytest.raises(IndexParameterError):
        HubIndex.build(random_gnp, num_hubs=2, explore_limit=0)
    with pytest.raises(NodeNotFoundError):
        HubIndex(random_gnp, capacity=4, hubs=["not-a-node"])


def test_known_ranks_are_exact(random_gnp):
    index = HubIndex.build(random_gnp, num_hubs=3, capacity=50)
    assert index.num_known_ranks > 0
    for hub in index.hubs:
        row = rank_row(random_gnp, hub)
        for target, rank in row.items():
            assert index.known_rank(hub, target) == rank


def test_known_reverse_ranks_sorted_and_consistent(random_gnp):
    index = HubIndex.build(random_gnp, num_hubs=4, capacity=50)
    target = next(iter(random_gnp.nodes()))
    entries = index.known_reverse_ranks(target)
    ranks = [rank for _, rank in entries]
    assert ranks == sorted(ranks)
    for source, rank in entries:
        assert rank == exact_rank(random_gnp, source, target)


def test_capacity_limits_reverse_dictionary(random_gnp):
    small = HubIndex.build(random_gnp, num_hubs=3, capacity=2)
    big = HubIndex.build(random_gnp, num_hubs=3, capacity=50)
    target = next(iter(random_gnp.nodes()))
    assert all(rank <= 2 for _, rank in small.known_reverse_ranks(target))
    assert len(small.known_reverse_ranks(target)) <= len(big.known_reverse_ranks(target))


def test_check_value_is_valid_lower_bound(random_gnp):
    # The Check Dictionary bound must never exceed the true rank of any
    # node whose rank w.r.t. the source is *not* stored.
    index = HubIndex.build(random_gnp, num_hubs=3, capacity=50, explore_limit=6)
    for hub in index.hubs:
        bound = index.check_value(hub)
        assert bound is not None
        row = rank_row(random_gnp, hub)
        for target, rank in row.items():
            if index.known_rank(hub, target) is None:
                assert rank >= bound


def test_truncated_exploration_respects_limit(random_gnp):
    index = HubIndex.build(random_gnp, num_hubs=2, capacity=50, explore_limit=5)
    for hub in index.hubs:
        assert index.explored_count(hub) <= 5


def test_ensure_compatible_guards(random_gnp, weighted_grid):
    index = HubIndex.build(random_gnp, num_hubs=2, capacity=4)
    index.ensure_compatible(random_gnp, 4)
    with pytest.raises(IndexCapacityError):
        index.ensure_compatible(random_gnp, 5)
    with pytest.raises(IndexParameterError):
        index.ensure_compatible(weighted_grid, 2)


def test_record_rank_updates_all_dictionaries(random_gnp):
    index = HubIndex(random_gnp, capacity=5)
    index.record_rank("s", "t", 3)
    index.record_rank("s", "u", 7)  # beyond capacity: check dict only
    assert index.known_rank("s", "t") == 3
    assert index.known_rank("s", "u") == 7
    assert index.known_reverse_ranks("t") == [("s", 3)]
    assert index.known_reverse_ranks("u") == []
    assert index.check_value("s") == 7
    index.record_exploration("s", 2)
    index.record_exploration("s", 3)
    assert index.explored_count("s") == 5
