"""The repro.parallel subsystem: planner, merger, pool, engine integration.

Process-spawning tests default to the ``fork`` start method (cheap on the
CI's Linux runners) and run one representative round trip under ``spawn``
to prove start-method safety; both are skipped automatically on platforms
that lack them.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.core import AlgorithmKind, QueryStats, ReverseKRanksEngine
from repro.core.types import QueryResult, RankedNode
from repro.core.validation import results_equivalent
from repro.errors import ParallelExecutionError, WorkerCrashError
from repro.graph import CompactGraph
from repro.parallel import (
    ShardOutput,
    ShardPlanner,
    ShardPolicy,
    WorkerPool,
    merge_shard_outputs,
)

from conftest import sample_queries

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
HAVE_SPAWN = "spawn" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
needs_spawn = pytest.mark.skipif(not HAVE_SPAWN, reason="spawn start method unavailable")

#: Start method used by the bulk of the process tests (fast to start).
FAST_CONTEXT = "fork" if HAVE_FORK else None


# ----------------------------------------------------------------------
# ShardPlanner
# ----------------------------------------------------------------------
class TestShardPlanner:
    def test_round_robin_covers_every_position_once(self):
        plan = ShardPlanner(3).plan(list("abcdefgh"))
        positions = sorted(
            position for shard in plan.shards for position in shard.positions
        )
        assert positions == list(range(8))
        assert plan.num_queries == 8
        assert [len(shard) for shard in plan.shards] == [3, 3, 2]

    def test_round_robin_preserves_query_position_pairing(self):
        batch = ["q0", "q1", "q2", "q3", "q4"]
        plan = ShardPlanner(2).plan(batch)
        for shard in plan.shards:
            for position, query in zip(shard.positions, shard.queries):
                assert batch[position] == query

    def test_affinity_is_stable_across_planners_and_processes(self):
        planner_a = ShardPlanner(4, policy="affinity")
        planner_b = ShardPlanner(4, policy=ShardPolicy.AFFINITY)
        for query in ["x", "y", 17, (1, 2)]:
            assert planner_a.affinity_shard(query) == planner_b.affinity_shard(query)
        plan = planner_a.plan(["x", "y", "x", "y", "x"])
        shard_of = {}
        for shard in plan.shards:
            for query in shard.queries:
                shard_of.setdefault(query, shard.index)
                assert shard_of[query] == shard.index  # repeats pinned

    def test_cost_policy_balances_and_covers(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        batch = sorted(random_gnp.nodes(), key=repr)
        plan = ShardPlanner(3, policy="cost").plan(batch, graph=csr)
        positions = sorted(
            position for shard in plan.shards for position in shard.positions
        )
        assert positions == list(range(len(batch)))
        loads = [
            sum(ShardPlanner.estimate_cost(query, csr) for query in shard.queries)
            for shard in plan.shards
        ]
        # LPT keeps the spread below one maximal item's cost.
        assert max(loads) - min(loads) <= max(
            ShardPlanner.estimate_cost(query, csr) for query in batch
        )

    def test_cost_policy_prefers_index_known_queries(self, random_gnp):
        engine = ReverseKRanksEngine(random_gnp)
        index = engine.build_index(num_hubs=4, capacity=8)
        seeded = max(
            random_gnp.nodes(), key=lambda node: index.reverse_rank_count(node)
        )
        assert index.reverse_rank_count(seeded) > 0
        cheap = ShardPlanner.estimate_cost(seeded, random_gnp, index)
        plain = ShardPlanner.estimate_cost(seeded, random_gnp, None)
        assert cheap < plain

    def test_invalid_parameters_raise_typed_errors(self):
        with pytest.raises(ParallelExecutionError):
            ShardPlanner(0)
        with pytest.raises(ParallelExecutionError):
            ShardPlanner(True)
        with pytest.raises(ParallelExecutionError):
            ShardPlanner(2, policy="bogus")


# ----------------------------------------------------------------------
# Merger
# ----------------------------------------------------------------------
def _result(query, rank_refinements=1):
    stats = QueryStats(rank_refinements=rank_refinements)
    return QueryResult(
        query=query, k=1, entries=[RankedNode.make("n", 1)], stats=stats
    )


class TestMergeShardOutputs:
    def test_reassembles_input_order_regardless_of_arrival(self):
        outputs = [
            ShardOutput(1, (1, 3), [_result("b"), _result("d")]),
            ShardOutput(0, (0, 2), [_result("a"), _result("c")]),
        ]
        merged = merge_shard_outputs(outputs, batch_size=4)
        assert [result.query for result in merged.results] == ["a", "b", "c", "d"]
        assert merged.shards == 2

    def test_aggregates_stats(self):
        outputs = [
            ShardOutput(0, (0,), [_result("a", rank_refinements=3)]),
            ShardOutput(1, (1,), [_result("b", rank_refinements=4)]),
        ]
        merged = merge_shard_outputs(outputs, batch_size=2)
        assert merged.stats.rank_refinements == 7

    def test_deltas_come_back_in_shard_order(self):
        outputs = [
            ShardOutput(2, (2,), [_result("c")], delta="late"),
            ShardOutput(0, (0,), [_result("a")], delta="early"),
            ShardOutput(1, (1,), [_result("b")], delta=None),
        ]
        merged = merge_shard_outputs(outputs, batch_size=3)
        assert merged.deltas == ["early", "late"]

    def test_missing_duplicate_and_out_of_range_positions_fail(self):
        with pytest.raises(ParallelExecutionError):
            merge_shard_outputs([ShardOutput(0, (0,), [_result("a")])], batch_size=2)
        with pytest.raises(ParallelExecutionError):
            merge_shard_outputs(
                [
                    ShardOutput(0, (0,), [_result("a")]),
                    ShardOutput(1, (0,), [_result("b")]),
                ],
                batch_size=2,
            )
        with pytest.raises(ParallelExecutionError):
            merge_shard_outputs([ShardOutput(0, (5,), [_result("a")])], batch_size=2)
        with pytest.raises(ParallelExecutionError):
            merge_shard_outputs(
                [ShardOutput(0, (0, 1), [_result("a")])], batch_size=2
            )


# ----------------------------------------------------------------------
# Engine-level parallel execution (the tentpole's front door)
# ----------------------------------------------------------------------
@needs_fork
class TestEngineParallel:
    @pytest.mark.parametrize("kind", ["naive", "static", "dynamic"])
    @pytest.mark.parametrize("policy", ["round_robin", "cost", "affinity"])
    def test_parallel_matches_sequential_bit_identical(
        self, random_gnp, kind, policy
    ):
        queries = sorted(random_gnp.nodes(), key=repr)[:8]
        with ReverseKRanksEngine(random_gnp) as engine:
            sequential = engine.query_many(queries, 4, algorithm=kind)
            parallel = engine.query_many(
                queries, 4, algorithm=kind, workers=2,
                shard_policy=policy, worker_context=FAST_CONTEXT,
            )
        assert [result.as_pairs() for result in parallel] == [
            result.as_pairs() for result in sequential
        ]

    def test_parallel_bichromatic_matches_sequential(self, bichromatic_case):
        queries = sorted(bichromatic_case.facilities, key=repr)[:5]
        with ReverseKRanksEngine(
            bichromatic_case.graph, partition=bichromatic_case
        ) as engine:
            sequential = engine.query_many(queries, 3, algorithm="dynamic")
            parallel = engine.query_many(
                queries, 3, algorithm="dynamic", workers=2,
                worker_context=FAST_CONTEXT,
            )
        assert [result.as_pairs() for result in parallel] == [
            result.as_pairs() for result in sequential
        ]

    def test_indexed_parallel_learns_back_into_master(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:8]
        with ReverseKRanksEngine(random_gnp) as engine:
            engine.build_index(num_hubs=3, capacity=8)
            before = engine.index.num_known_ranks
            parallel = engine.query_many(
                queries, 4, algorithm="indexed", workers=2,
                worker_context=FAST_CONTEXT,
            )
            after = engine.index.num_known_ranks
            sequential = engine.query_many(queries, 4, algorithm="indexed")
        assert after > before  # the workers' refinements were merged back
        for expected, actual in zip(sequential, parallel):
            assert results_equivalent(expected, actual)
            assert expected.rank_values() == actual.rank_values()

    def test_merged_index_answers_like_sequentially_warmed(self, random_gnp):
        """The ISSUE's parity requirement, end to end through the pool."""
        queries = sorted(random_gnp.nodes(), key=repr)[:8]
        probes = sorted(random_gnp.nodes(), key=repr)[8:14]

        engine_seq = ReverseKRanksEngine(random_gnp)
        engine_seq.build_index(num_hubs=3, capacity=8)
        engine_seq.query_many(queries, 4, algorithm="indexed")

        with ReverseKRanksEngine(random_gnp) as engine_par:
            engine_par.build_index(num_hubs=3, capacity=8)
            engine_par.query_many(
                queries, 4, algorithm="indexed", workers=2,
                worker_context=FAST_CONTEXT,
            )
            for probe in probes:
                warmed = engine_seq.query(probe, 4, algorithm="indexed")
                merged = engine_par.query(probe, 4, algorithm="indexed")
                assert results_equivalent(warmed, merged)
                assert warmed.rank_values() == merged.rank_values()

    def test_parallel_aggregates_batch_stats(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        with ReverseKRanksEngine(random_gnp) as engine:
            results = engine.query_many(
                queries, 3, algorithm="dynamic", workers=2,
                worker_context=FAST_CONTEXT,
            )
            aggregated = engine.last_batch_stats
        assert aggregated is not None
        assert aggregated.rank_refinements == sum(
            result.stats.rank_refinements for result in results
        )
        assert aggregated.tree_pops == sum(
            result.stats.tree_pops for result in results
        )

    def test_pool_persists_across_batches_and_invalidates_on_mutation(
        self, random_gnp
    ):
        graph = random_gnp.copy()
        queries = sorted(graph.nodes(), key=repr)[:6]
        with ReverseKRanksEngine(graph) as engine:
            engine.query_many(
                queries, 3, algorithm="dynamic", workers=2,
                worker_context=FAST_CONTEXT,
            )
            first_pids = engine._pool.worker_pids
            engine.query_many(
                queries, 3, algorithm="static", workers=2,
                worker_context=FAST_CONTEXT,
            )
            assert engine._pool.worker_pids == first_pids  # reused

            graph.add_edge(0, 13, 0.5)
            parallel = engine.query_many(
                queries, 3, algorithm="dynamic", workers=2,
                worker_context=FAST_CONTEXT,
            )
            assert engine._pool.worker_pids != first_pids  # rebuilt
            sequential = engine.query_many(queries, 3, algorithm="dynamic")
            assert [result.as_pairs() for result in parallel] == [
                result.as_pairs() for result in sequential
            ]

    def test_workers_validation_and_sequential_fallbacks(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:4]
        engine = ReverseKRanksEngine(random_gnp)
        with pytest.raises(ParallelExecutionError):
            engine.query_many(queries, 2, workers=0)
        with pytest.raises(ParallelExecutionError):
            engine.query_many(queries, 2, workers=True)
        with pytest.raises(ParallelExecutionError):
            engine.query_many(queries, 2, workers=2, use_csr=False)
        # workers=1 and single-query batches never start a pool.
        engine.query_many(queries, 2, workers=1)
        engine.query_many(queries[:1], 2, workers=2)
        assert engine._pool is None

    def test_engine_prunes_dead_pool_and_recovers_on_retry(self, random_gnp):
        # The satellite regression: after a WorkerCrashError escapes, the
        # cached pool MUST be discarded so the next query_many never
        # dispatches to dead workers.  Healing is disabled
        # (pool_crash_retries=0, on_pool_failure="raise") to let the
        # crash escape at all.
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        with ReverseKRanksEngine(random_gnp) as engine:
            engine.pool_crash_retries = 0
            engine.query_many(
                queries, 3, algorithm="dynamic", workers=2,
                worker_context=FAST_CONTEXT,
            )
            first_pids = set(engine._pool.worker_pids)
            os.kill(engine._pool.worker_pids[0], signal.SIGKILL)
            deadline = time.time() + 5.0
            while engine._pool._processes[0].is_alive() and time.time() < deadline:
                time.sleep(0.05)
            with pytest.raises(WorkerCrashError):
                engine.query_many(
                    queries, 3, algorithm="dynamic", workers=2,
                    worker_context=FAST_CONTEXT, on_pool_failure="raise",
                )
            assert engine._pool is None  # crashed pool was dropped
            assert engine.pool_health()["worker_crashes"] >= 1
            retried = engine.query_many(  # retry builds a fresh pool
                queries, 3, algorithm="dynamic", workers=2,
                worker_context=FAST_CONTEXT, on_pool_failure="raise",
            )
            assert not (set(engine._pool.worker_pids) & first_pids)
            sequential = engine.query_many(queries, 3, algorithm="dynamic")
        assert [result.as_pairs() for result in retried] == [
            result.as_pairs() for result in sequential
        ]

    def test_engine_heals_worker_crash_in_place(self, random_gnp):
        # Default semantics: a mid-batch worker death is absorbed by the
        # pool (respawn + re-dispatch) and the batch still answers
        # bit-identically to sequential.
        queries = sorted(random_gnp.nodes(), key=repr)[:8]
        with ReverseKRanksEngine(random_gnp) as engine:
            engine.query_many(
                queries, 3, algorithm="dynamic", workers=2,
                worker_context=FAST_CONTEXT,
            )
            os.kill(engine._pool.worker_pids[0], signal.SIGKILL)
            deadline = time.time() + 5.0
            while engine._pool._processes[0].is_alive() and time.time() < deadline:
                time.sleep(0.05)
            healed = engine.query_many(
                queries, 3, algorithm="dynamic", workers=2,
                worker_context=FAST_CONTEXT,
            )
            health = engine.pool_health()
            assert health["pool_active"]
            assert health["worker_crashes"] >= 1
            assert health["worker_respawns"] >= 1
            assert not health["degraded"]
            sequential = engine.query_many(queries, 3, algorithm="dynamic")
        assert [result.as_pairs() for result in healed] == [
            result.as_pairs() for result in sequential
        ]

    def test_engine_sequential_fallback_and_circuit_breaker(self, random_gnp):
        from repro import faults

        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        try:
            # Every worker dies before its first task; healing disabled so
            # each parallel attempt fails immediately.
            faults.configure("worker.before_task=crash")
            with ReverseKRanksEngine(random_gnp) as engine:
                engine.pool_crash_retries = 0
                engine.pool_failure_limit = 2
                sequential = ReverseKRanksEngine(random_gnp).query_many(
                    queries, 3, algorithm="dynamic"
                )
                # Attempt + retry both fail -> breaker opens -> sequential.
                degraded = engine.query_many(
                    queries, 3, algorithm="dynamic", workers=2,
                    worker_context=FAST_CONTEXT,
                )
                assert [r.as_pairs() for r in degraded] == [
                    r.as_pairs() for r in sequential
                ]
                assert engine._pool is None  # dead pool pruned
                assert engine.parallel_degraded
                assert engine.pool_failures >= 2
                assert engine.sequential_fallbacks == 1
                assert engine.parallel_retries == 1
                # Breaker open: no parallel attempt, no pool, same answers.
                again = engine.query_many(
                    queries, 3, algorithm="dynamic", workers=2,
                    worker_context=FAST_CONTEXT,
                )
                assert engine._pool is None
                assert engine.sequential_fallbacks == 2
                assert [r.as_pairs() for r in again] == [
                    r.as_pairs() for r in sequential
                ]
                # Clearing the faults + resetting the breaker restores
                # parallel execution.
                faults.clear()
                engine.reset_parallel_breaker()
                healed = engine.query_many(
                    queries, 3, algorithm="dynamic", workers=2,
                    worker_context=FAST_CONTEXT,
                )
                assert engine._pool is not None
                assert not engine.parallel_degraded
                assert [r.as_pairs() for r in healed] == [
                    r.as_pairs() for r in sequential
                ]
        finally:
            faults.clear()

    def test_close_pool_is_idempotent_and_context_managed(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:4]
        engine = ReverseKRanksEngine(random_gnp)
        engine.query_many(
            queries, 2, algorithm="dynamic", workers=2,
            worker_context=FAST_CONTEXT,
        )
        pool = engine._pool
        assert pool is not None and not pool.is_closed
        engine.close_pool()
        assert pool.is_closed and engine._pool is None
        engine.close_pool()  # idempotent


# ----------------------------------------------------------------------
# WorkerPool lifecycle and failure surfacing
# ----------------------------------------------------------------------
@needs_fork
class TestWorkerPool:
    def test_requires_compact_graph(self, random_gnp):
        with pytest.raises(ParallelExecutionError):
            WorkerPool(random_gnp, workers=2)

    def test_rejects_bad_workers_and_context(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        with pytest.raises(ParallelExecutionError):
            WorkerPool(csr, workers=0)
        with pytest.raises(ParallelExecutionError):
            WorkerPool(csr, workers=2, context="not-a-method")

    def test_graceful_shutdown_reaps_processes(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        with WorkerPool(csr, workers=2, context=FAST_CONTEXT) as pool:
            processes = list(pool._processes)
            assert all(process.is_alive() for process in processes)
        assert pool.is_closed
        for process in processes:
            assert not process.is_alive()
        pool.close()  # idempotent
        plan = ShardPlanner(2).plan(sorted(random_gnp.nodes(), key=repr)[:4])
        with pytest.raises(ParallelExecutionError):
            pool.run_batch(plan, 2, "dynamic")

    def test_killed_worker_surfaces_as_typed_crash(self, random_gnp):
        # crash_retries=0 restores the fail-fast contract this test pins.
        csr = CompactGraph.from_graph(random_gnp)
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        with WorkerPool(
            csr, workers=2, context=FAST_CONTEXT, crash_retries=0
        ) as pool:
            victim = pool.worker_pids[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.time() + 5.0
            while pool._processes[0].is_alive() and time.time() < deadline:
                time.sleep(0.05)
            plan = ShardPlanner(2).plan(queries)
            with pytest.raises(WorkerCrashError) as excinfo:
                pool.run_batch(plan, 3, "dynamic")
            assert excinfo.value.worker_id == 0
            assert excinfo.value.exitcode == -signal.SIGKILL
            assert excinfo.value.positions  # the lost shard is named

    def test_pool_heals_killed_worker_and_redispatches(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        queries = sorted(random_gnp.nodes(), key=repr)[:8]
        reference = ReverseKRanksEngine(random_gnp).query_many(
            queries, 3, algorithm="dynamic"
        )
        with WorkerPool(csr, workers=2, context=FAST_CONTEXT) as pool:
            os.kill(pool.worker_pids[0], signal.SIGKILL)
            deadline = time.time() + 5.0
            while pool._processes[0].is_alive() and time.time() < deadline:
                time.sleep(0.05)
            plan = ShardPlanner(2).plan(queries)
            outcome = pool.run_batch(plan, 3, "dynamic")
            assert pool.crash_count >= 1
            assert pool.respawn_count >= 1
            assert pool.health()["generations"][0] >= 1
            assert [r.as_pairs() for r in outcome.results] == [
                r.as_pairs() for r in reference
            ]
            # The healed pool keeps serving.
            again = pool.run_batch(plan, 3, "dynamic")
            assert [r.as_pairs() for r in again.results] == [
                r.as_pairs() for r in reference
            ]

    def test_result_channels_are_per_worker_and_replaced_on_respawn(
        self, random_gnp
    ):
        # Crash isolation: each worker writes to its own result queue
        # (a SIGKILL mid-flush can leave a queue's cross-process write
        # lock held forever — a shared queue would then wedge every
        # future writer, including the replacement's "ready" message),
        # and a respawn must discard the casualty's possibly-poisoned
        # channel, not reuse it.
        csr = CompactGraph.from_graph(random_gnp)
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        with WorkerPool(csr, workers=2, context=FAST_CONTEXT) as pool:
            assert len(pool._result_queues) == 2
            assert pool._result_queues[0] is not pool._result_queues[1]
            poisoned = pool._result_queues[0]
            os.kill(pool.worker_pids[0], signal.SIGKILL)
            deadline = time.time() + 5.0
            while pool._processes[0].is_alive() and time.time() < deadline:
                time.sleep(0.05)
            plan = ShardPlanner(2).plan(queries)
            outcome = pool.run_batch(plan, 3, "dynamic")
            assert len(outcome.results) == len(queries)
            assert pool.respawn_count >= 1
            assert pool._result_queues[0] is not poisoned

    def test_wedged_respawn_is_killed_within_respawn_timeout(
        self, random_gnp
    ):
        from repro import faults

        csr = CompactGraph.from_graph(random_gnp)
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        try:
            with WorkerPool(
                csr, workers=2, context="fork", respawn_timeout=0.5
            ) as pool:
                os.kill(pool.worker_pids[0], signal.SIGKILL)
                deadline = time.time() + 5.0
                while pool._processes[0].is_alive() and time.time() < deadline:
                    time.sleep(0.05)
                # Armed only now: the running workers never see it, but a
                # fork-respawned replacement inherits the registry and
                # stalls before reporting ready — the bounded respawn
                # must kill it and fail the batch in seconds, not wait
                # out the 60s startup budget.
                faults.configure("worker.start=sleep(30)")
                plan = ShardPlanner(2).plan(queries)
                start = time.monotonic()
                with pytest.raises(WorkerCrashError) as excinfo:
                    pool.run_batch(plan, 3, "dynamic")
                assert time.monotonic() - start < 10.0
                assert "respawning the worker failed" in str(excinfo.value)
                assert "did not report ready" in str(excinfo.value)
                assert not pool._processes[0].is_alive()  # no leaked child
        finally:
            faults.clear()

    def test_batch_deadline_kills_stuck_worker_and_pool_survives(
        self, random_gnp
    ):
        from repro import faults
        from repro.errors import WorkerTimeoutError

        csr = CompactGraph.from_graph(random_gnp)
        queries = sorted(random_gnp.nodes(), key=repr)[:8]
        reference = ReverseKRanksEngine(random_gnp).query_many(
            queries, 3, algorithm="dynamic"
        )
        try:
            # Each worker stalls once, on its second result — batch 1 is
            # clean, batch 2 hangs, the respawned replacements (counters
            # reset) serve batch 3 cleanly again.
            faults.configure("worker.before_result=sleep(30)#2*1")
            with WorkerPool(csr, workers=2, context=FAST_CONTEXT) as pool:
                plan = ShardPlanner(2).plan(queries)
                pool.run_batch(plan, 3, "dynamic")
                start = time.monotonic()
                with pytest.raises(WorkerTimeoutError) as excinfo:
                    pool.run_batch(plan, 3, "dynamic", timeout=1.0)
                assert time.monotonic() - start < 20.0  # no 30s hang
                assert excinfo.value.worker_ids
                assert excinfo.value.positions
                assert pool.timeout_count == 1
                outcome = pool.run_batch(plan, 3, "dynamic", timeout=30.0)
                assert [r.as_pairs() for r in outcome.results] == [
                    r.as_pairs() for r in reference
                ]
        finally:
            faults.clear()

    def test_failpoint_error_travels_as_remote_traceback(self, random_gnp):
        from repro import faults

        csr = CompactGraph.from_graph(random_gnp)
        try:
            faults.configure("worker.before_task=error*1")
            with WorkerPool(csr, workers=1, context=FAST_CONTEXT) as pool:
                plan = ShardPlanner(1).plan(
                    sorted(random_gnp.nodes(), key=repr)[:2]
                )
                with pytest.raises(ParallelExecutionError) as excinfo:
                    pool.run_batch(plan, 2, "dynamic")
                assert "FailpointError" in str(excinfo.value)
                # *1 disarmed the failpoint: the worker survives and the
                # next batch is clean.
                outcome = pool.run_batch(plan, 2, "dynamic")
                assert len(outcome.results) == 2
        finally:
            faults.clear()

    def test_worker_exception_carries_remote_traceback(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        with WorkerPool(csr, workers=1, context=FAST_CONTEXT) as pool:
            # k beyond the engine-side validation the worker re-runs.
            plan = ShardPlanner(1).plan(sorted(random_gnp.nodes(), key=repr)[:2])
            with pytest.raises(ParallelExecutionError) as excinfo:
                pool.run_batch(plan, 10_000, "dynamic")
            assert "InvalidKError" in str(excinfo.value)
            # The worker survives a shard error and serves the next batch.
            outcome = pool.run_batch(plan, 2, "dynamic")
            assert len(outcome.results) == 2


# ----------------------------------------------------------------------
# Spawn start method (one representative round trip; slower to start)
# ----------------------------------------------------------------------
@needs_spawn
def test_spawn_round_trip_matches_sequential(random_gnp):
    queries = sample_queries(random_gnp, count=3)
    with ReverseKRanksEngine(random_gnp) as engine:
        sequential = engine.query_many(queries, 3, algorithm="dynamic")
        parallel = engine.query_many(
            queries, 3, algorithm="dynamic", workers=2, worker_context="spawn"
        )
        assert engine._pool.start_method == "spawn"
    assert [result.as_pairs() for result in parallel] == [
        result.as_pairs() for result in sequential
    ]
