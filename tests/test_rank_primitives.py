"""Unit tests for exact_rank / rank_row against hand-computed distances."""

from __future__ import annotations

import math

import pytest

from repro.errors import NodeNotFoundError
from repro.graph import Graph
from repro.traversal.rank import exact_rank, rank_matrix, rank_row


@pytest.fixture(scope="module")
def diamond() -> Graph:
    """a-b(1), a-c(2), b-d(2), c-d(1): d(a,d)=3 two ways, d ties with c."""
    graph = Graph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("a", "c", 2.0)
    graph.add_edge("b", "d", 2.0)
    graph.add_edge("c", "d", 1.0)
    return graph


def test_exact_rank_on_path(path_graph):
    # From node 3, distances to 0..9 are 3,2,1,_,1,2,3,4,5,6.
    assert exact_rank(path_graph, 3, 4) == 1
    assert exact_rank(path_graph, 3, 2) == 1
    assert exact_rank(path_graph, 3, 5) == 3
    assert exact_rank(path_graph, 3, 0) == 5
    assert exact_rank(path_graph, 3, 9) == 9


def test_exact_rank_counts_strictly_closer_only(diamond):
    # From a: d(b)=1, d(c)=2, d(d)=3. Rank(a, c) counts only b.
    assert exact_rank(diamond, "a", "c") == 2
    assert exact_rank(diamond, "a", "b") == 1
    assert exact_rank(diamond, "a", "d") == 3


def test_exact_rank_with_ties(diamond):
    # From d: d(c)=1, d(b)=2, d(a)=3. From b: d(a)=1, d(d)=2, d(c)=3.
    # From c: d(d)=1, d(a)=2, d(b)=3.
    assert exact_rank(diamond, "d", "b") == 2
    assert exact_rank(diamond, "c", "b") == 3


def test_exact_rank_counted_predicate(path_graph):
    # Only even nodes count. From 3 to 0: strictly closer are 2,1,4,5
    # (d<3) -> counted among them: 2 and 4.
    assert exact_rank(path_graph, 3, 0, counted=lambda n: n % 2 == 0) == 3


def test_exact_rank_unreachable_is_infinite():
    graph = Graph()
    graph.add_node("isolated")
    graph.add_edge("a", "b", 1.0)
    assert math.isinf(exact_rank(graph, "isolated", "a"))


def test_exact_rank_missing_nodes_raise(path_graph):
    with pytest.raises(NodeNotFoundError):
        exact_rank(path_graph, 0, "nope")
    with pytest.raises(NodeNotFoundError):
        exact_rank(path_graph, "nope", 0)


def test_rank_row_matches_exact_rank(weighted_grid):
    for source in (0, 5, 15):
        row = rank_row(weighted_grid, source)
        for target, rank in row.items():
            assert rank == exact_rank(weighted_grid, source, target)


def test_rank_row_tie_groups_share_rank(diamond):
    # From a: b at 1, c at 2, d at 3 -> unique ranks 1, 2, 3.
    assert rank_row(diamond, "a") == {"b": 1, "c": 2, "d": 3}
    # Star with equal spokes: all leaves tie at rank 1 from the center.
    star = Graph()
    for leaf in ("x", "y", "z"):
        star.add_edge("hub", leaf, 1.0)
    assert rank_row(star, "hub") == {"x": 1, "y": 1, "z": 1}


def test_rank_matrix_covers_all_sources(path_graph):
    matrix = rank_matrix(path_graph)
    assert set(matrix) == set(path_graph.nodes())
    assert matrix[0][9] == 9
    assert matrix[9][0] == 9
