"""Tests for the batch query API (`ReverseKRanksEngine.query_many`).

Covers batch-vs-single equivalence for every algorithm, the CSR compile
cache, the per-batch LRU result cache, warm hub-index reuse across a batch,
bichromatic batches, and the stale-hub-index regression (a graph mutation
after index build must be rejected at query time, not silently served).
"""

from __future__ import annotations

import pytest

from repro.core import AlgorithmKind, ReverseKRanksEngine
from repro.core.hub_index import HubIndex
from repro.errors import (
    IndexParameterError,
    InvalidKError,
    InvalidQueryNodeError,
)

from conftest import sample_queries


ALL_KINDS = (
    AlgorithmKind.NAIVE,
    AlgorithmKind.STATIC,
    AlgorithmKind.DYNAMIC,
    AlgorithmKind.INDEXED,
)


@pytest.fixture()
def warm_engine(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    engine.build_index(num_hubs=3, capacity=16)
    return engine


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_batch_matches_single_queries(warm_engine, random_gnp, kind):
    queries = sample_queries(random_gnp, 4)
    batch = warm_engine.query_many(queries, 3, algorithm=kind)
    assert len(batch) == len(queries)
    for query, result in zip(queries, batch):
        single = warm_engine.query(query, 3, algorithm=kind)
        assert result.query == query
        assert result.as_pairs() == single.as_pairs()


@pytest.mark.parametrize("kind", (AlgorithmKind.NAIVE, AlgorithmKind.DYNAMIC))
def test_csr_and_dict_batches_identical(random_gnp, kind):
    engine = ReverseKRanksEngine(random_gnp)
    queries = sample_queries(random_gnp, 4)
    with_csr = engine.query_many(queries, 3, algorithm=kind, use_csr=True)
    without_csr = engine.query_many(queries, 3, algorithm=kind, use_csr=False)
    for left, right in zip(with_csr, without_csr):
        assert left.as_pairs() == right.as_pairs()


def test_csr_compiled_once_per_graph_version(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    first = engine.compact_graph()
    engine.query_many(sample_queries(random_gnp, 3), 2)
    # Same version -> same compilation object across batches.
    assert engine.compact_graph() is first


def test_csr_recompiled_after_mutation():
    from repro.graph import Graph

    graph = Graph()
    for node in range(5):
        graph.add_edge(node, node + 1, 1.0)
    engine = ReverseKRanksEngine(graph)
    stale = engine.compact_graph()
    graph.add_edge(0, 5, 0.5)
    fresh = engine.compact_graph()
    assert fresh is not stale
    assert fresh.source_version == graph.version
    # And the recompiled backend answers with the mutated topology.
    batch = engine.query_many([5], 2, algorithm=AlgorithmKind.NAIVE)
    assert batch[0].as_pairs() == engine.query(5, 2, "naive").as_pairs()


def test_lru_cache_returns_same_object(warm_engine, random_gnp):
    query = sample_queries(random_gnp, 1)[0]
    batch = warm_engine.query_many(
        [query, query, query], 3, algorithm="dynamic", cache_size=4
    )
    assert batch[0] is batch[1] is batch[2]


def test_lru_cache_disabled_by_default(warm_engine, random_gnp):
    query = sample_queries(random_gnp, 1)[0]
    batch = warm_engine.query_many([query, query], 3, algorithm="dynamic")
    assert batch[0] is not batch[1]
    assert batch[0].as_pairs() == batch[1].as_pairs()


def test_lru_cache_evicts_beyond_capacity(warm_engine, random_gnp):
    queries = sample_queries(random_gnp, 3)
    pattern = [queries[0], queries[1], queries[2], queries[0]]
    # Capacity 1: queries[0] is evicted before its second occurrence.
    batch = warm_engine.query_many(pattern, 2, algorithm="static", cache_size=1)
    assert batch[0] is not batch[3]
    assert batch[0].as_pairs() == batch[3].as_pairs()


def test_warm_index_learns_across_batch(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    engine.build_index(num_hubs=2, explore_limit=4, capacity=16)
    known_before = engine.index.num_known_ranks
    engine.query_many(sample_queries(random_gnp, 4), 3, algorithm="indexed")
    assert engine.index.num_known_ranks > known_before


def test_bichromatic_batch(bichromatic_case):
    engine = ReverseKRanksEngine(bichromatic_case.graph, partition=bichromatic_case)
    queries = sorted(bichromatic_case.facilities, key=repr)[:3]
    batch = engine.query_many(queries, 2, algorithm="dynamic")
    for query, result in zip(queries, batch):
        assert result.as_pairs() == engine.query(query, 2, "dynamic").as_pairs()
        assert all(bichromatic_case.is_community(node) for node in result.nodes())


def test_batch_validates_before_any_work(warm_engine, random_gnp):
    queries = sample_queries(random_gnp, 2) + ["missing"]
    with pytest.raises(InvalidQueryNodeError):
        warm_engine.query_many(queries, 3)
    with pytest.raises(InvalidKError):
        warm_engine.query_many(sample_queries(random_gnp, 2), 0)


@pytest.mark.parametrize("bad_k", (0, -1, True, 2.5))
def test_empty_batch_still_validates_k(warm_engine, bad_k):
    with pytest.raises(InvalidKError):
        warm_engine.query_many([], bad_k)


def test_empty_batch_with_valid_k_returns_empty(warm_engine):
    assert warm_engine.query_many([], 3) == []


def test_batch_indexed_requires_index(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    with pytest.raises(IndexParameterError):
        engine.query_many(sample_queries(random_gnp, 2), 2, algorithm="indexed")


# ----------------------------------------------------------------------
# Stale hub index regression (graph mutated after index build)
# ----------------------------------------------------------------------
def _mutable_graph():
    from repro.graph import Graph

    graph = Graph()
    for node in range(8):
        graph.add_edge(node, node + 1, 1.0)
    return graph


@pytest.mark.parametrize(
    "mutate",
    [
        lambda graph: graph.add_edge(0, 8, 0.25),
        lambda graph: graph.remove_edge(3, 4),
        lambda graph: graph.add_edge(0, 1, 0.1),  # weight update via collapse
        lambda graph: graph.add_node("isolated"),
        lambda graph: graph.remove_node(8),
    ],
)
def test_stale_index_rejected_at_query_time(mutate):
    graph = _mutable_graph()
    engine = ReverseKRanksEngine(graph)
    engine.build_index(num_hubs=2, capacity=8)
    assert engine.query(4, 2, "indexed").is_full()

    mutate(graph)
    with pytest.raises(IndexParameterError, match="stale"):
        engine.query(4, 2, "indexed")
    with pytest.raises(IndexParameterError, match="stale"):
        engine.query_many([4], 2, algorithm="indexed")
    # Non-indexed algorithms keep working on the mutated graph.
    assert engine.query(4, 2, "dynamic").rank_values() == engine.query(
        4, 2, "naive"
    ).rank_values()
    # Rebuilding restores indexed service.
    engine.build_index(num_hubs=2, capacity=8)
    assert engine.query(4, 2, "indexed").rank_values() == engine.query(
        4, 2, "naive"
    ).rank_values()


def test_noop_mutations_do_not_invalidate_index():
    graph = _mutable_graph()
    index = HubIndex.build(graph, num_hubs=2, capacity=8)
    graph.add_node(0)  # already present
    graph.add_edge(0, 1, 5.0)  # heavier parallel edge is collapsed away
    index.ensure_compatible(graph, 2)  # still fresh


def test_engine_rejects_stale_index_at_construction():
    graph = _mutable_graph()
    index = HubIndex.build(graph, num_hubs=2, capacity=8)
    graph.add_edge(0, 8, 0.25)
    with pytest.raises(IndexParameterError, match="stale"):
        ReverseKRanksEngine(graph, index=index)


# ----------------------------------------------------------------------
# The parallel branch must honour cache_size (regression)
# ----------------------------------------------------------------------
# query_many(workers=N, cache_size=M) used to return from the parallel
# branch before the cache machinery existed, silently dispatching every
# duplicate query to the workers.  The fix deduplicates parent-side
# before shard planning and fans the unique results back out, so
# duplicate positions share one QueryResult object exactly like a
# sequential cache hit.

_HAVE_FORK = "fork" in __import__("multiprocessing").get_all_start_methods()
_needs_fork = pytest.mark.skipif(
    not _HAVE_FORK, reason="fork start method unavailable"
)


@_needs_fork
def test_parallel_batch_honours_cache(random_gnp):
    queries = sample_queries(random_gnp, 3)
    pattern = [
        queries[0], queries[1], queries[0], queries[2],
        queries[1], queries[0],
    ]
    engine = ReverseKRanksEngine(random_gnp)
    engine.build_index(num_hubs=3, capacity=16)
    with engine:
        batch = engine.query_many(
            pattern, 3, algorithm="dynamic", workers=2,
            worker_context="fork", cache_size=4,
        )
        # Duplicate positions share one object (the cache contract)...
        assert batch[0] is batch[2] is batch[5]
        assert batch[1] is batch[4]
        assert batch[3] is not batch[0]
        # ...and every position answers its own query, in input order.
        reference = ReverseKRanksEngine(random_gnp)
        for query, result in zip(pattern, batch):
            assert result.as_pairs() == reference.query(
                query, 3, "dynamic"
            ).as_pairs()


@_needs_fork
def test_parallel_cache_single_unique_query_runs_sequentially(random_gnp):
    """All-duplicates batches collapse to one query: nothing to shard."""
    query = sample_queries(random_gnp, 1)[0]
    engine = ReverseKRanksEngine(random_gnp)
    with engine:
        batch = engine.query_many(
            [query] * 5, 3, algorithm="dynamic", workers=2,
            worker_context="fork", cache_size=4,
        )
        assert all(result is batch[0] for result in batch)
        # The degenerate batch never started the pool.
        assert engine._pool is None


@_needs_fork
def test_parallel_without_cache_still_dispatches_duplicates(random_gnp):
    query = sample_queries(random_gnp, 2)
    pattern = [query[0], query[1], query[0]]
    engine = ReverseKRanksEngine(random_gnp)
    with engine:
        batch = engine.query_many(
            pattern, 3, algorithm="dynamic", workers=2, worker_context="fork",
        )
        assert batch[0] is not batch[2]
        assert batch[0].as_pairs() == batch[2].as_pairs()

@_needs_fork
def test_parallel_min_batch_one_dispatches_singles(random_gnp):
    """parallel_min_batch=1 sends even a lone query through the pool.

    The serving benchmark's one-query-per-request baseline depends on
    this: without the knob the single-query fallback would quietly
    measure the sequential path instead of per-request dispatch cost.
    """
    query = sample_queries(random_gnp, 1)[0]
    engine = ReverseKRanksEngine(random_gnp)
    engine.parallel_min_batch = 1
    with engine:
        batch = engine.query_many(
            [query], 3, algorithm="dynamic", workers=2,
            worker_context="fork",
        )
        assert engine._pool is not None
        reference = ReverseKRanksEngine(random_gnp)
        assert batch[0].as_pairs() == reference.query(
            query, 3, "dynamic"
        ).as_pairs()
