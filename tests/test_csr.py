"""Cross-validation of the CompactGraph CSR backend against the dict backend.

The contract is *identity*, not mere equivalence: the CSR compilation
preserves node and adjacency iteration order and copies weights bit-for-bit,
so distances, ranks and full query results must match the dict backend
exactly on every fixture.
"""

from __future__ import annotations

import pytest

from repro.core import (
    dynamic_reverse_k_ranks,
    naive_reverse_k_ranks,
    static_reverse_k_ranks,
)
from repro.errors import EdgeNotFoundError, NodeNotFoundError
from repro.graph import CompactGraph, Graph
from repro.traversal import (
    distance_between,
    exact_rank,
    rank_row,
    shortest_path_distances,
    shortest_path_tree,
)

from conftest import sample_queries


@pytest.fixture()
def compiled(any_graph):
    return any_graph, CompactGraph.from_graph(any_graph)


def test_compilation_preserves_structure(compiled):
    graph, csr = compiled
    assert csr.num_nodes == graph.num_nodes
    assert csr.num_edges == graph.num_edges
    assert csr.directed == graph.directed
    assert list(csr.nodes()) == list(graph.nodes())
    for node in graph.nodes():
        assert csr.has_node(node)
        assert csr.out_degree(node) == graph.out_degree(node)
        assert csr.in_degree(node) == graph.in_degree(node)
        assert dict(csr.neighbor_items(node)) == dict(graph.neighbor_items(node))
        assert dict(csr.in_neighbor_items(node)) == dict(graph.in_neighbor_items(node))
    assert sorted(csr.edges(), key=repr) == sorted(graph.edges(), key=repr)


def test_adjacency_iteration_order_matches_dict_backend(compiled):
    graph, csr = compiled
    for node in graph.nodes():
        assert list(csr.neighbor_items(node)) == list(graph.neighbor_items(node))
        assert list(csr.in_neighbor_items(node)) == list(graph.in_neighbor_items(node))


def test_distances_bit_identical(compiled):
    graph, csr = compiled
    for source in sample_queries(graph):
        assert shortest_path_distances(csr, source) == shortest_path_distances(
            graph, source
        )


def test_shortest_path_tree_fast_path(compiled):
    graph, csr = compiled
    for source in sample_queries(graph, 2):
        dict_tree = shortest_path_tree(graph, source)
        csr_tree = shortest_path_tree(csr, source)
        assert csr_tree.distances == dict_tree.distances
        assert csr_tree.complete
        # Predecessor links must be consistent: every settled node's
        # predecessor edge closes its shortest-path distance exactly.
        for node, predecessor in csr_tree.predecessors.items():
            if predecessor is None:
                assert node == source
                continue
            assert (
                csr_tree.distances[predecessor] + graph.weight(predecessor, node)
                == csr_tree.distances[node]
            )


def test_point_to_point_distance(compiled):
    graph, csr = compiled
    nodes = sample_queries(graph, 3)
    for source in nodes:
        for target in nodes:
            assert distance_between(csr, source, target) == distance_between(
                graph, source, target
            )


def test_ranks_bit_identical(compiled):
    graph, csr = compiled
    for source in sample_queries(graph):
        assert rank_row(csr, source) == rank_row(graph, source)
        for target in sample_queries(graph, 2):
            assert exact_rank(csr, source, target) == exact_rank(
                graph, source, target
            )


def test_query_results_identical_across_backends(compiled):
    graph, csr = compiled
    for query in sample_queries(graph):
        for k in (1, 3):
            assert (
                naive_reverse_k_ranks(csr, query, k).as_pairs()
                == naive_reverse_k_ranks(graph, query, k).as_pairs()
            )
            assert (
                static_reverse_k_ranks(csr, query, k).as_pairs()
                == static_reverse_k_ranks(graph, query, k).as_pairs()
            )
            assert (
                dynamic_reverse_k_ranks(csr, query, k).as_pairs()
                == dynamic_reverse_k_ranks(graph, query, k).as_pairs()
            )


def test_missing_nodes_raise(random_gnp):
    csr = CompactGraph.from_graph(random_gnp)
    with pytest.raises(NodeNotFoundError):
        csr.index_of("missing")
    with pytest.raises(NodeNotFoundError):
        list(csr.neighbor_items("missing"))
    with pytest.raises(NodeNotFoundError):
        shortest_path_distances(csr, "missing")
    with pytest.raises(EdgeNotFoundError):
        csr.weight(0, 0)


def test_empty_and_single_node_graphs():
    empty = CompactGraph.from_graph(Graph())
    assert empty.num_nodes == 0
    assert empty.num_edges == 0
    assert list(empty.nodes()) == []

    single = Graph()
    single.add_node("only")
    csr = CompactGraph.from_graph(single)
    assert csr.num_nodes == 1
    assert shortest_path_distances(csr, "only") == {"only": 0.0}
    assert exact_rank(csr, "only", "only") == 1


def test_compact_graph_is_frozen(random_gnp):
    csr = CompactGraph.from_graph(random_gnp)
    assert not hasattr(csr, "add_edge")
    assert not hasattr(csr, "add_node")
    assert not hasattr(csr, "remove_edge")
    with pytest.raises(AttributeError):
        csr.extra_attribute = 1  # __slots__ blocks new attributes


def test_source_version_snapshot(random_gnp):
    csr = CompactGraph.from_graph(random_gnp)
    assert csr.source_version == random_gnp.version


def test_round_trip_to_graph(compiled):
    graph, csr = compiled
    assert csr.to_graph().structurally_equal(graph)


def test_weight_and_has_edge(compiled):
    graph, csr = compiled
    for source, target, weight in list(graph.edges())[:10]:
        assert csr.has_edge(source, target)
        assert csr.weight(source, target) == weight
    assert not csr.has_edge(
        next(iter(graph.nodes())), next(iter(graph.nodes()))
    )
