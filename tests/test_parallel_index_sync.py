"""Worker hub-index staleness: learned deltas must reach the pool.

The regression under test: ``_ensure_pool`` used to key the workers'
index snapshot on the index *object's identity*, so everything the
master index learned between parallel batches — sequential queries,
merged-back deltas, journal replay — never reached the workers; they
kept answering on their construction-time snapshot forever.  The fix
stamps every ``record_*`` call into ``HubIndex.revision`` and re-ships
an ``export_state`` snapshot (over the pool's new ``"index"`` broadcast,
keeping worker processes alive) whenever the master has drifted at least
``engine.index_sync_threshold`` revisions past the workers' snapshot —
or when the index object was swapped outright.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core import ReverseKRanksEngine
from repro.core.hub_index import HubIndex, HubIndexDelta
from repro.core.validation import results_equivalent

from conftest import sample_queries

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="fork start method unavailable"
)

#: Start method for the process tests (fast to start on CI's Linux).
FAST_CONTEXT = "fork" if HAVE_FORK else None


class TestRevisionCounter:
    def test_revision_counts_every_learning_call(self, random_gnp):
        index = HubIndex(random_gnp, capacity=8, hubs=[0])
        base = index.revision
        index.record_rank(1, 2, 3)
        assert index.revision == base + 1
        index.record_exploration(1, 10)
        assert index.revision == base + 2

    def test_merge_delta_advances_revision(self, random_gnp):
        index = HubIndex(random_gnp, capacity=8, hubs=[0])
        base = index.revision
        index.merge_delta(
            HubIndexDelta(ranks={(1, 2): 3, (2, 3): 4}, explorations={1: 5})
        )
        assert index.revision == base + 3

    def test_revision_not_serialised(self, random_gnp):
        index = HubIndex(random_gnp, capacity=8, hubs=[0])
        index.record_rank(1, 2, 3)
        clone = HubIndex.from_state(random_gnp, index.export_state())
        # The clone's counter starts from its own rebuild, not the
        # donor's live value — revisions are object-local.
        assert clone.num_known_ranks == index.num_known_ranks


@needs_fork
class TestPoolIndexSync:
    def build_engine(self, graph):
        engine = ReverseKRanksEngine(graph)
        engine.build_index(num_hubs=3, capacity=16)
        return engine

    def test_sequential_learning_reaches_workers(self, random_gnp):
        """Master-side learning between parallel batches is re-shipped."""
        queries = sample_queries(random_gnp, 6)
        engine = self.build_engine(random_gnp)
        engine.index_sync_threshold = 1  # ship on any drift
        with engine:
            engine.prepare_parallel(2, FAST_CONTEXT)
            pids_before = engine._pool.worker_pids
            # Learn on the master only: a sequential indexed batch.
            engine.query_many(queries, 4, algorithm="indexed")
            drifted_to = engine.index.revision
            assert drifted_to > engine._pool_index_revision
            # The next parallel batch must first sync the workers (the
            # merge-back of that batch's own learning then advances the
            # master past the shipped snapshot again)...
            engine.query_many(
                queries, 5, algorithm="indexed", workers=2,
                worker_context=FAST_CONTEXT,
            )
            assert engine._pool_index_revision >= drifted_to
            # ...without restarting any worker process.
            assert engine._pool.worker_pids == pids_before

    def test_below_threshold_drift_is_not_shipped(self, random_gnp):
        queries = sample_queries(random_gnp, 6)
        engine = self.build_engine(random_gnp)
        engine.index_sync_threshold = 10_000_000
        with engine:
            engine.prepare_parallel(2, FAST_CONTEXT)
            shipped = engine._pool_index_revision
            engine.query_many(queries, 4, algorithm="indexed")
            engine.query_many(
                queries, 5, algorithm="indexed", workers=2,
                worker_context=FAST_CONTEXT,
            )
            # Drift stayed under the (huge) threshold: no re-ship — the
            # snapshot revision the workers hold is unchanged.
            assert engine._pool_index_revision == shipped

    def test_swapped_index_object_is_always_shipped(self, random_gnp):
        """adopt_index swaps identity: must re-ship regardless of drift.

        The swapped-in index may have a different capacity, and the
        worker-side k validation runs against *its* snapshot — serving
        from the old one would wrongly reject (or mis-bound) queries.
        """
        queries = sample_queries(random_gnp, 6)
        engine = self.build_engine(random_gnp)
        engine.index_sync_threshold = 10_000_000
        with engine:
            engine.prepare_parallel(2, FAST_CONTEXT)
            replacement = HubIndex.build(
                random_gnp, num_hubs=4, capacity=32
            )
            engine.adopt_index(replacement)
            adopted_at = replacement.revision
            engine.query_many(
                queries, 5, algorithm="indexed", workers=2,
                worker_context=FAST_CONTEXT,
            )
            assert engine._pool_index is replacement
            assert engine._pool_index_revision >= adopted_at

    def test_synced_parallel_matches_sequential_reference(self, random_gnp):
        """End to end: answers after a sync match a sequential engine's.

        Both engines learn through the same batch sequence; the parallel
        one interleaves master-only learning with worker batches under a
        ship-always threshold.  Indexed parallel answers are rank-value
        equivalent to sequential ones (boundary ties may order
        differently — the documented contract).
        """
        queries = sample_queries(random_gnp, 6)
        reference = self.build_engine(random_gnp)
        engine = self.build_engine(random_gnp)
        engine.index_sync_threshold = 1
        with engine:
            for k, parallel in ((4, False), (5, True), (6, True)):
                expected = reference.query_many(
                    queries, k, algorithm="indexed"
                )
                got = engine.query_many(
                    queries,
                    k,
                    algorithm="indexed",
                    workers=2 if parallel else 1,
                    worker_context=FAST_CONTEXT,
                )
                for want, have in zip(expected, got):
                    assert results_equivalent(want, have)
                    assert want.rank_values() == have.rank_values()
            # The synced engine's master index knows at least every rank
            # an answer depends on; spot-check agreement on shared keys
            # (recorded ranks are exact, so overlap must agree).
            ref_known = reference.export_state()["known"]
            eng_known = engine.export_state()["known"]
            for source, targets in eng_known.items():
                for target, rank in targets.items():
                    if source in ref_known and target in ref_known[source]:
                        assert ref_known[source][target] == rank

    def test_update_index_rejected_on_closed_pool(self, random_gnp):
        from repro.errors import ParallelExecutionError

        engine = self.build_engine(random_gnp)
        pool = engine.prepare_parallel(2, FAST_CONTEXT)
        engine.close_pool()
        with pytest.raises(ParallelExecutionError, match="closed"):
            pool.update_index(engine.index.export_state())
