"""Graph serialisation: edge-list robustness, DIMACS, format auto-detection."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.graph import Graph
from repro.graph.io import (
    load_dataset,
    read_dimacs,
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)


def small_graph() -> Graph:
    graph = Graph(name="io")
    for source, target, weight in [(0, 1, 1.5), (1, 2, 2.0), (2, 3, 1.0)]:
        graph.add_edge(source, target, weight)
    return graph


# ----------------------------------------------------------------------
# Edge lists
# ----------------------------------------------------------------------
class TestEdgeList:
    def test_write_read_round_trip(self, tmp_path):
        graph = small_graph()
        path = tmp_path / "edges.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path, node_type=int)
        assert loaded.structurally_equal(graph)

    def test_tolerates_crlf_blank_and_comment_lines(self, tmp_path):
        path = tmp_path / "messy.txt"
        # CRLF endings, blank lines, '#' and '%' comments, stray spaces —
        # everything a real SNAP/KONECT download contains.
        path.write_bytes(
            b"# snap header\r\n"
            b"\r\n"
            b"% konect header\r\n"
            b"0 1 1.5\r\n"
            b"  1 2 2.0  \r\n"
            b"\n"
            b"2\t3\t1.0\r\n"
            b"3 0\r\n"  # weightless edge defaults to 1.0
        )
        graph = read_edge_list(path, node_type=int)
        assert graph.num_nodes == 4
        assert graph.num_edges == 4
        assert graph.weight(3, 0) == 1.0

    def test_round_trip_survives_crlf_rewrite(self, tmp_path):
        graph = small_graph()
        clean = tmp_path / "clean.txt"
        write_edge_list(graph, clean)
        # Re-encode the file the way a Windows checkout would.
        crlf = tmp_path / "crlf.txt"
        crlf.write_bytes(clean.read_bytes().replace(b"\n", b"\r\n"))
        assert read_edge_list(crlf, node_type=int).structurally_equal(graph)

    @pytest.mark.parametrize(
        "line, match",
        [
            ("0 1 2 3 4", "expected 'source target"),
            ("0", "expected 'source target"),
            ("a b notaweight", "cannot parse"),
            ("0 1 nan", "non-finite"),
            ("0 1 inf", "non-finite"),
            ("0 1 -2.0", "invalid edge"),
        ],
    )
    def test_malformed_lines_fail_with_line_number(self, tmp_path, line, match):
        path = tmp_path / "bad.txt"
        path.write_text(f"# header\n0 1 1.0\n{line}\n")
        with pytest.raises(DatasetError, match=match) as excinfo:
            read_edge_list(path, node_type=int)
        assert ":3:" in str(excinfo.value)  # 1-based line number

    def test_comment_only_file_yields_empty_graph(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n\n% nothing at all\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 0 and graph.num_edges == 0


# ----------------------------------------------------------------------
# DIMACS shortest-path files
# ----------------------------------------------------------------------
DIMACS = """c USA-road-d style fixture
c
p sp 4 6
a 1 2 3.0
a 2 1 3.0
a 2 3 1.5
a 3 2 1.5
a 3 4 2.0
a 4 3 2.0
"""


class TestDimacs:
    def test_reads_undirected_road_network(self, tmp_path):
        path = tmp_path / "road.gr"
        path.write_text(DIMACS)
        graph = read_dimacs(path)
        # Both arc directions collapse into one undirected edge.
        assert graph.num_nodes == 4
        assert graph.num_edges == 3
        assert graph.weight(1, 2) == 3.0

    def test_declared_isolated_nodes_survive(self, tmp_path):
        path = tmp_path / "sparse.gr"
        path.write_text("p sp 5 1\na 1 2 1.0\n")
        graph = read_dimacs(path)
        assert graph.num_nodes == 5  # nodes 3..5 isolated but present

    @pytest.mark.parametrize(
        "content, match",
        [
            ("a 1 2 1.0\n", "arc line before"),
            ("p sp 3\n", "expected 'p sp"),
            ("p sp 3 1\na 1 9 1.0\n", "outside the declared"),
            ("p sp 3 1\na 1 2\n", "expected 'a"),
            ("p sp 3 1\nq wat\n", "unknown DIMACS line type"),
            ("p sp 3 1\na 1 2 nan\n", "non-finite"),
        ],
    )
    def test_malformed_dimacs_fails_typed(self, tmp_path, content, match):
        path = tmp_path / "bad.gr"
        path.write_text(content)
        with pytest.raises(DatasetError, match=match):
            read_dimacs(path)

    def test_missing_problem_line_fails(self, tmp_path):
        path = tmp_path / "nop.gr"
        path.write_text("c just comments\n")
        with pytest.raises(DatasetError, match="no 'p sp'"):
            read_dimacs(path)


# ----------------------------------------------------------------------
# load_dataset auto-detection
# ----------------------------------------------------------------------
class TestLoadDataset:
    def test_detects_gr_suffix(self, tmp_path):
        path = tmp_path / "road.gr"
        path.write_text(DIMACS)
        assert load_dataset(path).num_edges == 3

    def test_sniffs_dimacs_content_without_suffix(self, tmp_path):
        path = tmp_path / "road.dat"
        path.write_text(DIMACS)
        assert load_dataset(path).num_edges == 3

    def test_detects_json_documents(self, tmp_path):
        graph = small_graph()
        path = tmp_path / "graph.json"
        write_json(graph, path)
        loaded = load_dataset(path)
        assert loaded.num_nodes == graph.num_nodes
        assert loaded.num_edges == graph.num_edges

    def test_falls_back_to_edge_list_with_int_nodes(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# snap style\n10 20 1.0\n20 30 2.0\n")
        graph = load_dataset(path)
        assert graph.has_node(10) and graph.has_node(30)

    def test_json_round_trip_via_read_json(self, tmp_path):
        graph = small_graph()
        path = tmp_path / "doc.json"
        write_json(graph, path)
        loaded, partition = read_json(path)
        assert partition is None
        assert loaded.num_edges == graph.num_edges
