"""The ``python -m repro.bench.diff`` report comparator."""

from __future__ import annotations

import json

import pytest

from repro.bench.diff import (
    compare_reports,
    main,
    render_diff_table,
    summarize_membership,
)


def make_report(workloads):
    return {"schema_version": 1, "generated_by": "repro.bench", "workloads": workloads}


def make_workload(name, algorithms, backend_consistent=True):
    return {
        "name": name,
        "backend_consistent": backend_consistent,
        "algorithms": {
            # Real reports carry both timing keys; fixtures mirror that so
            # the tests hold under any default metric.
            algo: {
                "mean_seconds": seconds,
                "best_seconds": seconds,
                "validated": validated,
            }
            for algo, (seconds, validated) in algorithms.items()
        },
    }


def test_compare_flags_slowdowns_beyond_tolerance():
    old = make_report([make_workload("gnp", {"naive": (1.0, True), "dynamic": (0.10, True)})])
    new = make_report([make_workload("gnp", {"naive": (1.0, True), "dynamic": (0.20, True)})])
    rows, failures = compare_reports(old, new, tolerance=0.25)
    by_algo = {row["algorithm"]: row for row in rows}
    assert by_algo["dynamic"]["status"] == "SLOWER"
    assert by_algo["naive"]["status"] == "ok"
    assert len(failures) == 1 and "2.00x worse" in failures[0]

    # The same pair passes with a 2x tolerance.
    _, failures = compare_reports(old, new, tolerance=1.0)
    assert failures == []


def test_compare_speedup_metric_is_direction_inverted():
    def with_speedup(name, speedups):
        workload = make_workload(name, {})
        workload["algorithms"] = {
            algo: {"speedup_vs_naive": value, "validated": True}
            for algo, value in speedups.items()
        }
        return workload

    old = make_report([with_speedup("gnp", {"naive": 1.0, "dynamic": 4.8})])
    regressed = make_report([with_speedup("gnp", {"naive": 1.0, "dynamic": 1.9})])
    rows, failures = compare_reports(
        old, regressed, tolerance=1.0, metric="speedup_vs_naive"
    )
    by_algo = {row["algorithm"]: row for row in rows}
    # A speedup *drop* is the regression: ratio is old/new > 1.
    assert by_algo["dynamic"]["status"] == "SLOWER"
    assert by_algo["dynamic"]["ratio"] == pytest.approx(4.8 / 1.9)
    assert by_algo["naive"]["status"] == "ok"
    assert failures

    improved = make_report([with_speedup("gnp", {"naive": 1.0, "dynamic": 20.0})])
    _, failures = compare_reports(
        old, improved, tolerance=1.0, metric="speedup_vs_naive"
    )
    assert failures == []


def test_compare_marks_faster_new_and_removed_rows():
    old = make_report([
        make_workload("gone", {"naive": (1.0, True)}),
        make_workload("gnp", {"naive": (1.0, True), "dynamic": (0.4, True)}),
    ])
    new = make_report([
        make_workload("gnp", {"naive": (1.0, True), "dynamic": (0.1, True),
                              "indexed": (0.01, True)}),
        make_workload("fresh-large", {"naive": (2.0, True)}),
    ])
    rows, failures = compare_reports(old, new)
    assert failures == []
    status = {(row["workload"], row["algorithm"]): row["status"] for row in rows}
    assert status[("gone", "naive")] == "removed"
    assert status[("gnp", "dynamic")] == "faster"
    assert status[("gnp", "indexed")] == "new"
    assert status[("fresh-large", "naive")] == "new"
    # Suite growth/shrinkage never fails the diff by itself.


def test_compare_fails_on_correctness_flags():
    old = make_report([make_workload("gnp", {"dynamic": (0.1, True)})])
    bad_validation = make_report([make_workload("gnp", {"dynamic": (0.1, False)})])
    _, failures = compare_reports(old, bad_validation)
    assert any("validated is false" in line for line in failures)

    bad_backend = make_report(
        [make_workload("gnp", {"dynamic": (0.1, True)}, backend_consistent=False)]
    )
    _, failures = compare_reports(old, bad_backend)
    assert any("backend_consistent is false" in line for line in failures)

    bad_parallel_workload = make_workload("gnp", {"dynamic": (0.1, True)})
    bad_parallel_workload["parallel_consistent"] = False
    _, failures = compare_reports(old, make_report([bad_parallel_workload]))
    assert any("parallel_consistent is false" in line for line in failures)

    # Reports without the (optional) flag — every pre-parallel report —
    # and reports where it is true never trip the gate.
    ok_parallel_workload = make_workload("gnp", {"dynamic": (0.1, True)})
    ok_parallel_workload["parallel_consistent"] = True
    _, failures = compare_reports(old, make_report([ok_parallel_workload]))
    assert failures == []


def test_min_speedup_exempts_near_baseline_rows():
    def with_speedup(name, speedups):
        workload = make_workload(name, {})
        workload["algorithms"] = {
            algo: {"speedup_vs_naive": value, "validated": True}
            for algo, value in speedups.items()
        }
        return workload

    # static's committed advantage is near 1x; a halved ratio there is
    # scheduler noise, while dynamic's real 4.8x -> 1.9x drop must still fail.
    old = make_report([with_speedup("bi", {"static": 1.07, "dynamic": 4.8})])
    new = make_report([with_speedup("bi", {"static": 0.50, "dynamic": 1.9})])
    rows, failures = compare_reports(
        old, new, tolerance=1.0, metric="speedup_vs_naive", min_speedup=2.0
    )
    by_algo = {row["algorithm"]: row for row in rows}
    assert by_algo["static"]["status"] == "ignored"
    assert by_algo["dynamic"]["status"] == "SLOWER"
    assert len(failures) == 1 and "dynamic" in failures[0]

    # The floor is speedup-mode only: wall-clock metrics never ignore rows.
    old = make_report([make_workload("bi", {"static": (1.0, True)})])
    new = make_report([make_workload("bi", {"static": (3.0, True)})])
    _, failures = compare_reports(old, new, min_speedup=2.0)
    assert failures


def test_compare_fails_on_unvalidated_rows():
    # The harness aborts without writing a report when validation actually
    # disagrees, so the only way a report lacks validated=true is
    # --no-validate — a timing-only report must not pass the gate.
    old = make_report([make_workload("gnp", {"dynamic": (0.1, True)})])
    unvalidated = make_report([make_workload("gnp", {"dynamic": (0.1, None)})])
    rows, failures = compare_reports(old, unvalidated)
    assert rows[0]["status"] == "INVALID"
    assert any("not validated" in line for line in failures)


def test_compare_skips_rows_skipped_in_both_reports():
    old = make_report([make_workload("bi", {"indexed": (None, None)})])
    old["workloads"][0]["algorithms"]["indexed"]["skipped"] = "monochromatic-only"
    new = make_report([make_workload("bi", {"indexed": (None, None)})])
    new["workloads"][0]["algorithms"]["indexed"]["skipped"] = "monochromatic-only"
    rows, failures = compare_reports(old, new)
    assert failures == []
    assert rows[0]["status"] == "skipped"


def test_compare_fails_when_validated_row_becomes_skipped():
    # The baseline gated this algorithm; the new run silently stopped
    # running it — that is a harness regression, not suite shrinkage.
    old = make_report([make_workload("bi", {"dynamic": (0.1, True)})])
    new = make_report([make_workload("bi", {"dynamic": (None, None)})])
    new["workloads"][0]["algorithms"]["dynamic"]["skipped"] = "oops"
    rows, failures = compare_reports(old, new)
    assert rows[0]["status"] == "INVALID"
    assert any("skipped in the new one" in line for line in failures)


def test_render_table_lists_every_row():
    old = make_report([make_workload("gnp", {"naive": (1.0, True)})])
    new = make_report([make_workload("gnp", {"naive": (1.1, True)})])
    rows, _ = compare_reports(old, new)
    table = render_diff_table(rows)
    assert "gnp" in table and "naive" in table and "1.10x" in table


def test_main_exit_codes(tmp_path, capsys):
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    old_path.write_text(json.dumps(
        make_report([make_workload("gnp", {"dynamic": (0.10, True)})])
    ))
    new_path.write_text(json.dumps(
        make_report([make_workload("gnp", {"dynamic": (0.11, True)})])
    ))
    assert main([str(old_path), str(new_path)]) == 0
    capsys.readouterr()

    new_path.write_text(json.dumps(
        make_report([make_workload("gnp", {"dynamic": (0.50, True)})])
    ))
    assert main([str(old_path), str(new_path)]) == 1
    captured = capsys.readouterr()
    assert "REGRESSIONS" in captured.err

    assert main([str(old_path), str(new_path), "--tolerance", "10"]) == 0
    capsys.readouterr()
    assert main([str(old_path), str(new_path), "--tolerance", "-1"]) == 2


def test_compare_fails_on_mutation_inconsistency():
    old = make_report([make_workload("gnp", {"dynamic": (0.1, True)})])
    bad = make_workload("gnp", {"dynamic": (0.1, True)})
    bad["mutation_consistent"] = False
    _, failures = compare_reports(old, make_report([bad]))
    assert any("mutation_consistent is false" in line for line in failures)

    # Absent (no mutation pass) or true never trips the gate.
    ok = make_workload("gnp", {"dynamic": (0.1, True)})
    ok["mutation_consistent"] = True
    _, failures = compare_reports(old, make_report([ok]))
    assert failures == []


def test_summarize_membership_reports_explicit_changes():
    old = make_report([
        make_workload("gone", {"naive": (1.0, True)}),
        make_workload("gnp", {"naive": (1.0, True), "dynamic": (0.4, True)}),
    ])
    new = make_report([
        make_workload("gnp", {"naive": (1.0, True), "dynamic": (0.1, True),
                              "dynamic@mut": (0.2, True)}),
        make_workload("fresh", {"naive": (2.0, True)}),
    ])
    membership = summarize_membership(old, new)
    assert membership["added_workloads"] == ["fresh"]
    assert membership["removed_workloads"] == ["gone"]
    # Row-level changes are tracked for shared workloads only (removed
    # workloads already cover their rows).
    assert membership["added_rows"] == ["gnp/dynamic@mut"]
    assert membership["removed_rows"] == []


def test_one_sided_mutation_rows_are_additions_not_regressions(tmp_path, capsys):
    # A --mutation-rate run diffed against a plain baseline: every @mut
    # row is one-sided.  The diff must report them as explicit additions
    # under "suite changes" and exit 0.
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    old_path.write_text(json.dumps(
        make_report([make_workload("gnp", {"dynamic": (0.10, True)})])
    ))
    new_path.write_text(json.dumps(
        make_report([make_workload("gnp", {"dynamic": (0.10, True),
                                           "dynamic@mut": (0.15, True)})])
    ))
    assert main([str(old_path), str(new_path)]) == 0
    captured = capsys.readouterr()
    assert "suite changes" in captured.out
    assert "gnp/dynamic@mut" in captured.out

    # Reversed direction: the @mut rows disappear — still not a failure,
    # but reported as removals.
    assert main([str(new_path), str(old_path)]) == 0
    captured = capsys.readouterr()
    assert "gnp/dynamic@mut" in captured.out
