"""The durable learned-state layer: DeltaJournal + DurableIndexStore.

The contract under test is the serve tentpole's: learning journalled at
batch boundaries survives any crash — kill -9 mid-append leaves a torn
tail the next open heals; a crash *between* the two compaction steps
(snapshot written, journal not yet reset) must not double-apply the
additive exploration counters; and a replayed index is bit-identical
(pickled ``export_state``) to one that never restarted.
"""

from __future__ import annotations

import errno
import os
import pickle
import struct

import pytest

from repro import faults
from repro.core import ReverseKRanksEngine
from repro.core.hub_index import HubIndex, HubIndexDelta
from repro.errors import FailpointError, JournalCorruptionError
from repro.serve.journal import (
    JOURNAL_MAGIC,
    DeltaJournal,
    DurableIndexStore,
)

from conftest import sample_queries


def make_delta(seed: int = 0) -> HubIndexDelta:
    """A small distinctive delta (ranks + additive explorations)."""
    return HubIndexDelta(
        ranks={(seed, seed + 1): seed + 3, (seed + 1, seed + 2): 1},
        explorations={seed: 2, seed + 5: 1},
    )


def deltas_equal(a: HubIndexDelta, b: HubIndexDelta) -> bool:
    return a.ranks == b.ranks and a.explorations == b.explorations


def learned_engine(graph, batches=3):
    """An engine whose index has learned through a few indexed batches."""
    engine = ReverseKRanksEngine(graph)
    engine.build_index(num_hubs=3, capacity=16)
    for start in range(batches):
        queries = sample_queries(graph, 4)
        engine.query_many(queries, 3 + start, algorithm="indexed")
    return engine


# ----------------------------------------------------------------------
# DeltaJournal basics
# ----------------------------------------------------------------------
class TestDeltaJournal:
    def test_append_reopen_round_trip(self, tmp_path):
        path = tmp_path / "journal.bin"
        with DeltaJournal(path) as journal:
            journal.append(1, make_delta(0))
            journal.append(2, make_delta(1))
            assert journal.last_seq == 2
            assert journal.num_records == 2
        with DeltaJournal(path) as journal:
            entries = journal.entries()
            assert [seq for seq, _ in entries] == [1, 2]
            assert deltas_equal(entries[0][1], make_delta(0))
            assert deltas_equal(entries[1][1], make_delta(1))

    def test_sequences_must_increase(self, tmp_path):
        with DeltaJournal(tmp_path / "j.bin") as journal:
            journal.append(5, make_delta())
            with pytest.raises(ValueError, match="must increase"):
                journal.append(5, make_delta())
            with pytest.raises(ValueError, match="must increase"):
                journal.append(4, make_delta())

    def test_empty_journal_has_magic_only(self, tmp_path):
        path = tmp_path / "j.bin"
        with DeltaJournal(path):
            pass
        assert path.read_bytes() == JOURNAL_MAGIC

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "j.bin"
        path.write_bytes(b"NOT-A-JOURNAL-AT-ALL" * 3)
        with pytest.raises(JournalCorruptionError, match="bad magic"):
            DeltaJournal(path)

    # -- torn tails (the kill -9 cases) --------------------------------
    @pytest.mark.parametrize("cut", ["header", "payload"])
    def test_torn_tail_is_healed(self, tmp_path, cut):
        path = tmp_path / "j.bin"
        with DeltaJournal(path) as journal:
            journal.append(1, make_delta(0))
            journal.append(2, make_delta(1))
        data = path.read_bytes()
        # Re-measure record 2's frame to cut inside it.
        with DeltaJournal(path) as journal:
            pass
        frame = struct.Struct("<II")
        offset = len(JOURNAL_MAGIC)
        length, _ = frame.unpack_from(data, offset)
        second_start = offset + frame.size + length
        cut_at = second_start + (2 if cut == "header" else frame.size + 3)
        path.write_bytes(data[:cut_at])

        with DeltaJournal(path) as journal:
            assert journal.num_records == 1
            assert journal.last_seq == 1
            # The torn bytes are physically gone and appends continue.
            journal.append(2, make_delta(7))
        with DeltaJournal(path) as journal:
            assert [seq for seq, _ in journal.entries()] == [1, 2]
            assert deltas_equal(journal.entries()[1][1], make_delta(7))

    def test_corrupt_final_record_is_dropped(self, tmp_path):
        path = tmp_path / "j.bin"
        with DeltaJournal(path) as journal:
            journal.append(1, make_delta(0))
            journal.append(2, make_delta(1))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        with DeltaJournal(path) as journal:
            assert [seq for seq, _ in journal.entries()] == [1]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.bin"
        with DeltaJournal(path) as journal:
            journal.append(1, make_delta(0))
            journal.append(2, make_delta(1))
        data = bytearray(path.read_bytes())
        # Flip a byte inside record 1's payload: its CRC fails with
        # record 2 still following — not a torn tail, not skippable.
        data[len(JOURNAL_MAGIC) + struct.calcsize("<II") + 4] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptionError, match="mid-file"):
            DeltaJournal(path)

    def test_absurd_length_field_raises(self, tmp_path):
        path = tmp_path / "j.bin"
        with DeltaJournal(path) as journal:
            journal.append(1, make_delta(0))
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", 1 << 31, 0))
            handle.write(b"x" * 64)
        with pytest.raises(JournalCorruptionError, match="claims"):
            DeltaJournal(path)

    # -- reset ---------------------------------------------------------
    def test_reset_preserves_sequence_and_leaves_no_residue(self, tmp_path):
        path = tmp_path / "j.bin"
        with DeltaJournal(path) as journal:
            journal.append(1, make_delta(0))
            journal.append(2, make_delta(1))
            journal.reset()
            assert journal.num_records == 0
            assert journal.last_seq == 2  # sequence survives the reset
            with pytest.raises(ValueError):
                journal.append(2, make_delta())
            journal.append(3, make_delta(2))
        leftovers = [
            name for name in os.listdir(tmp_path) if name != "j.bin"
        ]
        assert leftovers == []
        with DeltaJournal(path) as journal:
            assert [seq for seq, _ in journal.entries()] == [3]


# ----------------------------------------------------------------------
# DurableIndexStore
# ----------------------------------------------------------------------
class TestDurableIndexStore:
    def test_first_boot_returns_none(self, tmp_path, random_gnp):
        store = DurableIndexStore(tmp_path / "state")
        assert store.load(random_gnp) is None
        store.close()

    def test_install_then_load_round_trips(self, tmp_path, random_gnp):
        engine = learned_engine(random_gnp)
        with DurableIndexStore(tmp_path / "state") as store:
            store.install(engine.index)
            assert store.compactions == 0
        with DurableIndexStore(tmp_path / "state") as store:
            loaded = store.load(random_gnp)
        assert pickle.dumps(loaded.export_state()) == pickle.dumps(
            engine.index.export_state()
        )

    def test_replay_equals_never_restarted_engine(self, tmp_path, random_gnp):
        """The headline durability property, crash-simulated.

        The reference engine serves batches without interruption.  The
        durable one installs a base snapshot, journals every batch's
        delta, and is then abandoned mid-life (no close, no final
        compaction — exactly what kill -9 leaves).  A fresh store over
        the same directory must rebuild the identical index.
        """
        reference = ReverseKRanksEngine(random_gnp)
        reference.build_index(num_hubs=3, capacity=16)

        durable = ReverseKRanksEngine(random_gnp)
        durable.build_index(num_hubs=3, capacity=16)
        store = DurableIndexStore(tmp_path / "state")
        store.install(durable.index)

        for start in range(3):
            queries = sample_queries(random_gnp, 4)
            reference.query_many(queries, 3 + start, algorithm="indexed")
            durable.index.start_learning_log()
            durable.query_many(queries, 3 + start, algorithm="indexed")
            delta = durable.index.pop_learning_log()
            store.record(delta)
        # Crash: the store object is dropped without close/compact.
        del store

        replayed = DurableIndexStore(tmp_path / "state").load(random_gnp)
        assert pickle.dumps(replayed.export_state()) == pickle.dumps(
            reference.index.export_state()
        )

    def test_compaction_folds_and_resets(self, tmp_path, random_gnp):
        engine = learned_engine(random_gnp)
        with DurableIndexStore(tmp_path / "state", compact_bytes=1) as store:
            store.install(engine.index)
            store.record(make_delta(30))
            engine.index.merge_delta(make_delta(30))
            # compact_bytes=1: any journal content triggers compaction.
            assert store.maybe_compact(engine.index)
            assert store.compactions == 1
            assert store.journal.num_records == 0
            assert store.last_seq == 1
        # No temp residue from the snapshot or journal swaps.
        leftovers = [
            name
            for name in os.listdir(tmp_path / "state")
            if name not in ("index.snapshot", "journal.bin")
        ]
        assert leftovers == []
        with DurableIndexStore(tmp_path / "state") as store:
            loaded = store.load(random_gnp)
        assert pickle.dumps(loaded.export_state()) == pickle.dumps(
            engine.index.export_state()
        )

    def test_crash_between_compaction_steps_is_idempotent(
        self, tmp_path, random_gnp
    ):
        """Snapshot written, journal NOT reset — replay must skip folds.

        Explorations are additive (``+=``), so this is the scenario that
        would silently double-count without the sequence fence stored
        inside the snapshot.
        """
        engine = learned_engine(random_gnp)
        store = DurableIndexStore(tmp_path / "state")
        store.install(engine.index)
        delta = make_delta(40)
        engine.index.merge_delta(delta)
        store.record(delta)
        # First compaction half: the snapshot now folds seq 1 in...
        engine.index.save(
            store.snapshot_path, meta={DurableIndexStore.META_SEQ: 1}
        )
        # ...and the crash happens before journal.reset(): seq 1 is still
        # sitting in the journal on disk.
        del store

        replayed = DurableIndexStore(tmp_path / "state").load(random_gnp)
        assert pickle.dumps(replayed.export_state()) == pickle.dumps(
            engine.index.export_state()
        )

    def test_sequence_continues_after_replay(self, tmp_path, random_gnp):
        engine = learned_engine(random_gnp)
        store = DurableIndexStore(tmp_path / "state")
        store.install(engine.index)
        assert store.record(make_delta(1)) == 1
        assert store.record(make_delta(2)) == 2
        del store
        store = DurableIndexStore(tmp_path / "state")
        store.load(random_gnp)
        assert store.record(make_delta(3)) == 3

    def test_journal_without_snapshot_is_an_error(self, tmp_path, random_gnp):
        state = tmp_path / "state"
        store = DurableIndexStore(state)
        engine = learned_engine(random_gnp)
        store.install(engine.index)
        store.record(make_delta(9))
        del store
        os.unlink(state / "index.snapshot")
        with pytest.raises(JournalCorruptionError, match="no base snapshot"):
            DurableIndexStore(state).load(random_gnp)

    def test_empty_deltas_replay_fine(self, tmp_path, random_gnp):
        engine = learned_engine(random_gnp)
        with DurableIndexStore(tmp_path / "state") as store:
            store.install(engine.index)
            store.record(HubIndexDelta())
        replayed = DurableIndexStore(tmp_path / "state").load(random_gnp)
        assert pickle.dumps(replayed.export_state()) == pickle.dumps(
            engine.index.export_state()
        )

    def test_snapshot_meta_round_trips_through_save(
        self, tmp_path, random_gnp
    ):
        engine = learned_engine(random_gnp)
        path = tmp_path / "snap.bin"
        engine.index.save(path, meta={"journal_seq": 42, "note": "hello"})
        index, meta = HubIndex.load_with_meta(path, random_gnp)
        assert meta == {"journal_seq": 42, "note": "hello"}
        # Plain load still works and ignores the meta.
        again = HubIndex.load(path, random_gnp)
        assert pickle.dumps(again.export_state()) == pickle.dumps(
            index.export_state()
        )

    def test_legacy_snapshot_without_meta_loads(self, tmp_path, random_gnp):
        """A pre-meta snapshot (no ``meta`` key) must still load."""
        engine = learned_engine(random_gnp)
        path = tmp_path / "snap.bin"
        engine.index.save(path)
        index, meta = HubIndex.load_with_meta(path, random_gnp)
        assert meta == {}
        assert index.num_known_ranks == engine.index.num_known_ranks


# ----------------------------------------------------------------------
# Injected I/O faults: durability must fail loudly and roll back cleanly
# ----------------------------------------------------------------------
class _ShortDisk:
    """File-handle proxy that runs out of space mid-write (ENOSPC)."""

    def __init__(self, handle, budget_bytes):
        self._handle = handle
        self._budget = budget_bytes

    def write(self, data):
        if len(data) > self._budget:
            self._handle.write(data[: self._budget])
            self._budget = 0
            raise OSError(errno.ENOSPC, "No space left on device")
        self._budget -= len(data)
        return self._handle.write(data)

    def __getattr__(self, name):
        return getattr(self._handle, name)


class TestJournalFaults:
    @pytest.fixture(autouse=True)
    def _disarm(self):
        yield
        faults.clear()

    @pytest.mark.parametrize("point", ["journal.write", "journal.fsync"])
    def test_injected_fault_fails_loudly_and_rolls_back(self, tmp_path, point):
        """A failed append must look like it never happened.

        Both fault sites — before the bytes hit the file and before the
        batch-boundary fsync — raise out of ``append`` (the server turns
        that into failed responses, never silent un-durable successes),
        and the file plus in-memory state roll back to the pre-append
        record boundary.
        """
        path = tmp_path / "journal.bin"
        with DeltaJournal(path) as journal:
            journal.append(1, make_delta(0))
            size_before = journal.size_bytes
            faults.configure(f"{point}=error*1")
            with pytest.raises(FailpointError):
                journal.append(2, make_delta(1))
            assert journal.size_bytes == size_before
            assert journal.last_seq == 1
            assert journal.num_records == 1
            # The failed sequence was never durable, so reusing it is legal.
            journal.append(2, make_delta(2))
        with DeltaJournal(path) as journal:
            entries = journal.entries()
        assert [seq for seq, _ in entries] == [1, 2]
        assert deltas_equal(entries[1][1], make_delta(2))

    def test_partial_write_enospc_truncates_back(self, tmp_path):
        """A *torn* write (disk filled mid-record) leaves no residue.

        The proxy lets a few bytes of the frame land before raising
        ENOSPC — exactly what a real full disk does — and the append's
        rollback must truncate those bytes so the next append starts at
        a record boundary and reopen sees only whole records.
        """
        path = tmp_path / "journal.bin"
        with DeltaJournal(path) as journal:
            journal.append(1, make_delta(0))
            size_before = journal.size_bytes
            real_handle = journal._handle
            journal._handle = _ShortDisk(real_handle, budget_bytes=3)
            with pytest.raises(OSError):
                journal.append(2, make_delta(1))
            journal._handle = real_handle
            assert journal.size_bytes == size_before
            journal.append(2, make_delta(2))
        with DeltaJournal(path) as journal:
            assert [seq for seq, _ in journal.entries()] == [1, 2]

    def test_replay_after_fault_is_bit_identical(self, tmp_path, random_gnp):
        """The headline property holds across an injected fsync failure.

        Batch two's delta hits a one-shot fsync fault and never becomes
        durable; batches one and three land.  A reference index that
        folds exactly the durable deltas must be pickle-identical to the
        replayed snapshot + journal — the faulted record contributes
        nothing, not a half-applied something.
        """
        engine = learned_engine(random_gnp)
        store = DurableIndexStore(tmp_path / "state")
        store.install(engine.index)
        # The reference: the snapshot state plus every *durable* delta.
        reference = DurableIndexStore(tmp_path / "state").load(random_gnp)

        faults.configure("journal.fsync=error#2*1")  # arm for batch two
        dropped = 0
        for batch in (1, 2, 3):
            delta = make_delta(10 * batch)
            try:
                store.record(delta)
            except FailpointError:
                dropped += 1
                continue
            reference.merge_delta(delta)
        assert dropped == 1
        assert store.last_seq == 2  # two durable batches, seq 2 reused
        del store

        replayed = DurableIndexStore(tmp_path / "state").load(random_gnp)
        assert pickle.dumps(replayed.export_state()) == pickle.dumps(
            reference.export_state()
        )
