"""The flat-array shard result codec: round trips, edge cases, validation.

Covers the wire-format contract (entry order, rank values, node identity
and QueryStats all survive the array round trip), the degenerate shapes
(empty result sets, k exceeding the candidate count, empty shards), the
header-first validation that makes truncated buffers fail loudly before
any batch position is trusted, the ``stats`` knob's three modes at engine
level — including ``stats="none"`` marking ``last_batch_stats``
explicitly unavailable — and the mid-batch worker-crash path carrying
shard position info.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from array import array
from dataclasses import replace

import pytest

from repro.core import ReverseKRanksEngine
from repro.core.types import QueryStats, STATS_UNAVAILABLE
from repro.errors import ParallelExecutionError, WorkerCrashError
from repro.graph import CompactGraph, Graph
from repro.parallel import (
    ShardOutput,
    ShardPlanner,
    ShardResultBlock,
    ShardResultCodec,
    WorkerPool,
    merge_shard_outputs,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
FAST_CONTEXT = "fork" if HAVE_FORK else None


@pytest.fixture(scope="module")
def islands_graph():
    """Two components: a 4-node cluster and a 3-node chain (plus a loner)."""
    graph = Graph(name="islands")
    for a, b, w in [(0, 1, 1.0), (1, 2, 1.5), (2, 3, 1.0), (0, 2, 2.0)]:
        graph.add_edge(a, b, w)
    graph.add_edge(10, 11, 1.0)
    graph.add_edge(11, 12, 2.0)
    graph.add_node(20)  # unreachable from everywhere
    return graph


def _batch(graph, queries, k, algorithm="dynamic"):
    engine = ReverseKRanksEngine(graph)
    return engine.compact_graph(), engine.query_many(queries, k, algorithm=algorithm)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["per-query", "aggregate", "none"])
    def test_entries_round_trip_bit_identical(self, random_gnp, mode):
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        csr, results = _batch(random_gnp, queries, 4)
        block = ShardResultCodec.encode(results, csr, stats_mode=mode)
        decoded = ShardResultCodec.decode(block, csr, queries)
        assert [r.query for r in decoded] == queries
        assert [r.k for r in decoded] == [r.k for r in results]
        assert [r.algorithm for r in decoded] == [r.algorithm for r in results]
        # Bit-identical entries: node identity, rank values, entry order.
        assert [
            [(e.node, e.rank) for e in r.entries] for r in decoded
        ] == [[(e.node, e.rank) for e in r.entries] for r in results]

    def test_per_query_stats_round_trip_exactly(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        csr, results = _batch(random_gnp, queries, 4)
        block = ShardResultCodec.encode(results, csr, stats_mode="per-query")
        decoded = ShardResultCodec.decode(block, csr, queries)
        assert [r.stats.as_dict() for r in decoded] == [
            r.stats.as_dict() for r in results
        ]

    def test_aggregate_mode_ships_one_merged_stats_object(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        csr, results = _batch(random_gnp, queries, 4)
        block = ShardResultCodec.encode(results, csr, stats_mode="aggregate")
        expected = QueryStats()
        for result in results:
            expected.merge(result.stats)
        assert block.counters is None and block.elapsed is None
        assert block.shard_stats.as_dict() == expected.as_dict()
        decoded = ShardResultCodec.decode(block, csr, queries)
        # Rebuilt results deliberately carry fresh (empty) stats.
        assert all(r.stats.rank_refinements == 0 for r in decoded)

    def test_stats_payload_shrinks_with_the_knob(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:8]
        csr, results = _batch(random_gnp, queries, 4)
        per_query = ShardResultCodec.encode(results, csr, "per-query")
        aggregate = ShardResultCodec.encode(results, csr, "aggregate")
        none = ShardResultCodec.encode(results, csr, "none")
        assert per_query.payload_bytes() > aggregate.payload_bytes()
        assert aggregate.payload_bytes() > none.payload_bytes()

    def test_invalid_stats_mode_rejected(self, random_gnp):
        csr, results = _batch(random_gnp, sorted(random_gnp.nodes(), key=repr)[:2], 2)
        with pytest.raises(ValueError):
            ShardResultCodec.encode(results, csr, stats_mode="bogus")


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_empty_result_sets_round_trip(self, islands_graph):
        # Node 20 reaches nothing and nothing reaches it: entries == [].
        csr, results = _batch(islands_graph, [20], 2)
        assert results[0].entries == []
        block = ShardResultCodec.encode(results, csr, stats_mode="per-query")
        decoded = ShardResultCodec.decode(block, csr, [20])
        assert decoded[0].entries == []
        assert decoded[0].k == 2
        assert decoded[0].stats.as_dict() == results[0].stats.as_dict()

    def test_k_exceeding_candidate_count_round_trips_short_results(
        self, islands_graph
    ):
        # k=6 but query 10's component holds only 2 other nodes.
        csr, results = _batch(islands_graph, [10, 11], 6)
        assert all(0 < len(r.entries) < 6 for r in results)
        for mode in ("per-query", "aggregate", "none"):
            block = ShardResultCodec.encode(results, csr, stats_mode=mode)
            decoded = ShardResultCodec.decode(block, csr, [10, 11])
            assert [
                [(e.node, e.rank) for e in r.entries] for r in decoded
            ] == [[(e.node, e.rank) for e in r.entries] for r in results]
            assert all(r.k == 6 for r in decoded)
            assert all(not r.is_full() for r in decoded)

    def test_empty_shard_encodes_and_decodes(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        block = ShardResultCodec.encode([], csr)
        block.validate()
        assert ShardResultCodec.decode(block, csr, []) == []


# ----------------------------------------------------------------------
# Header validation: truncated/corrupted buffers fail loudly
# ----------------------------------------------------------------------
class TestBlockValidation:
    @pytest.fixture()
    def block(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:4]
        csr, results = _batch(random_gnp, queries, 3)
        self.csr = csr
        self.queries = queries
        return ShardResultCodec.encode(results, csr, stats_mode="per-query")

    def test_valid_block_passes(self, block):
        block.validate()

    def test_truncated_ranks_buffer_fails(self, block):
        broken = replace(block, ranks=block.ranks[:-1])
        with pytest.raises(ParallelExecutionError, match="truncated"):
            broken.validate()

    def test_truncated_offsets_table_fails(self, block):
        broken = replace(block, offsets=block.offsets[:-1])
        with pytest.raises(ParallelExecutionError, match="offsets"):
            broken.validate()

    def test_non_monotonic_offsets_fail(self, block):
        twisted = array("q", block.offsets)
        twisted[1], twisted[2] = twisted[2] + 1, twisted[1]
        broken = replace(block, offsets=twisted)
        with pytest.raises(ParallelExecutionError):
            broken.validate()

    def test_lying_query_count_fails(self, block):
        broken = replace(block, num_queries=block.num_queries + 1)
        with pytest.raises(ParallelExecutionError, match="offsets"):
            broken.validate()

    def test_truncated_counters_fail(self, block):
        broken = replace(block, counters=block.counters[:-3])
        with pytest.raises(ParallelExecutionError, match="counters"):
            broken.validate()

    def test_missing_aggregate_stats_fail(self, block):
        broken = replace(block, stats_mode="aggregate", counters=None, elapsed=None)
        with pytest.raises(ParallelExecutionError, match="aggregate"):
            broken.validate()

    def test_out_of_range_node_index_fails_decode(self, block):
        poisoned = array("q", block.nodes)
        poisoned[0] = self.csr.num_nodes + 7
        broken = replace(block, nodes=poisoned)
        with pytest.raises(ParallelExecutionError, match="node index"):
            ShardResultCodec.decode(broken, self.csr, self.queries)
        poisoned[0] = -1  # negative aliasing must not slip through either
        with pytest.raises(ParallelExecutionError, match="node index"):
            ShardResultCodec.decode(broken, self.csr, self.queries)


# ----------------------------------------------------------------------
# Merge: header validated before positions are trusted (regression)
# ----------------------------------------------------------------------
class TestMergeValidatesHeaderFirst:
    def _encoded_output(self, graph, queries, positions, **overrides):
        csr, results = _batch(graph, queries, 3)
        block = ShardResultCodec.encode(results, csr, stats_mode="per-query")
        if overrides:
            block = replace(block, **overrides)
        return csr, ShardOutput(
            shard_index=0,
            positions=positions,
            results=block,
            queries=tuple(queries),
        )

    def test_truncated_block_fails_before_position_slotting(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:3]
        csr, output = self._encoded_output(random_gnp, queries, (0, 1, 2))
        truncated = replace(output.results, ranks=output.results.ranks[:-1])
        # Give the shard deliberately poisonous positions: if the merger
        # trusted them before validating the block, it would raise the
        # out-of-range position error instead of the truncation error.
        poisoned = ShardOutput(
            shard_index=0,
            positions=(0, 1, 99),
            results=truncated,
            queries=output.queries,
        )
        with pytest.raises(ParallelExecutionError, match="truncated"):
            merge_shard_outputs([poisoned], batch_size=3, csr=csr)

    def test_position_count_mismatch_fails_before_decode(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:3]
        csr, output = self._encoded_output(random_gnp, queries, (0, 1))
        with pytest.raises(ParallelExecutionError, match="positions"):
            merge_shard_outputs([output], batch_size=3, csr=csr)

    def test_encoded_shard_without_csr_fails(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:2]
        _, output = self._encoded_output(random_gnp, queries, (0, 1))
        with pytest.raises(ParallelExecutionError, match="compilation"):
            merge_shard_outputs([output], batch_size=2)

    def test_well_formed_encoded_shards_merge_in_order(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:4]
        engine = ReverseKRanksEngine(random_gnp)
        csr = engine.compact_graph()
        results = engine.query_many(queries, 3)
        even = ShardResultCodec.encode([results[0], results[2]], csr)
        odd = ShardResultCodec.encode([results[1], results[3]], csr)
        merged = merge_shard_outputs(
            [
                ShardOutput(1, (1, 3), odd, queries=(queries[1], queries[3])),
                ShardOutput(0, (0, 2), even, queries=(queries[0], queries[2])),
            ],
            batch_size=4,
            csr=csr,
        )
        assert [r.query for r in merged.results] == queries
        assert merged.ipc_bytes == even.payload_bytes() + odd.payload_bytes()
        assert merged.stats.rank_refinements == sum(
            r.stats.rank_refinements for r in results
        )


# ----------------------------------------------------------------------
# Engine-level stats knob
# ----------------------------------------------------------------------
class TestEngineStatsKnob:
    def test_invalid_stats_value_rejected(self, random_gnp):
        engine = ReverseKRanksEngine(random_gnp)
        with pytest.raises(ValueError):
            engine.query_many([0, 1], 2, stats="sometimes")

    def test_sequential_stats_none_marks_unavailable_not_zeroed(self, random_gnp):
        engine = ReverseKRanksEngine(random_gnp)
        queries = sorted(random_gnp.nodes(), key=repr)[:4]
        engine.query_many(queries, 3, stats="none")
        assert engine.last_batch_stats is STATS_UNAVAILABLE
        assert not engine.last_batch_stats  # falsy, but not a zeroed object
        assert not isinstance(engine.last_batch_stats, QueryStats)
        # A subsequent counted batch replaces the marker.
        engine.query_many(queries, 3)
        assert isinstance(engine.last_batch_stats, QueryStats)
        assert engine.last_batch_stats.rank_refinements > 0

    @needs_fork
    def test_parallel_stats_none_marks_unavailable(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        with ReverseKRanksEngine(random_gnp) as engine:
            results = engine.query_many(
                queries, 3, workers=2, worker_context=FAST_CONTEXT, stats="none"
            )
            assert engine.last_batch_stats is STATS_UNAVAILABLE
            assert engine.last_batch_ipc_bytes > 0
            sequential = engine.query_many(queries, 3)
        assert [r.as_pairs() for r in results] == [
            r.as_pairs() for r in sequential
        ]

    @needs_fork
    def test_parallel_aggregate_matches_per_query_totals(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:8]
        with ReverseKRanksEngine(random_gnp) as engine:
            engine.query_many(
                queries, 3, workers=2, worker_context=FAST_CONTEXT,
                stats="per-query",
            )
            per_query_stats = engine.last_batch_stats
            per_query_bytes = engine.last_batch_ipc_bytes
            engine.query_many(
                queries, 3, workers=2, worker_context=FAST_CONTEXT,
                stats="aggregate",
            )
            aggregate_stats = engine.last_batch_stats
            aggregate_bytes = engine.last_batch_ipc_bytes
        per_query_view = per_query_stats.as_dict()
        aggregate_view = aggregate_stats.as_dict()
        per_query_view.pop("elapsed_seconds")
        aggregate_view.pop("elapsed_seconds")
        assert per_query_view == aggregate_view
        assert aggregate_bytes < per_query_bytes

    @needs_fork
    def test_parallel_per_query_results_carry_exact_stats(self, random_gnp):
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        with ReverseKRanksEngine(random_gnp) as engine:
            sequential = engine.query_many(queries, 3)
            parallel = engine.query_many(
                queries, 3, workers=2, worker_context=FAST_CONTEXT
            )
        for expected, actual in zip(sequential, parallel):
            expected_view = expected.stats.as_dict()
            actual_view = actual.stats.as_dict()
            expected_view.pop("elapsed_seconds")
            actual_view.pop("elapsed_seconds")
            assert expected_view == actual_view


# ----------------------------------------------------------------------
# Worker crash mid-batch carries shard position info
# ----------------------------------------------------------------------
@needs_fork
class TestCrashPositions:
    def test_worker_crash_error_names_lost_batch_positions(self, random_gnp):
        csr = CompactGraph.from_graph(random_gnp)
        queries = sorted(random_gnp.nodes(), key=repr)[:6]
        # crash_retries=0: fail-fast, so the crash surfaces as the typed
        # error under test instead of being healed in place.
        with WorkerPool(
            csr, workers=2, context=FAST_CONTEXT, crash_retries=0
        ) as pool:
            victim = pool.worker_pids[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.time() + 5.0
            while pool._processes[0].is_alive() and time.time() < deadline:
                time.sleep(0.05)
            plan = ShardPlanner(2).plan(queries)
            with pytest.raises(WorkerCrashError) as excinfo:
                pool.run_batch(plan, 3, "dynamic")
        # Round-robin over 2 shards: shard 0 (worker 0) held the even
        # positions; the crash must name exactly those.
        assert excinfo.value.worker_id == 0
        assert excinfo.value.positions == (0, 2, 4)
        assert "0, 2, 4" in str(excinfo.value)

    def test_startup_crash_has_no_positions(self):
        error = WorkerCrashError(1, -9, detail="during startup")
        assert error.positions is None
