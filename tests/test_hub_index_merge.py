"""HubIndex snapshot/delta/merge semantics (the parallel learning protocol)."""

from __future__ import annotations

import pytest

from repro.core import AlgorithmKind, ReverseKRanksEngine
from repro.core.hub_index import HubIndex, HubIndexDelta
from repro.core.validation import results_equivalent
from repro.errors import IndexParameterError
from repro.graph import CompactGraph


def _build_index(graph, capacity=8, num_hubs=3):
    return HubIndex.build(graph, num_hubs=num_hubs, capacity=capacity)


# ----------------------------------------------------------------------
# Snapshot export / restore
# ----------------------------------------------------------------------
class TestExportState:
    def test_round_trip_preserves_knowledge(self, random_gnp):
        index = _build_index(random_gnp)
        csr = CompactGraph.from_graph(random_gnp)
        restored = HubIndex.from_state(csr, index.export_state())
        assert restored.capacity == index.capacity
        assert restored.hubs == index.hubs
        assert restored.num_known_ranks == index.num_known_ranks
        for hub in index.hubs:
            assert restored.explored_count(hub) == index.explored_count(hub)
            assert restored.check_value(hub) == index.check_value(hub)
        for node in random_gnp.nodes():
            assert restored.known_reverse_ranks(node) == index.known_reverse_ranks(
                node
            )

    def test_snapshot_is_isolated_from_later_learning(self, random_gnp):
        index = _build_index(random_gnp)
        state = index.export_state()
        known_in_snapshot = sum(len(targets) for targets in state["known"].values())
        index.record_rank("new-source", "new-target", 1)
        assert (
            sum(len(targets) for targets in state["known"].values())
            == known_in_snapshot
        )

    def test_stale_index_refuses_to_export(self, random_gnp):
        graph = random_gnp.copy()
        index = _build_index(graph)
        graph.add_edge(0, 9, 0.25)
        with pytest.raises(IndexParameterError):
            index.export_state()

    def test_restored_index_keeps_master_version_pin(self, random_gnp):
        index = _build_index(random_gnp)
        csr = CompactGraph.from_graph(random_gnp)
        restored = HubIndex.from_state(csr, index.export_state())
        restored.ensure_fresh()  # the compilation reports the same version
        delta_log = restored.pop_learning_log()
        assert delta_log.graph_version == random_gnp.version


# ----------------------------------------------------------------------
# Learning log
# ----------------------------------------------------------------------
class TestLearningLog:
    def test_captures_only_logged_window(self, random_gnp):
        index = _build_index(random_gnp)
        index.record_rank("before", "x", 2)
        index.start_learning_log()
        index.record_rank("during", "y", 3)
        index.record_exploration("during", 5)
        delta = index.pop_learning_log()
        index.record_rank("after", "z", 4)
        assert dict(delta.ranks) == {("during", "y"): 3}
        assert delta.explorations == {"during": 5}
        assert bool(delta)

    def test_pop_without_start_returns_mergeable_empty_delta(self, random_gnp):
        index = _build_index(random_gnp)
        delta = index.pop_learning_log()
        assert not delta and len(delta) == 0
        assert index.merge_delta(delta) == 0  # empty delta is a no-op


# ----------------------------------------------------------------------
# Merge semantics
# ----------------------------------------------------------------------
class TestMergeDelta:
    def test_empty_delta_is_a_no_op(self, random_gnp):
        index = _build_index(random_gnp)
        before = index.num_known_ranks
        assert index.merge_delta(HubIndexDelta(graph_version=random_gnp.version)) == 0
        assert index.num_known_ranks == before

    def test_merge_applies_through_all_dictionaries(self, random_gnp):
        index = _build_index(random_gnp)
        delta = HubIndexDelta(graph_version=random_gnp.version)
        delta.ranks[("s", "t")] = 2
        delta.ranks[("s", "u")] = 99
        delta.explorations["s"] = 4
        assert index.merge_delta(delta) == 2
        assert index.known_rank("s", "t") == 2
        # Reverse Rank Dictionary only takes ranks <= capacity.
        assert ("s", 2) in index.known_reverse_ranks("t")
        assert index.known_reverse_ranks("u") == []
        # Check Dictionary tracks the max recorded rank.
        assert index.check_value("s") == 99
        assert index.explored_count("s") == 4

    def test_last_writer_wins_on_identical_keys(self, random_gnp):
        index = _build_index(random_gnp)
        first = HubIndexDelta(graph_version=random_gnp.version)
        first.ranks[("s", "t")] = 3
        second = HubIndexDelta(graph_version=random_gnp.version)
        second.ranks[("s", "t")] = 5
        index.merge_delta(first)
        index.merge_delta(second)
        assert index.known_rank("s", "t") == 5

    def test_stale_version_delta_is_rejected(self, random_gnp):
        index = _build_index(random_gnp)
        stale = HubIndexDelta(graph_version=(random_gnp.version or 0) + 17)
        stale.ranks[("s", "t")] = 1
        with pytest.raises(IndexParameterError):
            index.merge_delta(stale)

    def test_merge_into_stale_index_is_rejected(self, random_gnp):
        graph = random_gnp.copy()
        index = _build_index(graph)
        delta = HubIndexDelta(graph_version=graph.version)
        delta.ranks[("s", "t")] = 1
        graph.add_edge(0, 9, 0.25)
        with pytest.raises(IndexParameterError):
            index.merge_delta(delta)

    def test_non_delta_payloads_are_rejected(self, random_gnp):
        index = _build_index(random_gnp)
        with pytest.raises(IndexParameterError):
            index.merge_delta({"ranks": {}})


# ----------------------------------------------------------------------
# Parity: merged-after-parallel vs sequentially-warmed (in-process twin of
# the pool test in test_parallel.py — no worker processes involved)
# ----------------------------------------------------------------------
class TestMergedIndexParity:
    def test_sharded_learning_merged_back_equals_sequential_warming(
        self, random_gnp
    ):
        queries = sorted(random_gnp.nodes(), key=repr)[:8]
        probes = sorted(random_gnp.nodes(), key=repr)[8:14]
        k = 4

        # Sequentially warmed reference.
        engine_seq = ReverseKRanksEngine(random_gnp)
        engine_seq.build_index(num_hubs=3, capacity=8)
        engine_seq.query_many(queries, k, algorithm=AlgorithmKind.INDEXED)

        # Simulated two-shard parallel run: worker indexes restored from a
        # snapshot, learning logged per shard, deltas merged into master.
        engine_par = ReverseKRanksEngine(random_gnp)
        master = engine_par.build_index(num_hubs=3, capacity=8)
        state = master.export_state()
        csr = engine_par.compact_graph()
        deltas = []
        for shard in (queries[0::2], queries[1::2]):
            worker_engine = ReverseKRanksEngine(
                csr, index=HubIndex.from_state(csr, state)
            )
            worker_engine.index.start_learning_log()
            worker_engine.query_many(
                shard, k, algorithm=AlgorithmKind.INDEXED, use_csr=False
            )
            deltas.append(worker_engine.index.pop_learning_log())
        merged_entries = sum(master.merge_delta(delta) for delta in deltas)
        assert merged_entries > 0

        for probe in probes:
            warmed = engine_seq.query(probe, k, algorithm=AlgorithmKind.INDEXED)
            merged = engine_par.query(probe, k, algorithm=AlgorithmKind.INDEXED)
            assert results_equivalent(warmed, merged)
            assert warmed.rank_values() == merged.rank_values()
