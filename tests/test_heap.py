"""Unit tests for the addressable heap underpinning every traversal."""

from __future__ import annotations

import random

import pytest

from repro.traversal.heap import AddressableHeap


def test_pop_orders_by_priority():
    heap = AddressableHeap()
    for item, priority in [("a", 3.0), ("b", 1.0), ("c", 2.0), ("d", 0.5)]:
        heap.push(item, priority)
    assert [heap.pop() for _ in range(len(heap))] == [
        ("d", 0.5),
        ("b", 1.0),
        ("c", 2.0),
        ("a", 3.0),
    ]


def test_ties_break_by_insertion_order():
    heap = AddressableHeap()
    heap.push("later", 1.0)
    heap.push("earlier", 1.0)
    assert heap.pop() == ("later", 1.0)
    assert heap.pop() == ("earlier", 1.0)


def test_duplicate_push_rejected():
    heap = AddressableHeap()
    heap.push("a", 1.0)
    with pytest.raises(ValueError):
        heap.push("a", 2.0)


def test_pop_and_peek_empty_raise():
    heap = AddressableHeap()
    with pytest.raises(IndexError):
        heap.pop()
    with pytest.raises(IndexError):
        heap.peek()


def test_decrease_key_reorders():
    heap = AddressableHeap()
    heap.push("a", 5.0)
    heap.push("b", 2.0)
    assert heap.decrease_key("a", 1.0) is True
    assert heap.pop() == ("a", 1.0)
    # Not-a-decrease is refused without modifying the heap.
    assert heap.decrease_key("b", 9.0) is False
    assert heap.priority("b") == 2.0


def test_push_or_decrease_and_membership():
    heap = AddressableHeap()
    assert heap.push_or_decrease("a", 4.0) is True
    assert "a" in heap
    assert heap.push_or_decrease("a", 6.0) is False
    assert heap.push_or_decrease("a", 3.0) is True
    assert heap.get_priority("a") == 3.0
    assert heap.get_priority("missing") is None


def test_remove_keeps_invariant():
    heap = AddressableHeap()
    for item in range(10):
        heap.push(item, float((item * 7) % 10))
    assert heap.remove(3) == float((3 * 7) % 10)
    assert 3 not in heap
    assert heap.check_invariant()
    drained = [heap.pop()[1] for _ in range(len(heap))]
    assert drained == sorted(drained)


def test_randomized_operations_match_reference():
    rng = random.Random(42)
    heap = AddressableHeap()
    reference = {}
    for step in range(600):
        action = rng.random()
        if action < 0.5:
            item = rng.randrange(60)
            priority = round(rng.uniform(0, 100), 3)
            if item in reference:
                if priority < reference[item]:
                    heap.decrease_key(item, priority)
                    reference[item] = priority
            else:
                heap.push(item, priority)
                reference[item] = priority
        elif reference:
            item, priority = heap.pop()
            assert priority == min(reference.values())
            assert reference.pop(item) == priority
        assert heap.check_invariant()
    while reference:
        item, priority = heap.pop()
        assert priority == min(reference.values())
        assert reference.pop(item) == priority
