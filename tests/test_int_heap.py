"""Unit + property tests for the dense int-keyed addressable heap.

Beyond basic heap behaviour, the property sweep drives :class:`IntHeap`
and :class:`AddressableHeap` with the *same* randomized operation stream —
deliberately tie-heavy priorities — and requires identical pop sequences.
That equivalence (insertion-order tie-breaking, counters preserved across
``decrease_key``) is what makes the CSR-specialised SDS-tree bit-identical
to the dict-backed framework.
"""

from __future__ import annotations

import random

import pytest

from repro.traversal.heap import AddressableHeap
from repro.traversal.int_heap import IntHeap


def test_pop_orders_by_priority():
    heap = IntHeap(8)
    for key, priority in [(0, 3.0), (1, 1.0), (2, 2.0), (3, 0.5)]:
        heap.push(key, priority)
    assert [heap.pop() for _ in range(len(heap))] == [
        (3, 0.5),
        (1, 1.0),
        (2, 2.0),
        (0, 3.0),
    ]


def test_ties_break_by_insertion_order():
    heap = IntHeap(4)
    heap.push(2, 1.0)
    heap.push(1, 1.0)
    assert heap.pop() == (2, 1.0)
    assert heap.pop() == (1, 1.0)


def test_decrease_key_preserves_insertion_counter():
    heap = IntHeap(4)
    heap.push(0, 5.0)
    heap.push(1, 2.0)
    # Key 0 decreased to tie key 1: it was inserted first, so it pops first.
    assert heap.decrease_key(0, 2.0) is True
    assert heap.pop() == (0, 2.0)
    assert heap.pop() == (1, 2.0)


def test_duplicate_push_rejected():
    heap = IntHeap(2)
    heap.push(0, 1.0)
    with pytest.raises(ValueError):
        heap.push(0, 2.0)


def test_pop_and_peek_empty_raise():
    heap = IntHeap(2)
    with pytest.raises(IndexError):
        heap.pop()
    with pytest.raises(IndexError):
        heap.peek()


def test_out_of_range_key_rejected():
    heap = IntHeap(2)
    with pytest.raises(IndexError):
        heap.push(2, 1.0)


def test_negative_keys_rejected_not_aliased():
    # A bare array index would alias key -1 to the last slot; every entry
    # point must reject negatives instead of corrupting the table.
    heap = IntHeap(4)
    heap.push(3, 1.0)
    with pytest.raises(IndexError):
        heap.push(-1, 2.0)
    with pytest.raises(IndexError):
        heap.push_or_decrease(-1, 0.5)
    with pytest.raises(IndexError):
        heap.decrease_key(-1, 0.5)
    with pytest.raises(IndexError):
        heap.get_priority(-1)
    assert heap.check_invariant()
    assert heap.pop() == (3, 1.0)


def test_decrease_key_refuses_non_decrease():
    heap = IntHeap(4)
    heap.push(0, 2.0)
    assert heap.decrease_key(0, 2.0) is False
    assert heap.decrease_key(0, 9.0) is False
    assert heap.get_priority(0) == 2.0
    with pytest.raises(KeyError):
        heap.decrease_key(1, 1.0)


def test_push_or_decrease_and_membership():
    heap = IntHeap(4)
    assert heap.push_or_decrease(0, 4.0) is True
    assert 0 in heap
    assert heap.push_or_decrease(0, 6.0) is False
    assert heap.push_or_decrease(0, 3.0) is True
    assert heap.get_priority(0) == 3.0
    assert heap.get_priority(1) is None
    assert 1 not in heap
    assert -1 not in heap and 99 not in heap


def test_clear_resets_only_touched_slots():
    heap = IntHeap(16)
    for key in (3, 7, 11):
        heap.push(key, float(key))
    heap.pop()
    heap.clear()
    assert len(heap) == 0 and not heap
    assert heap.check_invariant()
    heap.push(3, 1.0)
    assert heap.pop() == (3, 1.0)


def test_iter_lists_current_keys():
    heap = IntHeap(8)
    for key in (5, 1, 6):
        heap.push(key, float(key))
    assert sorted(heap) == [1, 5, 6]


def test_zero_capacity_heap_is_empty():
    heap = IntHeap(0)
    assert not heap and len(heap) == 0
    with pytest.raises(ValueError):
        IntHeap(-1)


# ----------------------------------------------------------------------
# Property sweep: lockstep with AddressableHeap on tie-heavy streams
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(20))
def test_randomized_lockstep_with_addressable_heap(seed):
    rng = random.Random(90_000 + seed)
    capacity = rng.choice([8, 24, 64])
    int_heap = IntHeap(capacity)
    ref_heap = AddressableHeap()
    live = set()
    for _ in range(400):
        action = rng.random()
        if action < 0.55:
            key = rng.randrange(capacity)
            # Coarse priorities force plenty of ties.
            priority = float(rng.randint(0, 6))
            if key in live:
                assert int_heap.decrease_key(key, priority) == (
                    ref_heap.decrease_key(key, priority)
                )
            else:
                int_heap.push(key, priority)
                ref_heap.push(key, priority)
                live.add(key)
        elif live:
            popped = int_heap.pop()
            assert popped == ref_heap.pop()
            live.discard(popped[0])
        assert int_heap.check_invariant()
        assert len(int_heap) == len(ref_heap)
    while ref_heap:
        assert int_heap.pop() == ref_heap.pop()
    assert not int_heap


@pytest.mark.parametrize("seed", range(10))
def test_randomized_push_or_decrease_matches_reference_dict(seed):
    rng = random.Random(31_000 + seed)
    heap = IntHeap(40)
    reference = {}
    for _ in range(500):
        if rng.random() < 0.6:
            key = rng.randrange(40)
            priority = round(rng.uniform(0, 50), 2)
            changed = heap.push_or_decrease(key, priority)
            expected_change = key not in reference or priority < reference[key]
            assert changed == expected_change
            if expected_change:
                reference[key] = priority
        elif reference:
            key, priority = heap.pop()
            assert priority == min(reference.values())
            assert reference.pop(key) == priority
        assert heap.check_invariant()
    drained = [heap.pop()[1] for _ in range(len(heap))]
    assert drained == sorted(drained)
    assert not reference or len(drained) == len(reference)
