"""Seeded differential fuzz sweep: codec-round-tripped parallel batches
must be bit-identical to sequential ones.

Each seed generates a random graph (size, density, directedness and
weight distribution all drawn from the seed), a random query batch and a
random ``k``, answers the batch sequentially, then re-answers it through
the 2-worker shard pool under **every** ``stats`` mode and asserts the
rebuilt results carry exactly the sequential ranks, node ids and entry
order.  Every case also exercises a second k, and dedicated seed classes
cover the bichromatic engine and warm-index (hub-indexed) runs — the
latter asserting rank-value identity plus boundary-tie equivalence, the
engine's documented parallel-indexed guarantee (worker index snapshots
lag the master's learning, which may swap entries tied exactly at the
boundary rank, never a rank value).

The sweep spawns one process pool per seed, so it is marked ``slow`` and
excluded from the tier-1 ``-m "not slow"`` CI split; a dedicated CI job
runs it on one interpreter.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro.core import ReverseKRanksEngine
from repro.core.types import STATS_MODES
from repro.core.validation import results_equivalent
from repro.graph import BichromaticPartition, GraphBuilder

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable"),
]

#: Size of the sweep; the ISSUE floor is 40 random graphs.
NUM_SEEDS = 40


def _random_graph(rng: random.Random):
    """A seeded random graph with varied shape, density and weights."""
    num_nodes = rng.randint(8, 26)
    directed = rng.random() < 0.3
    probability = rng.uniform(0.15, 0.45)
    tie_heavy = rng.random() < 0.3
    builder = GraphBuilder(directed=directed, name=f"fuzz-{num_nodes}")
    for node in range(num_nodes):
        builder.add_node(node)
    for source in range(num_nodes):
        for target in range(num_nodes):
            if source == target or (not directed and source >= target):
                continue
            if rng.random() < probability:
                weight = (
                    rng.choice([1.0, 1.0, 2.0])
                    if tie_heavy
                    else round(rng.uniform(0.5, 4.0), 2)
                )
                builder.add_interaction(source, target, weight)
    return builder.build()


def _pick_queries(rng: random.Random, nodes, count):
    return rng.sample(sorted(nodes, key=repr), min(count, len(nodes)))


def _entry_triples(results):
    """The bit-identity signature: per result, (node, rank) in entry order."""
    return [[(entry.node, entry.rank) for entry in result.entries] for result in results]


def _assert_bit_identical(sequential, parallel, context):
    assert _entry_triples(parallel) == _entry_triples(sequential), context
    assert [r.query for r in parallel] == [r.query for r in sequential], context
    assert [r.k for r in parallel] == [r.k for r in sequential], context


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_parallel_codec_differential(seed):
    rng = random.Random(0xC0DEC + seed)
    graph = _random_graph(rng)
    variant = seed % 4  # 0/1: monochromatic, 2: bichromatic, 3: warm index

    if variant == 2:
        _run_bichromatic_case(rng, graph, seed)
    elif variant == 3:
        _run_warm_index_case(rng, graph, seed)
    else:
        _run_monochromatic_case(rng, graph, seed)


def _run_monochromatic_case(rng, graph, seed):
    nodes = list(graph.nodes())
    queries = _pick_queries(rng, nodes, rng.randint(4, 8))
    algorithm = rng.choice(["naive", "static", "dynamic"])
    shard_policy = rng.choice(["round_robin", "cost", "affinity"])
    k_values = sorted(
        {rng.randint(1, max(1, graph.num_nodes // 3)), rng.randint(1, 4)}
    )
    with ReverseKRanksEngine(graph) as engine:
        for k in k_values:
            sequential = engine.query_many(queries, k, algorithm=algorithm)
            for mode in STATS_MODES:
                parallel = engine.query_many(
                    queries, k, algorithm=algorithm, workers=2,
                    shard_policy=shard_policy, worker_context="fork",
                    stats=mode,
                )
                _assert_bit_identical(
                    sequential, parallel,
                    f"seed={seed} algorithm={algorithm} k={k} stats={mode}",
                )
                if mode == "per-query":
                    # The codec must also round-trip every work counter.
                    for expected, actual in zip(sequential, parallel):
                        left = expected.stats.as_dict()
                        right = actual.stats.as_dict()
                        left.pop("elapsed_seconds")
                        right.pop("elapsed_seconds")
                        assert left == right, f"seed={seed} query={expected.query!r}"


def _run_bichromatic_case(rng, graph, seed):
    nodes = sorted(graph.nodes(), key=repr)
    facilities = [node for node in nodes if node % rng.choice([2, 3]) == 0]
    if len(facilities) < 3 or len(facilities) > graph.num_nodes - 2:
        facilities = nodes[: max(3, graph.num_nodes // 2)]
    partition = BichromaticPartition(graph, facilities)
    queries = _pick_queries(rng, facilities, rng.randint(3, 6))
    k = rng.randint(1, max(1, partition.num_communities // 2))
    algorithm = rng.choice(["static", "dynamic"])
    with ReverseKRanksEngine(graph, partition=partition) as engine:
        sequential = engine.query_many(queries, k, algorithm=algorithm)
        for mode in STATS_MODES:
            parallel = engine.query_many(
                queries, k, algorithm=algorithm, workers=2,
                worker_context="fork", stats=mode,
            )
            _assert_bit_identical(
                sequential, parallel,
                f"seed={seed} bichromatic {algorithm} k={k} stats={mode}",
            )


def _run_warm_index_case(rng, graph, seed):
    nodes = list(graph.nodes())
    queries = _pick_queries(rng, nodes, rng.randint(4, 8))
    k = rng.randint(1, 4)
    with ReverseKRanksEngine(graph) as engine:
        engine.build_index(num_hubs=rng.randint(2, 5), capacity=max(8, k))
        # Warm the master index sequentially first, so the pool snapshot
        # carries real learned state into the workers.
        engine.query_many(queries, k, algorithm="indexed")
        sequential = engine.query_many(queries, k, algorithm="indexed")
        for mode in STATS_MODES:
            parallel = engine.query_many(
                queries, k, algorithm="indexed", workers=2,
                worker_context="fork", stats=mode,
            )
            context = f"seed={seed} warm-index k={k} stats={mode}"
            # Rank values must be bit-identical; entry identity is allowed
            # to differ only for ties exactly at the boundary rank (worker
            # snapshots lag the continuously-learning master).
            assert [r.rank_values() for r in parallel] == [
                r.rank_values() for r in sequential
            ], context
            for expected, actual in zip(sequential, parallel):
                assert results_equivalent(expected, actual), context
