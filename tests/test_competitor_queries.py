"""Tests for the effectiveness-study competitor queries (top-k, reverse top-k)."""

from __future__ import annotations

import pytest

from repro.core import (
    agreement_rate,
    naive_reverse_k_ranks,
    reverse_top_k,
    reverse_top_k_all_sizes,
    top_k_nodes,
)
from repro.errors import InvalidKError, NodeNotFoundError


def test_top_k_nodes_on_path(path_graph):
    # Nearest to node 0 are 1, 2, 3 in order.
    assert top_k_nodes(path_graph, 0, 3) == [1, 2, 3]
    # Interior node: both sides, distance order.
    nearest = top_k_nodes(path_graph, 5, 4)
    assert set(nearest) == {3, 4, 6, 7}


def test_reverse_top_k_matches_topk_membership(weighted_grid):
    for k in (1, 3, 5):
        expected = sorted(
            (
                node
                for node in weighted_grid.nodes()
                if node != 5 and 5 in top_k_nodes(weighted_grid, node, k)
            ),
            key=repr,
        )
        assert reverse_top_k(weighted_grid, 5, k) == expected


def test_reverse_top_k_all_sizes_nested(random_gnp):
    results = reverse_top_k_all_sizes(random_gnp, 0, [1, 3, 6])
    assert set(results) == {1, 3, 6}
    assert set(results[1]) <= set(results[3]) <= set(results[6])
    for k, members in results.items():
        assert members == reverse_top_k(random_gnp, 0, k)


def test_reverse_top_k_result_size_is_uncontrollable(path_graph):
    # The paper's motivating deficiency: result sizes cannot be steered.
    # Node 0 is the top-1 of its sole neighbour, while node 9 is in
    # nobody's top-1 (node 8's distance tie settles 7 first), so the
    # reverse top-1 of 9 is empty.
    assert reverse_top_k(path_graph, 0, 1) == [1]
    assert reverse_top_k(path_graph, 9, 1) == []
    # Whereas reverse k-ranks always returns k nodes (graph permitting).
    assert len(naive_reverse_k_ranks(path_graph, 0, 4)) == 4
    assert len(naive_reverse_k_ranks(path_graph, 9, 4)) == 4


def test_reverse_top_k_validates_arguments(path_graph):
    with pytest.raises(InvalidKError):
        reverse_top_k(path_graph, 0, 0)
    with pytest.raises(NodeNotFoundError):
        reverse_top_k(path_graph, "missing", 2)
    assert reverse_top_k_all_sizes(path_graph, 0, []) == {}


def test_agreement_rate_values(random_gnp):
    result = naive_reverse_k_ranks(random_gnp, 0, 4)
    assert agreement_rate(result, result) == 1.0
    assert agreement_rate(result, result.nodes()) == 1.0
    assert agreement_rate([], []) == 1.0
    assert agreement_rate([1, 2], [3, 4]) == 0.0
    assert agreement_rate([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)


def test_agreement_between_queries_is_bounded(random_gnp):
    reverse_ranks = naive_reverse_k_ranks(random_gnp, 0, 5)
    reverse_topk_nodes = reverse_top_k(random_gnp, 0, 5)
    rate = agreement_rate(reverse_ranks, reverse_topk_nodes)
    assert 0.0 <= rate <= 1.0
