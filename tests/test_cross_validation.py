"""Cross-validation: every optimised algorithm against the naive baseline.

These are the repository's core correctness guarantee — static, dynamic and
indexed results must be interchangeable with brute force on every fixture
graph, every ``k``, in directed, tie-heavy and bichromatic settings, and
with a warm (query-updated) hub index.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BoundSet,
    HubIndex,
    dynamic_reverse_k_ranks,
    naive_reverse_k_ranks,
    results_equivalent,
    validate_against_naive,
)
from repro.errors import CrossValidationError

from conftest import sample_queries

K_VALUES = (1, 2, 4, 8)


@pytest.mark.parametrize("k", K_VALUES)
def test_static_and_dynamic_match_naive(any_graph, k):
    for query in sample_queries(any_graph):
        validate_against_naive(any_graph, query, k)


@pytest.mark.parametrize("k", (1, 3, 6))
def test_every_bound_combination_matches_naive(random_gnp, k):
    presets = [
        BoundSet.parent_only(),
        BoundSet.parent_and_count(),
        BoundSet.parent_and_height(),
        BoundSet.all(),
    ]
    for bounds in presets:
        for query in sample_queries(random_gnp):
            validate_against_naive(random_gnp, query, k, bounds=bounds)


@pytest.mark.parametrize("k", (1, 2, 5))
def test_indexed_matches_naive_with_cold_and_warm_index(random_gnp, k):
    index = HubIndex.build(random_gnp, num_hubs=4, capacity=16)
    # Two passes: the second runs against an index warmed by the first
    # pass's refinements (the Algorithm-4 update path).
    for _ in range(2):
        for query in sample_queries(random_gnp, count=4):
            validate_against_naive(random_gnp, query, k, index=index)


@pytest.mark.parametrize("k", (1, 2, 5))
def test_indexed_matches_naive_on_tie_heavy_graph(tie_heavy_graph, k):
    index = HubIndex.build(tie_heavy_graph, num_hubs=3, capacity=16)
    for query in sample_queries(tie_heavy_graph, count=4):
        validate_against_naive(tie_heavy_graph, query, k, index=index)


@pytest.mark.parametrize("k", (1, 2, 4))
def test_bichromatic_matches_naive(bichromatic_case, k):
    for query in sorted(bichromatic_case.facilities, key=repr)[:4]:
        validate_against_naive(bichromatic_case.graph, query, k, partition=bichromatic_case)


@pytest.mark.parametrize("k", (1, 3, 7))
def test_directed_matches_naive_every_query_node(directed_gnp, k):
    for query in directed_gnp.nodes():
        validate_against_naive(directed_gnp, query, k)


def test_oversized_k_returns_all_reachable_candidates(path_graph):
    results = validate_against_naive(path_graph, 0, 50)
    assert len(results["naive"]) == path_graph.num_nodes - 1
    assert not results["naive"].is_full()


def test_validation_report_contains_all_algorithms(random_gnp):
    index = HubIndex.build(random_gnp, num_hubs=3, capacity=8)
    results = validate_against_naive(random_gnp, 0, 3, index=index)
    assert set(results) == {"naive", "static", "dynamic", "indexed"}
    assert results["naive"].algorithm == "Naive"
    assert results["static"].algorithm == "Static"
    assert results["dynamic"].algorithm == "Dynamic-Three"
    assert results["indexed"].algorithm == "Indexed"


def test_results_equivalent_rejects_rank_mismatch(random_gnp):
    good = naive_reverse_k_ranks(random_gnp, 0, 3)
    other_query = naive_reverse_k_ranks(random_gnp, 1, 3)
    other_k = naive_reverse_k_ranks(random_gnp, 0, 4)
    assert results_equivalent(good, good)
    assert not results_equivalent(good, other_query)
    assert not results_equivalent(good, other_k)


def test_results_equivalent_allows_boundary_ties_only(path_graph):
    from repro.core import QueryResult, RankedNode

    # On the path graph queried at an end node ranks are unique (1, 3, 5),
    # so exchanging nodes below the boundary must be detected even though
    # the rank multiset is unchanged.
    first = naive_reverse_k_ranks(path_graph, 0, 3)
    second = dynamic_reverse_k_ranks(path_graph, 0, 3)
    assert results_equivalent(first, second)
    assert [entry.rank for entry in first.entries] == [1, 3, 5]

    swapped = QueryResult(
        query=first.query,
        k=first.k,
        entries=[
            RankedNode.make(first.entries[1].node, first.entries[0].rank),
            RankedNode.make(first.entries[0].node, first.entries[1].rank),
            first.entries[2],
        ],
    )
    assert not results_equivalent(first, swapped)

    # Entries tied at the boundary rank may differ in identity: replace the
    # boundary node with a fictitious one and remain equivalent.
    boundary_swapped = QueryResult(
        query=first.query,
        k=first.k,
        entries=first.entries[:2] + [RankedNode.make("ghost", first.entries[2].rank)],
    )
    assert results_equivalent(first, boundary_swapped)


def test_cross_validation_error_raised_on_disagreement(random_gnp, monkeypatch):
    import repro.core.validation as validation

    def broken(graph, query, k, candidate=None, counted=None, **_):
        result = naive_reverse_k_ranks(graph, query, k, candidate=candidate, counted=counted)
        if result.entries:
            result.entries[-1] = type(result.entries[-1])(
                rank=result.entries[-1].rank + 1000,
                node=result.entries[-1].node,
            )
        return result

    monkeypatch.setattr(validation, "static_reverse_k_ranks", broken)
    with pytest.raises(CrossValidationError):
        validation.validate_against_naive(random_gnp, 0, 3)
