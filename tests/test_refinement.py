"""Unit tests for the GetRank refinement (pruning, hooks, tie handling)."""

from __future__ import annotations

from repro.core.refinement import refine_rank
from repro.core.types import PRUNED
from repro.graph import Graph
from repro.traversal.dijkstra import shortest_path_distances
from repro.traversal.rank import exact_rank


def test_refine_rank_matches_exact_rank(weighted_grid):
    distances = shortest_path_distances(weighted_grid, 0)
    for target in (5, 10, 15):
        outcome = refine_rank(weighted_grid, 0, target, radius=distances[target])
        assert not outcome.pruned
        assert outcome.rank == exact_rank(weighted_grid, 0, target)


def test_refine_rank_exact_even_with_inflated_radius(weighted_grid):
    # Theorem-1 pruning can hand the refinement an over-estimated radius;
    # settling the target must still produce the true rank.
    distances = shortest_path_distances(weighted_grid, 0)
    outcome = refine_rank(weighted_grid, 0, 15, radius=distances[15] * 2.5)
    assert outcome.rank == exact_rank(weighted_grid, 0, 15)


def test_refine_rank_prunes_when_k_rank_exceeded(path_graph):
    # Rank(9, 0) on the path is 9; a bound of 3 must abort early.
    outcome = refine_rank(path_graph, 9, 0, radius=9.0, k_rank=3)
    assert outcome.pruned
    assert outcome.rank == PRUNED
    # The abort must have saved work compared to the full refinement.
    full = refine_rank(path_graph, 9, 0, radius=9.0)
    assert outcome.settled < full.settled


def test_refine_rank_boundary_rank_not_pruned(path_graph):
    # A rank exactly equal to k_rank must complete (ties at kRank are
    # legitimate results; only strictly worse ranks may abort).
    true_rank = exact_rank(path_graph, 5, 0)
    outcome = refine_rank(path_graph, 5, 0, radius=5.0, k_rank=true_rank)
    assert not outcome.pruned
    assert outcome.rank == true_rank


def test_refine_rank_counted_predicate(path_graph):
    outcome = refine_rank(
        path_graph, 3, 0, radius=3.0, counted=lambda n: n % 2 == 0
    )
    assert outcome.rank == exact_rank(path_graph, 3, 0, counted=lambda n: n % 2 == 0)


def test_refine_rank_on_settle_reports_exact_ranks(weighted_grid):
    seen = {}
    refine_rank(
        weighted_grid,
        0,
        15,
        radius=shortest_path_distances(weighted_grid, 0)[15],
        on_settle=lambda node, rank: seen.__setitem__(node, rank),
    )
    assert seen, "on_settle never fired"
    for node, rank in seen.items():
        assert rank == exact_rank(weighted_grid, 0, node)
    # The target itself is reported too (feeds the Reverse Rank Dictionary).
    assert 15 in seen


def test_refine_rank_on_push_fires_strictly_inside_radius(path_graph):
    pushed = []
    refine_rank(path_graph, 4, 0, radius=4.0, on_push=pushed.append)
    # Strictly inside radius 4 from node 4: distances 1,2,3 on both sides.
    assert set(pushed) == {1, 2, 3, 5, 6, 7}


def test_refine_rank_tie_groups():
    star = Graph()
    for leaf in ("x", "y", "z", "q"):
        star.add_edge("hub", leaf, 1.0)
    # From x: hub at 1; y, z, q tie at 2. Nothing is strictly closer to x
    # than q except the hub.
    outcome = refine_rank(star, "x", "q", radius=2.0)
    assert outcome.rank == 2


def test_refine_rank_unreachable_target_degenerates_to_pruned():
    graph = Graph()
    graph.add_edge("a", "b", 1.0)
    graph.add_node("island")
    outcome = refine_rank(graph, "a", "island", radius=5.0)
    assert outcome.pruned
