"""CompactGraph pickle round trips (the worker pool's shipping format)."""

from __future__ import annotations

import pickle

import pytest

from repro.core import dynamic_reverse_k_ranks, naive_reverse_k_ranks
from repro.graph import CompactGraph, Graph

from conftest import sample_queries


def _roundtrip(compact: CompactGraph) -> CompactGraph:
    return pickle.loads(pickle.dumps(compact))


def _adjacency(compact: CompactGraph):
    return {
        node: list(compact.neighbor_items(node)) for node in compact.nodes()
    }


class TestCompactGraphPickle:
    def test_round_trip_preserves_structure_and_metadata(self, any_graph):
        compact = CompactGraph.from_graph(any_graph)
        loaded = _roundtrip(compact)
        assert loaded.directed == compact.directed
        assert loaded.num_nodes == compact.num_nodes
        assert loaded.num_edges == compact.num_edges
        assert loaded.name == compact.name
        assert list(loaded.nodes()) == list(compact.nodes())
        assert _adjacency(loaded) == _adjacency(compact)
        assert {
            node: list(loaded.in_neighbor_items(node)) for node in loaded.nodes()
        } == {
            node: list(compact.in_neighbor_items(node)) for node in compact.nodes()
        }

    def test_round_trip_preserves_version_and_digest(self, random_gnp):
        compact = CompactGraph.from_graph(random_gnp)
        digest = compact.content_digest()
        loaded = _roundtrip(compact)
        assert loaded.source_version == random_gnp.version
        assert loaded.version == random_gnp.version
        assert loaded.content_digest() == digest

    def test_source_graph_weakref_does_not_survive(self, random_gnp):
        loaded = _roundtrip(CompactGraph.from_graph(random_gnp))
        assert loaded.source_graph is None

    def test_undirected_buffer_sharing_survives(self, random_gnp):
        assert not random_gnp.directed
        loaded = _roundtrip(CompactGraph.from_graph(random_gnp))
        out_offsets, out_targets, out_weights = loaded.out_csr()
        in_offsets, in_sources, in_weights = loaded.in_csr()
        assert out_offsets is in_offsets
        assert out_targets is in_sources
        assert out_weights is in_weights

    def test_reverse_view_round_trips(self, directed_gnp):
        reverse = CompactGraph.from_graph(directed_gnp).reverse_view()
        loaded = _roundtrip(reverse)
        assert loaded.is_transposed
        assert _adjacency(loaded) == _adjacency(reverse)
        assert loaded.content_digest() == reverse.content_digest()
        # Transposing back recovers the forward adjacency.
        forward = CompactGraph.from_graph(directed_gnp)
        assert _adjacency(loaded.reverse_view()) == _adjacency(forward)
        assert not loaded.reverse_view().is_transposed

    def test_digest_distinguishes_weights(self):
        light = Graph()
        heavy = Graph()
        for graph, weight in ((light, 1.0), (heavy, 2.0)):
            graph.add_edge("a", "b", weight)
            graph.add_edge("b", "c", 1.5)
        assert (
            CompactGraph.from_graph(light).content_digest()
            != CompactGraph.from_graph(heavy).content_digest()
        )

    def test_queries_on_unpickled_graph_are_bit_identical(self, any_graph):
        compact = CompactGraph.from_graph(any_graph)
        loaded = _roundtrip(compact)
        for query in sample_queries(any_graph):
            original = dynamic_reverse_k_ranks(compact, query, 3)
            shipped = dynamic_reverse_k_ranks(loaded, query, 3)
            assert original.as_pairs() == shipped.as_pairs()
            original_counters = original.stats.as_dict()
            shipped_counters = shipped.stats.as_dict()
            del original_counters["elapsed_seconds"]  # wall clock, not work
            del shipped_counters["elapsed_seconds"]
            assert original_counters == shipped_counters
            assert (
                naive_reverse_k_ranks(loaded, query, 3).as_pairs()
                == naive_reverse_k_ranks(compact, query, 3).as_pairs()
            )

    def test_unsupported_node_identifiers_fail_loudly(self):
        graph = Graph()
        graph.add_edge(lambda: None, "b", 1.0)  # lambdas cannot be pickled
        compact = CompactGraph.from_graph(graph)
        with pytest.raises(Exception):
            pickle.dumps(compact)
