"""Unit tests for the deterministic failpoint registry (repro.faults)."""

import subprocess
import sys
import time

import pytest

from repro import faults
from repro.errors import FailpointError
from repro.faults import ENV_SEED, ENV_SPEC, FaultRegistry, FaultSpecError


@pytest.fixture(autouse=True)
def _disarm_process_registry():
    """Never let a test leak armed failpoints into the rest of the suite."""
    yield
    faults.clear()


# ----------------------------------------------------------------------
# spec parsing


def test_parse_all_kinds_and_modifiers():
    registry = FaultRegistry()
    registry.configure(
        "a.crash=crash; b.error=error@0.5 ;c.sleep=sleep(1.5)#3*2;"
    )
    described = registry.describe()
    assert set(described) == {"a.crash", "b.error", "c.sleep"}
    assert described["a.crash"]["kind"] == "crash"
    assert described["b.error"]["kind"] == "error"
    assert described["c.sleep"]["kind"] == "sleep"
    assert registry.active


def test_empty_spec_arms_nothing():
    registry = FaultRegistry()
    registry.configure("")
    assert not registry.active
    registry.fire("anything")  # no-op, no error


@pytest.mark.parametrize(
    "spec",
    [
        "x=explode",  # unknown kind
        "x=sleep",  # sleep needs a duration
        "x=sleep(fast)",  # non-numeric duration
        "x=sleep(-1)",  # negative duration
        "x=crash(1)",  # crash takes no argument
        "x=error@1.5",  # probability out of range
        "x=error#0",  # from-hit must be >= 1
        "x=error*0",  # trigger limit must be >= 1
        "justaname",  # no '='
        "=error",  # empty name
        "x=error;x=crash",  # duplicate name
    ],
)
def test_bad_specs_raise(spec):
    registry = FaultRegistry()
    with pytest.raises(FaultSpecError):
        registry.configure(spec)


def test_bad_env_seed_raises():
    registry = FaultRegistry()
    with pytest.raises(FaultSpecError):
        registry.configure_from_env({ENV_SPEC: "x=error", ENV_SEED: "soon"})


# ----------------------------------------------------------------------
# trigger semantics


def test_error_kind_raises_typed_oserror():
    registry = FaultRegistry()
    registry.configure("journal.fsync=error")
    with pytest.raises(FailpointError) as excinfo:
        registry.fire("journal.fsync")
    assert isinstance(excinfo.value, OSError)
    assert excinfo.value.failpoint == "journal.fsync"
    registry.fire("journal.write")  # unarmed point stays silent


def test_from_hit_dormancy_and_trigger_limit():
    registry = FaultRegistry()
    registry.configure("x=error#3*2")
    registry.fire("x")  # hit 1: dormant
    registry.fire("x")  # hit 2: dormant
    for _ in range(2):  # hits 3-4: the two budgeted triggers
        with pytest.raises(FailpointError):
            registry.fire("x")
    registry.fire("x")  # budget spent: silent again
    counters = registry.describe()["x"]
    assert counters["hits"] == 5
    assert counters["triggers"] == 2


def _trigger_schedule(seed, salt, n=64):
    registry = FaultRegistry()
    registry.configure("x=error@0.5", seed=seed)
    registry.reseed(salt)
    schedule = []
    for _ in range(n):
        try:
            registry.fire("x")
            schedule.append(False)
        except FailpointError:
            schedule.append(True)
    return schedule


def test_probability_is_deterministic_per_seed_and_salt():
    assert _trigger_schedule(7, 0) == _trigger_schedule(7, 0)
    assert _trigger_schedule(7, 0) != _trigger_schedule(8, 0)
    # Worker salts decorrelate identically-configured processes.
    assert _trigger_schedule(7, 1_000_003) != _trigger_schedule(7, 0)
    schedule = _trigger_schedule(7, 0)
    assert any(schedule) and not all(schedule)


def test_reseed_resets_counters():
    registry = FaultRegistry()
    registry.configure("x=error*1")
    with pytest.raises(FailpointError):
        registry.fire("x")
    registry.fire("x")  # disarmed by the limit
    registry.reseed(0)
    with pytest.raises(FailpointError):  # fresh budget after reseed
        registry.fire("x")


def test_sleep_kind_blocks():
    registry = FaultRegistry()
    registry.configure("x=sleep(0.05)*1")
    started = time.perf_counter()
    registry.fire("x")
    assert time.perf_counter() - started >= 0.04
    started = time.perf_counter()
    registry.fire("x")  # limit spent: returns immediately
    assert time.perf_counter() - started < 0.04


def test_crash_kind_dies_like_sigkill():
    code = (
        "from repro.faults import FaultRegistry\n"
        "r = FaultRegistry()\n"
        "r.configure('x=crash')\n"
        "r.fire('x')\n"
        "print('survived')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert result.returncode != 0
    assert "survived" not in result.stdout


# ----------------------------------------------------------------------
# environment propagation


def test_env_exports_round_trip():
    parent = FaultRegistry()
    parent.configure("worker.before_task=crash@0.3;journal.fsync=error", seed=9)
    exports = parent.env_exports()
    assert exports[ENV_SPEC] == parent.spec
    assert exports[ENV_SEED] == "9"

    child = FaultRegistry()
    assert child.configure_from_env(exports)
    assert child.spec == parent.spec
    assert child.seed == 9
    assert set(child.describe()) == {"worker.before_task", "journal.fsync"}


def test_env_exports_empty_when_inactive():
    registry = FaultRegistry()
    assert registry.env_exports() == {}
    assert not registry.configure_from_env({})


def test_clear_disarms_and_stops_exporting():
    registry = FaultRegistry()
    registry.configure("x=error")
    registry.clear()
    assert not registry.active
    assert registry.env_exports() == {}
    registry.fire("x")  # silent


# ----------------------------------------------------------------------
# module-level registry and the worker entry hook


def test_module_registry_fire_and_describe():
    faults.configure("x=error*1", seed=1)
    assert faults.active()
    with pytest.raises(FailpointError):
        faults.fire("x")
    faults.fire("x")
    assert faults.describe()["x"]["triggers"] == 1
    assert faults.env_exports() == {ENV_SPEC: "x=error*1", ENV_SEED: "1"}
    faults.clear()
    assert not faults.active()


def test_on_worker_start_arms_from_env(monkeypatch):
    faults.clear()
    monkeypatch.setenv(ENV_SPEC, "x=error")
    monkeypatch.setenv(ENV_SEED, "4")
    faults.on_worker_start(worker_id=2, generation=1)
    assert faults.active()
    with pytest.raises(FailpointError):
        faults.fire("x")


def test_on_worker_start_salts_existing_registry():
    faults.configure("x=error@0.5", seed=7)
    faults.on_worker_start(worker_id=1, generation=0)
    schedule = []
    for _ in range(64):
        try:
            faults.fire("x")
            schedule.append(False)
        except FailpointError:
            schedule.append(True)
    assert schedule == _trigger_schedule(7, 1 * 1_000_003 + 0)
    assert schedule != _trigger_schedule(7, 0)
