"""Property-based randomized sweep (seeded, stdlib ``random`` only).

~50 generated graphs spanning density, weight style, directedness and
connectivity; on each one every optimised algorithm must agree with the
naive baseline (``validate_against_naive`` raises on any mismatch) and the
CompactGraph CSR backend must reproduce the dict backend's ranks exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    dynamic_reverse_k_ranks,
    naive_reverse_k_ranks,
    validate_against_naive,
)
from repro.core.hub_index import HubIndex
from repro.graph import BichromaticPartition, CompactGraph, Graph
from repro.traversal import rank_row

NUM_GRAPHS = 50

#: Weight styles: continuous, small-integer (tie-prone), near-binary (very
#: tie-heavy), and zero-inclusive (zero-weight edges are legal).
_WEIGHT_STYLES = ("uniform", "integer", "binary", "zeroes")


def _draw_weight(rng: random.Random, style: str) -> float:
    if style == "uniform":
        return round(rng.uniform(0.5, 9.5), 3)
    if style == "integer":
        return float(rng.randint(1, 6))
    if style == "binary":
        return rng.choice([1.0, 1.0, 2.0])
    return rng.choice([0.0, 1.0, 2.0])


def _random_graph(seed: int) -> Graph:
    """A graph whose shape is fully determined by ``seed``."""
    rng = random.Random(10_000 + seed)
    directed = rng.random() < 0.3
    num_nodes = rng.randint(10, 26)
    density = rng.choice([0.08, 0.15, 0.3, 0.5])
    style = _WEIGHT_STYLES[seed % len(_WEIGHT_STYLES)]
    disconnected = rng.random() < 0.25

    graph = Graph(directed=directed, name=f"sweep-{seed}")
    graph.add_nodes(range(num_nodes))
    if disconnected:
        half = num_nodes // 2
        blocks = [list(range(half)), list(range(half, num_nodes))]
    else:
        blocks = [list(range(num_nodes))]
    for block in blocks:
        for source in block:
            for target in block:
                if source == target:
                    continue
                if not directed and source > target:
                    continue
                if rng.random() < density:
                    graph.add_edge(source, target, _draw_weight(rng, style))
    return graph


def _query_nodes(graph: Graph, count: int = 2):
    nodes = sorted(graph.nodes(), key=repr)
    stride = max(1, len(nodes) // count)
    return nodes[::stride][:count]


@pytest.mark.parametrize("seed", range(NUM_GRAPHS))
def test_all_algorithms_agree_with_naive(seed):
    graph = _random_graph(seed)
    index = HubIndex.build(
        graph,
        num_hubs=max(1, graph.num_nodes // 6),
        explore_limit=max(2, graph.num_nodes // 2),
        capacity=8,
    )
    for query in _query_nodes(graph):
        for k in (1, 3, 7):
            # Raises CrossValidationError on any static/dynamic/indexed
            # disagreement with brute force; warm-index reuse across the
            # (query, k) grid is intentional — it must stay exact.
            validate_against_naive(graph, query, k, index=index)


def _stats_signature(result):
    payload = result.stats.as_dict()
    payload.pop("elapsed_seconds")
    return payload


@pytest.mark.parametrize("seed", range(NUM_GRAPHS))
def test_csr_backend_matches_dict_backend(seed):
    graph = _random_graph(seed)
    csr = CompactGraph.from_graph(graph)
    for query in _query_nodes(graph):
        assert rank_row(csr, query) == rank_row(graph, query)
        for k in (1, 4):
            assert (
                naive_reverse_k_ranks(csr, query, k).as_pairs()
                == naive_reverse_k_ranks(graph, query, k).as_pairs()
            )
            dict_dynamic = dynamic_reverse_k_ranks(graph, query, k)
            csr_dynamic = dynamic_reverse_k_ranks(csr, query, k)
            assert csr_dynamic.as_pairs() == dict_dynamic.as_pairs()
            # The CSR SDS specialisation must be a bit-identical
            # transcription: every work counter matches, not just ranks.
            assert _stats_signature(csr_dynamic) == _stats_signature(dict_dynamic)


@pytest.mark.parametrize("seed", range(0, NUM_GRAPHS, 5))
def test_bichromatic_sweep(seed):
    graph = _random_graph(seed)
    rng = random.Random(20_000 + seed)
    nodes = sorted(graph.nodes(), key=repr)
    num_facilities = max(1, len(nodes) // 3)
    facilities = rng.sample(nodes, num_facilities)
    if len(facilities) == len(nodes):  # pragma: no cover - sizes prevent this
        facilities = facilities[:-1]
    partition = BichromaticPartition(graph, facilities)
    query = sorted(partition.facilities, key=repr)[0]
    for k in (1, 3):
        validate_against_naive(graph, query, k, partition=partition)
