"""Edge-case contracts of the engine/API surface.

The engine validates strictly before dispatching (the low-level algorithm
functions keep the permissive "shorter result" semantics for the
experiment code): every degenerate input maps to a documented
:mod:`repro.errors` exception.
"""

from __future__ import annotations

import pytest

from repro.core import AlgorithmKind, ReverseKRanksEngine
from repro.errors import (
    BichromaticError,
    IndexCapacityError,
    IndexParameterError,
    InvalidKError,
    InvalidQueryNodeError,
)
from repro.graph import BichromaticPartition, Graph


ALL_KINDS = tuple(AlgorithmKind)


@pytest.fixture()
def engine(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    engine.build_index(num_hubs=3, capacity=8)
    return engine


# ----------------------------------------------------------------------
# k validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad_k", (0, -1, -17, True, False, 2.5, "3", None))
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_non_positive_or_non_int_k_raises(engine, bad_k, kind):
    with pytest.raises(InvalidKError):
        engine.query(0, bad_k, algorithm=kind)
    with pytest.raises(InvalidKError):
        engine.query_many([0], bad_k, algorithm=kind)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_k_beyond_candidate_count_raises(engine, random_gnp, kind):
    too_large = random_gnp.num_nodes  # candidates are |V| - 1
    with pytest.raises(InvalidKError):
        engine.query(0, too_large, algorithm=kind)
    with pytest.raises(InvalidKError):
        engine.query_many([0], too_large, algorithm=kind)


def test_k_at_candidate_count_is_legal(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    result = engine.query(0, random_gnp.num_nodes - 1, "dynamic")
    # Fewer entries than k are legal when some nodes cannot reach the query.
    assert len(result) <= random_gnp.num_nodes - 1


# ----------------------------------------------------------------------
# Query node validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_absent_query_node_raises(engine, kind):
    with pytest.raises(InvalidQueryNodeError):
        engine.query("missing", 2, algorithm=kind)
    with pytest.raises(InvalidQueryNodeError):
        engine.query_many(["missing"], 2, algorithm=kind)


def test_empty_graph_rejects_every_query():
    engine = ReverseKRanksEngine(Graph())
    with pytest.raises(InvalidQueryNodeError):
        engine.query("anything", 1)
    with pytest.raises(InvalidQueryNodeError):
        engine.query_many(["anything"], 1)


def test_single_node_graph_has_no_candidates():
    graph = Graph()
    graph.add_node("only")
    engine = ReverseKRanksEngine(graph)
    # The node exists, but no k >= 1 can ever be satisfied.
    with pytest.raises(InvalidKError):
        engine.query("only", 1)
    with pytest.raises(InvalidQueryNodeError):
        engine.query("other", 1)


# ----------------------------------------------------------------------
# Bichromatic contracts
# ----------------------------------------------------------------------
@pytest.fixture()
def bichromatic_engine(bichromatic_case):
    return ReverseKRanksEngine(bichromatic_case.graph, partition=bichromatic_case)


def test_bichromatic_rejects_community_query_node(bichromatic_engine, bichromatic_case):
    community = sorted(bichromatic_case.communities, key=repr)[0]
    with pytest.raises(BichromaticError):
        bichromatic_engine.query(community, 2)
    with pytest.raises(BichromaticError):
        bichromatic_engine.query_many([community], 2)


def test_bichromatic_accepts_facility_query_node(bichromatic_engine, bichromatic_case):
    facility = sorted(bichromatic_case.facilities, key=repr)[0]
    result = bichromatic_engine.query(facility, 2)
    assert all(bichromatic_case.is_community(node) for node in result.nodes())


def test_bichromatic_k_limited_by_community_count(bichromatic_engine, bichromatic_case):
    facility = sorted(bichromatic_case.facilities, key=repr)[0]
    with pytest.raises(InvalidKError):
        bichromatic_engine.query(facility, bichromatic_case.num_communities + 1)


def test_bichromatic_engine_rejects_indexed_algorithm(
    bichromatic_engine, bichromatic_case
):
    facility = sorted(bichromatic_case.facilities, key=repr)[0]
    with pytest.raises(IndexParameterError):
        bichromatic_engine.query(facility, 2, AlgorithmKind.INDEXED)
    with pytest.raises(IndexParameterError):
        bichromatic_engine.query_many([facility], 2, algorithm="indexed")


def test_partition_requires_both_classes(random_gnp):
    with pytest.raises(BichromaticError):
        BichromaticPartition(random_gnp, [])
    with pytest.raises(BichromaticError):
        BichromaticPartition(random_gnp, list(random_gnp.nodes()))


# ----------------------------------------------------------------------
# Index contracts
# ----------------------------------------------------------------------
def test_indexed_without_index_raises(random_gnp):
    engine = ReverseKRanksEngine(random_gnp)
    with pytest.raises(IndexParameterError):
        engine.query(0, 2, AlgorithmKind.INDEXED)


def test_k_beyond_index_capacity_raises(engine):
    # capacity=8 but k=10 is within |V| - 1, so only the index rejects it.
    with pytest.raises(IndexCapacityError):
        engine.query(0, 10, AlgorithmKind.INDEXED)
    # Non-indexed algorithms accept the same k.
    assert engine.query(0, 10, AlgorithmKind.DYNAMIC) is not None


def test_index_for_different_graph_rejected(random_gnp, weighted_grid):
    engine = ReverseKRanksEngine(random_gnp)
    index = engine.build_index(num_hubs=2, capacity=8)
    with pytest.raises(IndexParameterError):
        ReverseKRanksEngine(weighted_grid, index=index)


def test_unknown_algorithm_name_raises(engine):
    with pytest.raises(ValueError):
        engine.query(0, 2, algorithm="no-such-algorithm")
    with pytest.raises(ValueError):
        engine.query_many([0], 2, algorithm="no-such-algorithm")


# ----------------------------------------------------------------------
# Bichromatic mask caching (per graph version)
# ----------------------------------------------------------------------
def test_partition_masks_cached_per_graph_version(random_gnp, bichromatic_case):
    graph = random_gnp
    engine = ReverseKRanksEngine(graph, partition=bichromatic_case)
    queries = sorted(bichromatic_case.facilities, key=repr)[:3]

    first = engine.query_many(queries, 3, algorithm="dynamic")
    masks = engine._masks
    assert masks is not None
    candidate_mask, counted_mask = masks
    compact = engine.compact_graph()
    for index, node in enumerate(compact.node_ids):
        assert bool(candidate_mask[index]) == bichromatic_case.is_candidate(node)
        assert bool(counted_mask[index]) == bichromatic_case.is_counted(node)

    # A second batch on the same graph version reuses the same objects.
    engine.query_many(queries, 3, algorithm="static")
    assert engine._masks is masks

    # Cached masks answer identically to per-query predicate evaluation
    # (query() takes the dict path, which never uses masks).
    for query, batched in zip(queries, first):
        assert engine.query(query, 3, algorithm="dynamic").as_pairs() == (
            batched.as_pairs()
        )


def test_partition_masks_recomputed_after_mutation(random_gnp, bichromatic_case):
    graph = random_gnp.copy()
    facilities = [node for node in bichromatic_case.facilities]
    partition = BichromaticPartition(graph, facilities)
    engine = ReverseKRanksEngine(graph, partition=partition)
    queries = sorted(partition.facilities, key=repr)[:2]

    engine.query_many(queries, 2, algorithm="dynamic")
    stale_masks = engine._masks
    graph.add_edge(0, 9, 0.75)
    refreshed = engine.query_many(queries, 2, algorithm="dynamic")
    assert engine._masks is not stale_masks
    # And the refreshed batch agrees with the dict backend on the mutated
    # graph (masks were rebuilt for the new compilation, not reused).
    unmasked = engine.query_many(queries, 2, algorithm="dynamic", use_csr=False)
    assert [r.as_pairs() for r in refreshed] == [r.as_pairs() for r in unmasked]
