"""Seeded differential fuzz: incremental maintenance ≡ full rebuild.

Each seed generates a random graph (shape, density, directedness and
weights drawn from the seed), builds an engine with a CSR compilation
and a hub index, then interleaves seeded mutation batches — edge
inserts (including zero-weight and node-appending ones), deletions,
reweights, node removals and deliberate no-ops — with query batches
through ``engine.apply_updates``.  After every round the overlay-path
answers (ranks AND work counters) must be bit-identical to a fresh
engine compiled from scratch over an identically-mutated shadow graph,
and the repaired hub index's exported state must equal a from-scratch
``HubIndex.build`` over the same hub set.  A third of the seeds run the
whole interleaving with a live 2-worker pool, asserting the pool
absorbs updates via the graph broadcast (same PIDs, bit-identical
parallel answers) instead of being torn down.

One process pool per third seed → marked ``slow`` and excluded from the
tier-1 ``-m "not slow"`` CI split, like ``test_fuzz_differential``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import random

import pytest

from repro.core import ReverseKRanksEngine
from repro.core.hub_index import HubIndex
from repro.graph import GraphBuilder

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable"),
]

#: Size of the sweep; the ISSUE floor is 30 seeds.
NUM_SEEDS = 33


def _random_graph(rng: random.Random):
    """A seeded random graph with varied shape, density and weights."""
    num_nodes = rng.randint(10, 24)
    directed = rng.random() < 0.3
    probability = rng.uniform(0.15, 0.45)
    tie_heavy = rng.random() < 0.3
    builder = GraphBuilder(directed=directed, name=f"mut-fuzz-{num_nodes}")
    for node in range(num_nodes):
        builder.add_node(node)
    for source in range(num_nodes):
        for target in range(num_nodes):
            if source == target or (not directed and source >= target):
                continue
            if rng.random() < probability:
                weight = (
                    rng.choice([1.0, 1.0, 2.0])
                    if tie_heavy
                    else round(rng.uniform(0.5, 4.0), 2)
                )
                builder.add_interaction(source, target, weight)
    return builder.build()


def _mutation_batch(rng, shadow, fresh_ids):
    """Draw a seeded op batch, shadow-applying each op as it is drawn.

    Applying to ``shadow`` immediately keeps later ops in the batch
    consistent with the post-op graph (no removing an edge twice); the
    engine then replays the identical list from the identical start
    state, so both sides end bit-equal.
    """
    ops = []
    for _ in range(rng.randint(1, 5)):
        roll = rng.random()
        nodes = sorted(shadow.nodes(), key=repr)
        edges = list(shadow.edges())
        if roll < 0.10 and shadow.num_nodes > 12:
            victim = rng.choice(nodes)
            ops.append(("remove_node", victim))
            shadow.remove_node(victim)
        elif roll < 0.38 and edges:
            source, target, _ = rng.choice(edges)
            ops.append(("remove_edge", source, target))
            shadow.remove_edge(source, target)
        elif roll < 0.52 and edges:
            source, target, weight = rng.choice(edges)
            lowered = round(weight * rng.uniform(0.3, 0.9), 6)
            ops.append(("add_edge", source, target, lowered))
            shadow.add_edge(source, target, lowered)
        elif roll < 0.62:
            appended = f"new-{next(fresh_ids)}"
            anchor = rng.choice(nodes)
            weight = round(rng.uniform(0.5, 3.0), 3)
            ops.append(("add_edge", anchor, appended, weight))
            shadow.add_edge(anchor, appended, weight)
        elif roll < 0.72:
            ops.append(("add_node", rng.choice(nodes)))  # deliberate no-op
        else:
            source, target = rng.sample(nodes, 2)
            weight = (
                0.0 if rng.random() < 0.15 else round(rng.uniform(0.5, 4.0), 3)
            )
            ops.append(("add_edge", source, target, weight))
            shadow.add_edge(source, target, weight)
    return ops


def _pick_queries(rng, nodes, count):
    pool = sorted(nodes, key=repr)
    return rng.sample(pool, min(count, len(pool)))


def _stats_dict(result):
    payload = result.stats.as_dict()
    payload.pop("elapsed_seconds")
    return payload


def _assert_bit_identical(expected, actual, context):
    for want, got in zip(expected, actual):
        assert got.as_pairs() == want.as_pairs(), (context, want.query)
        assert _stats_dict(got) == _stats_dict(want), (context, want.query)


def _index_signature(index):
    state = index.export_state()
    # graph.copy() re-counts mutations from zero, so the version numbers
    # of graph and shadow legitimately differ; everything else must not.
    state.pop("graph_version")
    return state


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_incremental_equals_rebuild(seed):
    rng = random.Random(0x1C4E + seed)
    graph = _random_graph(rng)
    shadow = graph.copy()
    fresh_ids = itertools.count()
    parallel = seed % 3 == 0
    capacity = 8

    with ReverseKRanksEngine(graph) as engine:
        engine.build_index(num_hubs=3, capacity=capacity)
        if parallel:
            engine.parallel_min_batch = 1
            warm = _pick_queries(rng, shadow.nodes(), 4)
            engine.query_many(
                warm, 2, algorithm="dynamic", workers=2, worker_context="fork"
            )
            pids = sorted(p.pid for p in engine._pool._processes)

        for round_number in range(rng.randint(2, 3)):
            ops = _mutation_batch(rng, shadow, fresh_ids)
            pool_alive = engine._pool is not None
            report = engine.apply_updates(ops)
            context = f"seed={seed} round={round_number}"
            if parallel and pool_alive and report.applied and not report.recompacted:
                # Satellite guarantee: the broadcast kept the same workers.
                assert report.pool_synced, context
                assert sorted(
                    p.pid for p in engine._pool._processes
                ) == pids, context

            queries = _pick_queries(rng, shadow.nodes(), rng.randint(3, 6))
            k = rng.randint(1, 4)
            reference = ReverseKRanksEngine(shadow)
            backend = reference.compact_graph()
            for algorithm in ("dynamic", "static"):
                expected = reference.query_many(queries, k, algorithm=algorithm)
                sequential = engine.query_many(queries, k, algorithm=algorithm)
                _assert_bit_identical(
                    expected, sequential, f"{context} {algorithm}"
                )
                if parallel and engine._pool is not None:
                    shipped = engine.query_many(
                        queries, k, algorithm=algorithm,
                        workers=2, worker_context="fork",
                    )
                    _assert_bit_identical(
                        expected, shipped, f"{context} {algorithm}@w2"
                    )

            # The repaired index must equal a from-scratch build over the
            # SAME hub set (hub selection over the mutated graph may
            # legitimately pick different hubs; the repair claim is about
            # the knowledge, not the selection).
            rebuilt = HubIndex.build(
                shadow, capacity=capacity, hubs=engine.index.hubs,
                backend=backend,
            )
            assert _index_signature(engine.index) == _index_signature(
                rebuilt
            ), context

        # One end-to-end indexed batch against the rebuilt-index engine
        # (runs last: indexed queries learn into the master index, which
        # would perturb the per-round state comparisons above).
        reference = ReverseKRanksEngine(shadow)
        backend = reference.compact_graph()
        rebuilt = HubIndex.build(
            shadow, capacity=capacity, hubs=engine.index.hubs, backend=backend
        )
        reference.adopt_index(rebuilt)
        queries = _pick_queries(rng, shadow.nodes(), 5)
        expected = reference.query_many(queries, 3, algorithm="indexed")
        actual = engine.query_many(queries, 3, algorithm="indexed")
        _assert_bit_identical(expected, actual, f"seed={seed} indexed")
