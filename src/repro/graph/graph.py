"""Core weighted graph data structure.

The :class:`Graph` class is a lightweight adjacency-list graph that supports
both directed and undirected edges with non-negative float weights.  Node
identifiers may be any hashable object (the synthetic datasets use integers,
the toy example uses strings).

Design notes
------------
* Out-adjacency and in-adjacency are both materialised.  The paper's
  SDS-tree is a Dijkstra tree on the transpose graph ``G^T`` (distances *to*
  the query node), so in-neighbour enumeration must be as cheap as
  out-neighbour enumeration.  For undirected graphs the two dictionaries
  share the same entries.
* Parallel edges are collapsed: adding an edge that already exists keeps the
  smaller weight (shortest-path semantics make the heavier parallel edge
  irrelevant).  Use :class:`~repro.graph.builder.GraphBuilder` if a different
  merge policy is required.
* Self loops are rejected: they never affect shortest-path distances and the
  paper's rank definition ignores the node itself.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import (
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphValidationError,
    InvalidWeightError,
    NodeNotFoundError,
)

NodeId = Hashable
Weight = float

__all__ = ["Graph", "NodeId", "Weight"]


def _check_weight(weight: float) -> float:
    """Validate and normalise an edge weight.

    Weights must be finite, non-negative numbers.  Integers are accepted and
    converted to ``float``.
    """
    try:
        value = float(weight)
    except (TypeError, ValueError) as exc:
        raise InvalidWeightError(weight) from exc
    if math.isnan(value) or math.isinf(value) or value < 0:
        raise InvalidWeightError(weight)
    return value


class Graph:
    """A weighted graph with adjacency-list storage.

    Parameters
    ----------
    directed:
        Whether edges are directed.  The reverse k-ranks framework works on
        both; the count-based pruning bound is only valid on undirected
        graphs (paper, Lemma 3 footnote).
    name:
        Optional human-readable name used in reports and benchmarks.

    Examples
    --------
    >>> g = Graph(directed=False)
    >>> g.add_edge("a", "b", 1.0)
    >>> g.add_edge("b", "c", 2.5)
    >>> sorted(g.neighbors("b"))
    ['a', 'c']
    >>> g.weight("a", "b")
    1.0
    """

    # __weakref__ lets CompactGraph compilations remember their source
    # graph's identity without keeping it alive.
    __slots__ = (
        "_directed",
        "_succ",
        "_pred",
        "_num_edges",
        "_version",
        "name",
        "__weakref__",
    )

    def __init__(self, directed: bool = False, name: str = "") -> None:
        self._directed = bool(directed)
        self._succ: Dict[NodeId, Dict[NodeId, Weight]] = {}
        self._pred: Dict[NodeId, Dict[NodeId, Weight]] = {}
        self._num_edges = 0
        self._version = 0
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def directed(self) -> bool:
        """Whether the graph is directed."""
        return self._directed

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of (logical) edges.

        For undirected graphs each edge is counted once even though it is
        stored in both adjacency directions.
        """
        return self._num_edges

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Incremented by every structural change (node/edge addition, removal,
        or an edge-weight update through parallel-edge collapsing).  Derived
        artefacts — :class:`~repro.graph.csr.CompactGraph` compilations and
        :class:`~repro.core.hub_index.HubIndex` builds — snapshot this value
        so stale caches and indexes can be detected at query time.
        """
        return self._version

    @property
    def average_degree(self) -> float:
        """Average out-degree (2·|E|/|V| for undirected graphs)."""
        if not self._succ:
            return 0.0
        factor = 1 if self._directed else 2
        return factor * self._num_edges / self.num_nodes

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node: NodeId) -> bool:
        return node in self._succ

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._succ)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "directed" if self._directed else "undirected"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Graph{label} {kind} nodes={self.num_nodes} edges={self.num_edges}>"
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, exist_ok: bool = True) -> None:
        """Add an isolated node.

        Parameters
        ----------
        node:
            Hashable node identifier.
        exist_ok:
            When ``False``, adding an existing node raises
            :class:`~repro.errors.DuplicateNodeError`.
        """
        if node in self._succ:
            if not exist_ok:
                raise DuplicateNodeError(node)
            return
        self._succ[node] = {}
        self._pred[node] = {}
        self._version += 1

    def add_nodes(self, nodes: Iterable[NodeId]) -> None:
        """Add every node in ``nodes`` (existing nodes are kept)."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, source: NodeId, target: NodeId, weight: Weight = 1.0) -> None:
        """Add an edge (collapsing parallel edges to the minimum weight).

        Both endpoints are added implicitly.  Self loops are ignored because
        they can never change a shortest-path distance or a rank.
        """
        if source == target:
            return
        value = _check_weight(weight)
        self.add_node(source)
        self.add_node(target)

        existing = self._succ[source].get(target)
        if existing is None:
            self._num_edges += 1
            self._version += 1
        elif existing <= value:
            value = existing
        else:
            self._version += 1

        self._succ[source][target] = value
        self._pred[target][source] = value
        if not self._directed:
            self._succ[target][source] = value
            self._pred[source][target] = value

    def add_edges(
        self, edges: Iterable[Tuple[NodeId, NodeId, Weight]]
    ) -> None:
        """Add every ``(source, target, weight)`` triple in ``edges``."""
        for source, target, weight in edges:
            self.add_edge(source, target, weight)

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        """Remove an edge; raises :class:`EdgeNotFoundError` if absent."""
        if source not in self._succ or target not in self._succ[source]:
            raise EdgeNotFoundError(source, target)
        del self._succ[source][target]
        del self._pred[target][source]
        if not self._directed:
            del self._succ[target][source]
            del self._pred[source][target]
        self._num_edges -= 1
        self._version += 1

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and all incident edges."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for target in list(self._succ[node]):
            self.remove_edge(node, target)
        for source in list(self._pred[node]):
            if source in self._succ and node in self._succ[source]:
                self.remove_edge(source, node)
        del self._succ[node]
        del self._pred[node]
        self._version += 1

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node identifiers."""
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, Weight]]:
        """Iterate over edges as ``(source, target, weight)`` triples.

        For undirected graphs each edge is yielded once, with the endpoint
        order of the stored representation (deterministic for a given
        insertion order).
        """
        if self._directed:
            for source, targets in self._succ.items():
                for target, weight in targets.items():
                    yield source, target, weight
        else:
            seen = set()
            for source, targets in self._succ.items():
                for target, weight in targets.items():
                    if (target, source) in seen:
                        continue
                    seen.add((source, target))
                    yield source, target, weight

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._succ

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        """Whether the edge ``(source, target)`` is in the graph."""
        return source in self._succ and target in self._succ[source]

    def weight(self, source: NodeId, target: NodeId) -> Weight:
        """Weight of edge ``(source, target)``; raises if absent."""
        try:
            return self._succ[source][target]
        except KeyError as exc:
            raise EdgeNotFoundError(source, target) from exc

    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over out-neighbours of ``node``."""
        return iter(self._out_adj(node))

    def neighbor_items(self, node: NodeId) -> Iterator[Tuple[NodeId, Weight]]:
        """Iterate over ``(out-neighbour, weight)`` pairs of ``node``."""
        return iter(self._out_adj(node).items())

    def in_neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over in-neighbours of ``node``."""
        return iter(self._in_adj(node))

    def in_neighbor_items(self, node: NodeId) -> Iterator[Tuple[NodeId, Weight]]:
        """Iterate over ``(in-neighbour, weight)`` pairs of ``node``.

        This is exactly the out-adjacency of the transpose graph ``G^T``
        used to build the SDS-tree rooted at the query node.
        """
        return iter(self._in_adj(node).items())

    def out_degree(self, node: NodeId) -> int:
        """Out-degree of ``node``."""
        return len(self._out_adj(node))

    def in_degree(self, node: NodeId) -> int:
        """In-degree of ``node``."""
        return len(self._in_adj(node))

    def degree(self, node: NodeId) -> int:
        """Alias of :meth:`out_degree` (equal to in-degree when undirected)."""
        return self.out_degree(node)

    def _out_adj(self, node: NodeId) -> Mapping[NodeId, Weight]:
        try:
            return self._succ[node]
        except KeyError as exc:
            raise NodeNotFoundError(node) from exc

    def _in_adj(self, node: NodeId) -> Mapping[NodeId, Weight]:
        try:
            return self._pred[node]
        except KeyError as exc:
            raise NodeNotFoundError(node) from exc

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def transpose(self) -> "Graph":
        """Return a new graph with every edge reversed.

        For undirected graphs this returns an identical copy (``G^T = G``).
        """
        result = Graph(directed=self._directed, name=f"{self.name}^T" if self.name else "")
        result.add_nodes(self.nodes())
        for source, target, weight in self.edges():
            if self._directed:
                result.add_edge(target, source, weight)
            else:
                result.add_edge(source, target, weight)
        return result

    def copy(self) -> "Graph":
        """Return a deep structural copy of the graph."""
        result = Graph(directed=self._directed, name=self.name)
        result.add_nodes(self.nodes())
        for source, target, weight in self.edges():
            result.add_edge(source, target, weight)
        return result

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Return the subgraph induced by ``nodes``."""
        keep = set(nodes)
        missing = [node for node in keep if node not in self._succ]
        if missing:
            raise NodeNotFoundError(missing[0])
        result = Graph(directed=self._directed, name=self.name)
        result.add_nodes(keep)
        for source in keep:
            for target, weight in self._succ[source].items():
                if target in keep:
                    result.add_edge(source, target, weight)
        return result

    # ------------------------------------------------------------------
    # Equality (structural)
    # ------------------------------------------------------------------
    def structurally_equal(self, other: "Graph") -> bool:
        """Whether two graphs have identical nodes, edges and weights."""
        if self._directed != other._directed:
            return False
        if set(self._succ) != set(other._succ):
            return False
        for node, targets in self._succ.items():
            if targets != other._succ.get(node, {}):
                return False
        return True

    # ------------------------------------------------------------------
    # Validation helpers used by repro.graph.validation
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Verify internal adjacency invariants (used by tests).

        Raises
        ------
        GraphValidationError
            If the forward and reverse adjacency maps disagree.
        """
        for source, targets in self._succ.items():
            for target, weight in targets.items():
                if self._pred.get(target, {}).get(source) != weight:
                    raise GraphValidationError(
                        f"edge ({source!r}, {target!r}) missing from reverse adjacency"
                    )
                if not self._directed and self._succ.get(target, {}).get(source) != weight:
                    raise GraphValidationError(
                        f"undirected edge ({source!r}, {target!r}) not symmetric"
                    )

    # ------------------------------------------------------------------
    # Serialisation hooks (see repro.graph.io for file formats)
    # ------------------------------------------------------------------
    def to_edge_list(self) -> list:
        """Return all edges as a list of ``(source, target, weight)`` triples."""
        return list(self.edges())

    @classmethod
    def from_edge_list(
        cls,
        edges: Iterable[Tuple[NodeId, NodeId, Weight]],
        directed: bool = False,
        nodes: Optional[Iterable[NodeId]] = None,
        name: str = "",
    ) -> "Graph":
        """Build a graph from an iterable of weighted edges.

        Parameters
        ----------
        edges:
            Iterable of ``(source, target, weight)`` triples.
        directed:
            Whether the resulting graph is directed.
        nodes:
            Optional iterable of nodes to add up front (so that isolated
            nodes survive the round trip).
        name:
            Optional graph name.
        """
        graph = cls(directed=directed, name=name)
        if nodes is not None:
            graph.add_nodes(nodes)
        graph.add_edges(edges)
        return graph
