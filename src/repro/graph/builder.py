"""Incremental graph construction with configurable merge policies.

:class:`GraphBuilder` is a convenience layer over :class:`repro.graph.Graph`
for dataset generators that accumulate interaction counts (e.g. the number of
co-authored papers in the DBLP-like collaboration graph) before converting
them into edge weights.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional, Tuple

from repro.errors import GraphValidationError
from repro.graph.graph import Graph, NodeId, Weight

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates weighted interactions and materialises a :class:`Graph`.

    The builder keeps, for every node pair, the *number of interactions* and
    the *accumulated raw weight*.  A weight function then maps those two
    values to the final edge weight when :meth:`build` is called.  This
    mirrors how the paper constructs the DBLP graph: the weight between two
    authors is derived from the number of co-authored papers and the node
    degrees.

    Parameters
    ----------
    directed:
        Whether the resulting graph is directed.
    name:
        Name assigned to the built graph.
    """

    def __init__(self, directed: bool = False, name: str = "") -> None:
        self._directed = directed
        self._name = name
        self._nodes: set = set()
        self._interactions: Dict[Tuple[NodeId, NodeId], int] = {}
        self._raw_weight: Dict[Tuple[NodeId, NodeId], float] = {}

    # ------------------------------------------------------------------
    def _key(self, source: NodeId, target: NodeId) -> Tuple[NodeId, NodeId]:
        if self._directed:
            return (source, target)
        # Canonicalise undirected pairs so (a, b) and (b, a) accumulate
        # into the same bucket.  repr() keeps this stable for mixed types.
        return (source, target) if repr(source) <= repr(target) else (target, source)

    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> "GraphBuilder":
        """Register a node (isolated nodes survive into the built graph)."""
        self._nodes.add(node)
        return self

    def add_interaction(
        self, source: NodeId, target: NodeId, weight: float = 1.0
    ) -> "GraphBuilder":
        """Record one interaction between ``source`` and ``target``.

        Repeated calls accumulate: the interaction count increases by one and
        the raw weight is summed.
        """
        if source == target:
            return self
        self._nodes.add(source)
        self._nodes.add(target)
        key = self._key(source, target)
        self._interactions[key] = self._interactions.get(key, 0) + 1
        self._raw_weight[key] = self._raw_weight.get(key, 0.0) + float(weight)
        return self

    def add_interactions(
        self, pairs: Iterable[Tuple[NodeId, NodeId]]
    ) -> "GraphBuilder":
        """Record one interaction for every pair in ``pairs``."""
        for source, target in pairs:
            self.add_interaction(source, target)
        return self

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of registered nodes."""
        return len(self._nodes)

    @property
    def num_pairs(self) -> int:
        """Number of distinct node pairs with at least one interaction."""
        return len(self._interactions)

    def interaction_count(self, source: NodeId, target: NodeId) -> int:
        """Number of interactions recorded between two nodes."""
        return self._interactions.get(self._key(source, target), 0)

    def node_interaction_degree(self, node: NodeId) -> int:
        """Number of distinct partners ``node`` has interacted with."""
        count = 0
        for left, right in self._interactions:
            if left == node or right == node:
                count += 1
        return count

    # ------------------------------------------------------------------
    def build(
        self,
        weight_fn: Optional[
            Callable[[NodeId, NodeId, int, float], float]
        ] = None,
    ) -> Graph:
        """Materialise the accumulated interactions into a :class:`Graph`.

        Parameters
        ----------
        weight_fn:
            ``weight_fn(source, target, count, raw_weight) -> weight``.
            Defaults to the accumulated raw weight.

        Raises
        ------
        GraphValidationError
            If the weight function produces a negative weight.
        """
        graph = Graph(directed=self._directed, name=self._name)
        graph.add_nodes(self._nodes)
        for (source, target), count in self._interactions.items():
            raw = self._raw_weight[(source, target)]
            weight = raw if weight_fn is None else weight_fn(source, target, count, raw)
            if weight < 0:
                raise GraphValidationError(
                    f"weight function returned a negative weight for ({source!r}, {target!r})"
                )
            graph.add_edge(source, target, weight)
        return graph
