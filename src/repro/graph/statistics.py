"""Descriptive statistics of graphs (Table 2 of the paper).

The paper reports node count, edge count and average degree for each dataset
(DBLP, Epinions, SF).  :func:`compute_statistics` reproduces those columns
for any :class:`~repro.graph.Graph`, plus a few extra quantities (degree
distribution summary, connected-component sizes) that the dataset generators
use to sanity-check their output.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List

from repro.graph.graph import Graph, NodeId

__all__ = ["GraphStatistics", "compute_statistics", "connected_components"]


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics for a graph.

    Attributes mirror Table 2 of the paper (nodes, edges, average degree)
    and add degree extremes and component structure.
    """

    name: str
    directed: bool
    num_nodes: int
    num_edges: int
    average_degree: float
    min_degree: int
    max_degree: int
    num_components: int
    largest_component_size: int
    degree_histogram: Dict[int, int] = field(default_factory=dict)

    def as_table_row(self) -> Dict[str, object]:
        """Row matching the paper's Table 2 layout."""
        return {
            "dataset": self.name or "(unnamed)",
            "# of Nodes": self.num_nodes,
            "# of Edges": self.num_edges,
            "Average Degree": round(self.average_degree, 2),
        }


def connected_components(graph: Graph) -> List[List[NodeId]]:
    """Weakly connected components of ``graph`` (BFS, edge direction ignored)."""
    seen: set = set()
    components: List[List[NodeId]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component: List[NodeId] = []
        queue = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            component.append(node)
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
            for neighbor in graph.in_neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    return components


def compute_statistics(graph: Graph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``."""
    degrees = [graph.out_degree(node) for node in graph.nodes()]
    histogram: Dict[int, int] = {}
    for degree in degrees:
        histogram[degree] = histogram.get(degree, 0) + 1

    components = connected_components(graph)
    component_sizes = [len(component) for component in components] or [0]

    return GraphStatistics(
        name=graph.name,
        directed=graph.directed,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        min_degree=min(degrees) if degrees else 0,
        max_degree=max(degrees) if degrees else 0,
        num_components=len(components),
        largest_component_size=max(component_sizes),
        degree_histogram=histogram,
    )
