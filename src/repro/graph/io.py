"""Graph serialisation: edge lists, DIMACS files and JSON documents.

Three formats are supported:

* **edge list** — one ``source target weight`` triple per line, ``#``
  (and ``%``, the KONECT convention) starts a comment.  This matches the
  format of the SNAP / KONECT datasets the paper uses, so a user with the
  real DBLP or Epinions files can load them directly.  The reader is
  deliberately forgiving about the things real downloads contain — CRLF
  line endings, blank lines, comment-only lines — and strict about the
  things that signal corruption: malformed lines fail as
  :class:`~repro.errors.DatasetError` with the 1-based line number.
* **DIMACS shortest-path** (the 9th DIMACS Implementation Challenge
  road-network format): ``c`` comment lines, one ``p sp <nodes> <arcs>``
  problem line, ``a <source> <target> <weight>`` arc lines.
* **JSON** — a self-describing document that also round-trips the
  directedness flag, the graph name and an optional bichromatic partition.

:func:`load_dataset` auto-detects the format, so the bench CLI can take a
``--dataset`` path pointing at any of the above.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.errors import DatasetError, GraphValidationError, InvalidWeightError
from repro.graph.graph import Graph
from repro.graph.partition import BichromaticPartition

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "read_dimacs",
    "load_dataset",
    "write_json",
    "read_json",
]

PathLike = Union[str, Path]


def write_edge_list(graph: Graph, path: PathLike, header: bool = True) -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    Parameters
    ----------
    graph:
        Graph to serialise.
    path:
        Destination file path.
    header:
        Whether to emit a comment header with graph metadata.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            kind = "directed" if graph.directed else "undirected"
            handle.write(f"# repro edge list: {graph.name or 'unnamed'} ({kind})\n")
            handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for source, target, weight in graph.edges():
            handle.write(f"{source}\t{target}\t{weight!r}\n")


def read_edge_list(
    path: PathLike,
    directed: bool = False,
    name: str = "",
    node_type: type = str,
) -> Graph:
    """Read a whitespace-separated edge list into a :class:`Graph`.

    Tolerates what real SNAP/KONECT downloads contain: CRLF (and bare CR)
    line endings, blank lines, ``#``- or ``%``-prefixed comment lines and
    leading/trailing whitespace.  Anything else that fails to parse —
    wrong token count, unparseable node/weight tokens, or a weight the
    graph itself rejects (non-positive, NaN, infinite) — raises
    :class:`~repro.errors.DatasetError` carrying the 1-based line number,
    so a corrupted multi-gigabyte download points at the offending line
    instead of failing deep inside the graph layer.

    Parameters
    ----------
    path:
        Source file path.
    directed:
        Whether to interpret the edges as directed.
    name:
        Name for the resulting graph (defaults to the file stem).
    node_type:
        Callable applied to the node tokens (e.g. ``int`` for SNAP files).

    Raises
    ------
    DatasetError
        If a line cannot be parsed or carries an invalid edge.
    """
    path = Path(path)
    graph = Graph(directed=directed, name=name or path.stem)
    # newline="" preserves \r so universal-newline translation cannot mask
    # a mixed-endings file; strip() removes every flavour either way.
    with path.open("r", encoding="utf-8", newline="") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise DatasetError(
                    f"{path}:{line_number}: expected 'source target [weight]', got {line!r}"
                )
            try:
                source = node_type(parts[0])
                target = node_type(parts[1])
                weight = float(parts[2]) if len(parts) == 3 else 1.0
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_number}: cannot parse {line!r}") from exc
            if not math.isfinite(weight):
                raise DatasetError(
                    f"{path}:{line_number}: non-finite edge weight {parts[2]!r}"
                )
            try:
                graph.add_edge(source, target, weight)
            except (InvalidWeightError, GraphValidationError, ValueError) as exc:
                raise DatasetError(
                    f"{path}:{line_number}: invalid edge {line!r}: {exc}"
                ) from exc
    return graph


def read_dimacs(
    path: PathLike,
    directed: bool = False,
    name: str = "",
) -> Graph:
    """Read a DIMACS shortest-path file (``.gr``) into a :class:`Graph`.

    The 9th DIMACS Implementation Challenge format carries the USA
    road networks the huge scale tier targets: ``c`` comment lines, one
    ``p sp <num_nodes> <num_arcs>`` problem line, then ``a <source>
    <target> <weight>`` arc lines with 1-based integer node identifiers.
    Node identifiers are kept as ``int``; road networks ship both arc
    directions, so loading with the default ``directed=False`` collapses
    each pair into one undirected edge (parallel arcs keep the minimum
    weight, the :meth:`~repro.graph.Graph.add_edge` rule).

    Raises
    ------
    DatasetError
        On malformed lines (with the 1-based line number), an arc before
        the problem line, or a node identifier outside the declared range.
    """
    path = Path(path)
    graph = Graph(directed=directed, name=name or path.stem)
    declared_nodes: Optional[int] = None
    with path.open("r", encoding="utf-8", newline="") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line[0] == "c":
                continue
            parts = line.split()
            tag = parts[0]
            if tag == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise DatasetError(
                        f"{path}:{line_number}: expected 'p sp <nodes> <arcs>', "
                        f"got {line!r}"
                    )
                try:
                    declared_nodes = int(parts[2])
                except ValueError as exc:
                    raise DatasetError(
                        f"{path}:{line_number}: cannot parse node count in {line!r}"
                    ) from exc
                # Road networks number nodes 1..n; declare them all up
                # front so isolated nodes survive the load.
                graph.add_nodes(range(1, declared_nodes + 1))
            elif tag == "a":
                if declared_nodes is None:
                    raise DatasetError(
                        f"{path}:{line_number}: arc line before the 'p sp' "
                        "problem line"
                    )
                if len(parts) != 4:
                    raise DatasetError(
                        f"{path}:{line_number}: expected 'a <source> <target> "
                        f"<weight>', got {line!r}"
                    )
                try:
                    source, target = int(parts[1]), int(parts[2])
                    weight = float(parts[3])
                except ValueError as exc:
                    raise DatasetError(
                        f"{path}:{line_number}: cannot parse {line!r}"
                    ) from exc
                if not (1 <= source <= declared_nodes and 1 <= target <= declared_nodes):
                    raise DatasetError(
                        f"{path}:{line_number}: node identifier outside the "
                        f"declared 1..{declared_nodes} range in {line!r}"
                    )
                if not math.isfinite(weight):
                    raise DatasetError(
                        f"{path}:{line_number}: non-finite arc weight {parts[3]!r}"
                    )
                try:
                    graph.add_edge(source, target, weight)
                except (InvalidWeightError, GraphValidationError, ValueError) as exc:
                    raise DatasetError(
                        f"{path}:{line_number}: invalid arc {line!r}: {exc}"
                    ) from exc
            else:
                raise DatasetError(
                    f"{path}:{line_number}: unknown DIMACS line type {tag!r}"
                )
    if declared_nodes is None:
        raise DatasetError(f"{path}: no 'p sp' problem line found")
    return graph


def load_dataset(
    path: PathLike,
    directed: bool = False,
    name: str = "",
) -> Graph:
    """Load a real-world dataset, auto-detecting its format.

    Detection order: the ``.json`` suffix selects the JSON document
    format; a first non-blank line starting with ``c ``/``p `` (or a
    ``.gr`` suffix) selects DIMACS; everything else is read as a
    SNAP/KONECT-style edge list with integer node identifiers (the
    convention of every dataset the paper evaluates).  This is the
    function behind the bench CLI's ``--dataset`` flag.
    """
    path = Path(path)
    if path.suffix.lower() == ".json":
        graph, _ = read_json(path)
        return graph
    if path.suffix.lower() == ".gr":
        return read_dimacs(path, directed=directed, name=name)
    with path.open("r", encoding="utf-8", newline="") as handle:
        for raw_line in handle:
            line = raw_line.strip()
            if not line:
                continue
            if line[0] in ("c", "p") and (len(line) == 1 or line[1] == " "):
                return read_dimacs(path, directed=directed, name=name)
            break
    return read_edge_list(path, directed=directed, name=name, node_type=int)


def write_json(
    graph: Graph,
    path: PathLike,
    partition: Optional[BichromaticPartition] = None,
) -> None:
    """Write ``graph`` (and optionally its bichromatic partition) as JSON."""
    document = {
        "format": "repro-graph",
        "version": 1,
        "name": graph.name,
        "directed": graph.directed,
        "nodes": [str(node) for node in graph.nodes()],
        "edges": [
            [str(source), str(target), weight] for source, target, weight in graph.edges()
        ],
    }
    if partition is not None:
        document["facilities"] = [str(node) for node in partition.facilities]
    Path(path).write_text(json.dumps(document, indent=2), encoding="utf-8")


def read_json(path: PathLike) -> Tuple[Graph, Optional[BichromaticPartition]]:
    """Read a graph (and optional partition) previously written by :func:`write_json`.

    Node identifiers are restored as strings; the JSON format does not try
    to preserve the original Python types.
    """
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("format") != "repro-graph":
        raise DatasetError(f"{path}: not a repro graph JSON document")
    graph = Graph(directed=bool(document["directed"]), name=document.get("name", ""))
    graph.add_nodes(document.get("nodes", []))
    for source, target, weight in document.get("edges", []):
        graph.add_edge(source, target, float(weight))
    partition: Optional[BichromaticPartition] = None
    facilities = document.get("facilities")
    if facilities:
        partition = BichromaticPartition(graph, facilities)
    return graph, partition
