"""Graph serialisation: whitespace edge lists and JSON documents.

Two formats are supported:

* **edge list** — one ``source target weight`` triple per line, ``#`` starts
  a comment.  This matches the format of the SNAP / KONECT datasets the
  paper uses, so a user with the real DBLP or Epinions files can load them
  directly.
* **JSON** — a self-describing document that also round-trips the
  directedness flag, the graph name and an optional bichromatic partition.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.errors import DatasetError
from repro.graph.graph import Graph
from repro.graph.partition import BichromaticPartition

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_json",
    "read_json",
]

PathLike = Union[str, Path]


def write_edge_list(graph: Graph, path: PathLike, header: bool = True) -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    Parameters
    ----------
    graph:
        Graph to serialise.
    path:
        Destination file path.
    header:
        Whether to emit a comment header with graph metadata.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            kind = "directed" if graph.directed else "undirected"
            handle.write(f"# repro edge list: {graph.name or 'unnamed'} ({kind})\n")
            handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for source, target, weight in graph.edges():
            handle.write(f"{source}\t{target}\t{weight!r}\n")


def read_edge_list(
    path: PathLike,
    directed: bool = False,
    name: str = "",
    node_type: type = str,
) -> Graph:
    """Read a whitespace-separated edge list into a :class:`Graph`.

    Parameters
    ----------
    path:
        Source file path.
    directed:
        Whether to interpret the edges as directed.
    name:
        Name for the resulting graph (defaults to the file stem).
    node_type:
        Callable applied to the node tokens (e.g. ``int`` for SNAP files).

    Raises
    ------
    DatasetError
        If a line cannot be parsed.
    """
    path = Path(path)
    graph = Graph(directed=directed, name=name or path.stem)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise DatasetError(
                    f"{path}:{line_number}: expected 'source target [weight]', got {line!r}"
                )
            try:
                source = node_type(parts[0])
                target = node_type(parts[1])
                weight = float(parts[2]) if len(parts) == 3 else 1.0
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_number}: cannot parse {line!r}") from exc
            graph.add_edge(source, target, weight)
    return graph


def write_json(
    graph: Graph,
    path: PathLike,
    partition: Optional[BichromaticPartition] = None,
) -> None:
    """Write ``graph`` (and optionally its bichromatic partition) as JSON."""
    document = {
        "format": "repro-graph",
        "version": 1,
        "name": graph.name,
        "directed": graph.directed,
        "nodes": [str(node) for node in graph.nodes()],
        "edges": [
            [str(source), str(target), weight] for source, target, weight in graph.edges()
        ],
    }
    if partition is not None:
        document["facilities"] = [str(node) for node in partition.facilities]
    Path(path).write_text(json.dumps(document, indent=2), encoding="utf-8")


def read_json(path: PathLike) -> Tuple[Graph, Optional[BichromaticPartition]]:
    """Read a graph (and optional partition) previously written by :func:`write_json`.

    Node identifiers are restored as strings; the JSON format does not try
    to preserve the original Python types.
    """
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("format") != "repro-graph":
        raise DatasetError(f"{path}: not a repro graph JSON document")
    graph = Graph(directed=bool(document["directed"]), name=document.get("name", ""))
    graph.add_nodes(document.get("nodes", []))
    for source, target, weight in document.get("edges", []):
        graph.add_edge(source, target, float(weight))
    partition: Optional[BichromaticPartition] = None
    facilities = document.get("facilities")
    if facilities:
        partition = BichromaticPartition(graph, facilities)
    return graph, partition
