"""Zero-copy shared-memory transport for :class:`~repro.graph.csr.CompactGraph`.

At huge scale (n in the 10\\ :sup:`5`–10\\ :sup:`6` range) the dominant
multiprocess tax is no longer per-query IPC but the per-worker *pickled
copy* of the frozen CSR buffers: every worker process unpickles its own
offsets/targets/weights arrays, multiplying RSS by the worker count and
stretching startup with megabytes of queue traffic.  This module removes
both costs by publishing the compilation once into a
:class:`multiprocessing.shared_memory.SharedMemory` segment and letting
workers *map* it:

* :func:`share_compact_graph` (owner side) lays the six CSR buffers out in
  one segment behind a small pickled header and returns a
  :class:`SharedGraphHandle` — a few hundred bytes of name + layout +
  content digest, which is all that ever crosses a process boundary;
* :func:`attach_compact_graph` (worker side) maps the segment and rebuilds
  a :class:`~repro.graph.csr.CompactGraph` whose buffers are
  ``memoryview`` casts **into the mapped pages** — no copy, O(1) extra RSS
  per worker — after recomputing the content digest over the mapped bytes
  and comparing it against the handle (a corrupted or foreign segment
  fails loudly before any query touches it).

Node identifiers get the same treatment where possible: when they are
exactly ``0..n-1`` (the huge-lattice and SNAP/DIMACS integer case) the
attached graph uses a virtual ``range`` plus an identity index map, so
even the node table costs O(1) per worker.  Arbitrary hashable
identifiers fall back to a pickled node list inside the segment — each
worker then materialises the id list and index dict (O(n) small objects),
but the adjacency/weight buffers, which dominate at scale, stay mapped.

Lifecycle contract
------------------
The *owner* (the process that called :func:`share_compact_graph`) must
call :meth:`SharedGraphOwner.unlink` on every exit path — the segment is
a kernel object and outlives the process otherwise.
:class:`~repro.parallel.pool.WorkerPool` does this from ``close()``
(normal shutdown, worker crash, context-manager exception and the
``__del__`` safety net alike).  Attachers hold their mapping for the
lifetime of the rebuilt graph; the segment disappears once the owner has
unlinked it and the last mapping is gone.  Attachments are excluded from
the :mod:`multiprocessing` resource tracker so a worker exiting can never
unlink a segment the owner still serves from.
"""

from __future__ import annotations

import hashlib
import pickle
import secrets
import struct
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional, Tuple

from repro.errors import GraphValidationError
from repro.graph.csr import CompactGraph

__all__ = [
    "SharedGraphHandle",
    "SharedGraphOwner",
    "share_compact_graph",
    "attach_compact_graph",
]

#: Shared-segment format marker; bumped when the layout changes so an
#: attacher can never misread a segment written by an incompatible build.
_SHM_FORMAT = "repro-shm-csr/1"

#: Segment names are prefixed so tests (and the CI leak gate) can tell the
#: package's segments apart from anything else in /dev/shm.
_SEGMENT_PREFIX = "repro_shm_"

#: Fixed-size prelude: the byte length of the pickled header that follows.
_PRELUDE = struct.Struct("<Q")


@dataclass(frozen=True)
class SharedGraphHandle:
    """The picklable ticket a worker needs to map a shared compilation.

    Deliberately tiny — segment name, total size and the expected content
    digest — so the worker startup payload shrinks from the full CSR
    buffers to this header no matter how large the graph is.
    """

    segment_name: str
    total_bytes: int
    digest: str


class SharedGraphOwner:
    """Owner-side wrapper around the published segment.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory` object
    alive (closing it would invalidate the parent's own attachment) and
    provides the idempotent :meth:`unlink` every pool exit path calls.
    """

    def __init__(self, segment: shared_memory.SharedMemory, handle: SharedGraphHandle) -> None:
        self._segment: Optional[shared_memory.SharedMemory] = segment
        self.handle = handle

    @property
    def segment_name(self) -> str:
        """The shared segment's name (``/dev/shm`` entry on Linux)."""
        return self.handle.segment_name

    def unlink(self) -> None:
        """Close and unlink the segment.  Idempotent; never raises.

        Called from every :class:`~repro.parallel.pool.WorkerPool` exit
        path including interpreter-shutdown ``__del__``, where modules may
        already be torn down — hence the broad exception guard.
        """
        segment = self._segment
        if segment is None:
            return
        self._segment = None
        try:
            segment.close()
        except Exception:
            pass
        try:
            segment.unlink()
        except Exception:
            pass

    def __del__(self):  # pragma: no cover - GC safety net
        self.unlink()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without registering with the resource tracker.

    Python < 3.13 registers *attachments* with the resource tracker too,
    which makes a worker's tracker unlink the segment when the worker
    exits — yanking the graph out from under its siblings (bpo-39959).
    3.13 grew ``track=False`` for exactly this; on older interpreters the
    registration is suppressed for the duration of the attach.
    Suppression beats attach-then-``unregister``: the tracker's cache is a
    *set* shared (under ``fork``) by parent and children, so a second
    attacher's unregister would evict the owner's legitimate registration
    and every later unregister would stderr-spam ``KeyError`` from the
    tracker process.  Single-threaded contexts only (worker startup,
    tests) — the patch window is not thread-safe.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original_register


class _RangeIndex:
    """Identity node→index map for graphs whose node ids are ``0..n-1``.

    Duck-types the two dict operations :class:`CompactGraph` performs on
    its index map (``[]`` and ``in``) in O(1) memory, so an attached
    huge graph costs no per-worker node table at all.
    """

    __slots__ = ("_num_nodes",)

    def __init__(self, num_nodes: int) -> None:
        self._num_nodes = num_nodes

    def __getitem__(self, node) -> int:
        if (
            isinstance(node, int)
            and not isinstance(node, bool)
            and 0 <= node < self._num_nodes
        ):
            return node
        raise KeyError(node)

    def __contains__(self, node) -> bool:
        return (
            isinstance(node, int)
            and not isinstance(node, bool)
            and 0 <= node < self._num_nodes
        )

    def __len__(self) -> int:
        return self._num_nodes


def _nodes_are_range(nodes) -> bool:
    """Whether the node identifiers are exactly ``0, 1, ..., n-1``."""
    return all(
        isinstance(node, int) and not isinstance(node, bool) and node == position
        for position, node in enumerate(nodes)
    )


def share_compact_graph(graph: CompactGraph) -> SharedGraphOwner:
    """Publish ``graph``'s frozen buffers into one shared-memory segment.

    Layout: an 8-byte little-endian prelude (pickled-header length), the
    pickled header (format marker, graph metadata, node encoding, buffer
    table), then the raw buffer bytes back to back.  Undirected graphs
    share their out/in buffer triples; the header records that so the
    attached graph shares them too instead of mapping the bytes twice.

    Raises
    ------
    GraphValidationError
        When ``graph`` is not a :class:`CompactGraph` compilation (the
        layout is defined over its frozen buffers only).
    """
    if not getattr(graph, "is_compact", False):
        raise GraphValidationError(
            "share_compact_graph requires a CompactGraph compilation; "
            "compile with CompactGraph.from_graph() first"
        )
    if getattr(graph, "is_overlay", False):
        raise GraphValidationError(
            "cannot share an OverlayGraph: publish the frozen base "
            "compilation and broadcast overlay_state() to workers instead"
        )
    out_offsets, out_targets, out_weights = graph.out_csr()
    in_offsets, in_sources, in_weights = graph.in_csr()
    shares_buffers = in_offsets is out_offsets
    buffers = [
        ("out_offsets", "q", out_offsets),
        ("out_targets", "q", out_targets),
        ("out_weights", "d", out_weights),
    ]
    if not shares_buffers:
        buffers += [
            ("in_offsets", "q", in_offsets),
            ("in_sources", "q", in_sources),
            ("in_weights", "d", in_weights),
        ]

    nodes = graph.node_ids
    if _nodes_are_range(nodes):
        node_encoding: Tuple = ("range", graph.num_nodes)
        node_bytes = b""
    else:
        node_bytes = pickle.dumps(list(nodes), protocol=pickle.HIGHEST_PROTOCOL)
        node_encoding = ("pickle", len(node_bytes))

    raw = [bytes(memoryview(buffer).cast("B")) for _, _, buffer in buffers]
    table = []
    offset = 0
    for (key, typecode, _), blob in zip(buffers, raw):
        table.append((key, typecode, offset, len(blob)))
        offset += len(blob)
    body_bytes = offset + len(node_bytes)

    header = pickle.dumps(
        {
            "format": _SHM_FORMAT,
            "directed": graph.directed,
            "name": graph.name,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "source_version": graph.source_version,
            "shares_buffers": shares_buffers,
            "node_encoding": node_encoding,
            "buffers": table,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    total = _PRELUDE.size + len(header) + body_bytes
    segment = shared_memory.SharedMemory(
        name=f"{_SEGMENT_PREFIX}{secrets.token_hex(8)}",
        create=True,
        # SharedMemory refuses size=0; keep a 1-byte floor for the
        # degenerate empty-graph case.
        size=max(1, total),
    )
    try:
        view = segment.buf
        view[: _PRELUDE.size] = _PRELUDE.pack(len(header))
        cursor = _PRELUDE.size
        view[cursor : cursor + len(header)] = header
        cursor += len(header)
        for blob in raw:
            view[cursor : cursor + len(blob)] = blob
            cursor += len(blob)
        if node_bytes:
            view[cursor : cursor + len(node_bytes)] = node_bytes
        handle = SharedGraphHandle(
            segment_name=segment.name,
            total_bytes=total,
            digest=graph.content_digest(),
        )
        return SharedGraphOwner(segment, handle)
    except BaseException:
        segment.close()
        try:
            segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
        raise


def attach_compact_graph(
    handle: SharedGraphHandle,
) -> Tuple[CompactGraph, shared_memory.SharedMemory]:
    """Map the segment behind ``handle`` and rebuild the compilation.

    Returns ``(graph, segment)``; the caller must keep ``segment``
    referenced for as long as the graph is in use (the graph's buffers
    are views into its pages) and should simply drop both on exit —
    attachments are untracked, so no cleanup beyond process exit is
    needed on the worker side.

    Raises
    ------
    GraphValidationError
        When the segment does not carry this module's layout, is shorter
        than the handle promises (truncated publish), or the content
        digest recomputed over the mapped bytes does not match the
        handle — a corrupted or foreign segment must fail before any
        query runs on it.
    FileNotFoundError
        When the segment has already been unlinked (e.g. attaching after
        the owning pool closed).
    """
    segment = _attach_untracked(handle.segment_name)
    try:
        view = memoryview(segment.buf)
        if len(view) < handle.total_bytes or handle.total_bytes < _PRELUDE.size:
            raise GraphValidationError(
                f"shared graph segment {handle.segment_name!r} is truncated: "
                f"{len(view)} bytes mapped, {handle.total_bytes} promised"
            )
        (header_length,) = _PRELUDE.unpack(view[: _PRELUDE.size].tobytes())
        cursor = _PRELUDE.size
        if cursor + header_length > handle.total_bytes:
            raise GraphValidationError(
                f"shared graph segment {handle.segment_name!r} header overruns "
                "the segment; refusing to unpickle"
            )
        header = pickle.loads(view[cursor : cursor + header_length].tobytes())
        if not isinstance(header, dict) or header.get("format") != _SHM_FORMAT:
            raise GraphValidationError(
                f"shared segment {handle.segment_name!r} does not carry a "
                f"{_SHM_FORMAT} graph layout"
            )
        cursor += header_length

        extents = {}
        for key, typecode, offset, length in header["buffers"]:
            start = cursor + offset
            if start + length > handle.total_bytes:
                raise GraphValidationError(
                    f"shared graph buffer {key!r} overruns segment "
                    f"{handle.segment_name!r}; refusing to attach"
                )
            extents[key] = (typecode, start, length)
        body_end = cursor + sum(length for _, _, _, length in header["buffers"])

        encoding = header["node_encoding"]
        num_nodes = header["num_nodes"]
        if encoding[0] == "range":
            nodes = range(num_nodes)
            index_of = _RangeIndex(num_nodes)
        elif encoding[0] == "pickle":
            node_bytes = view[body_end : body_end + encoding[1]].tobytes()
            nodes = pickle.loads(node_bytes)
            index_of = {node: position for position, node in enumerate(nodes)}
        else:  # pragma: no cover - format invariant
            raise GraphValidationError(
                f"unknown node encoding {encoding[0]!r} in shared segment "
                f"{handle.segment_name!r}"
            )

        # Verify the digest over the raw mapped bytes BEFORE exporting any
        # long-lived cast views: a failed attach must leave no exported
        # pointers so the mapping closes cleanly.  This recomputes exactly
        # what CompactGraph.content_digest() would over the same content.
        check = hashlib.sha256()
        check.update(
            f"{int(header['directed'])}|{num_nodes}|{header['num_edges']}".encode()
        )
        for node in nodes:
            check.update(repr(node).encode())
            check.update(b";")
        for key in ("out_offsets", "out_targets", "out_weights"):
            _, start, length = extents[key]
            check.update(view[start : start + length].tobytes())
        digest = check.hexdigest()
        if digest != handle.digest:
            raise GraphValidationError(
                "shared graph attach failed the digest check: mapped content "
                f"digests to {digest}, handle expects {handle.digest} — the "
                "segment is corrupted or belongs to a different graph"
            )

        views = {
            key: view[start : start + length].cast(typecode)
            for key, (typecode, start, length) in extents.items()
        }
        if header["shares_buffers"]:
            views["in_offsets"] = views["out_offsets"]
            views["in_sources"] = views["out_targets"]
            views["in_weights"] = views["out_weights"]

        graph = CompactGraph(
            directed=header["directed"],
            nodes=nodes,
            out_offsets=views["out_offsets"],
            out_targets=views["out_targets"],
            out_weights=views["out_weights"],
            in_offsets=views["in_offsets"],
            in_sources=views["in_sources"],
            in_weights=views["in_weights"],
            num_edges=header["num_edges"],
            name=header["name"],
            source_version=header["source_version"],
            index_of=index_of,
            source_graph=None,
        )
        graph._digest = digest
        return graph, segment
    except BaseException:
        # A failed attach must not leave a dangling mapping; every failure
        # above happens before cast views are exported, so close() cannot
        # hit "exported pointers exist".
        view = None
        try:
            segment.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        raise
