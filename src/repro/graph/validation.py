"""Structural validation of graphs before query processing.

The query algorithms assume non-negative finite weights and a consistent
adjacency representation.  :func:`validate_graph` performs those checks once
up front so the hot loops can skip per-edge validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import GraphValidationError
from repro.graph.graph import Graph

__all__ = ["ValidationReport", "validate_graph"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of :func:`validate_graph`.

    Attributes
    ----------
    num_nodes:
        Number of nodes inspected.
    num_edges:
        Number of edges inspected.
    num_zero_weight_edges:
        Zero-weight edges are legal (the paper only requires non-negative
        weights) but they can create rank ties, so the count is surfaced.
    warnings:
        Human-readable, non-fatal observations.
    """

    num_nodes: int
    num_edges: int
    num_zero_weight_edges: int
    warnings: List[str]


def validate_graph(graph: Graph, require_nodes: int = 1) -> ValidationReport:
    """Validate ``graph`` for use with the reverse k-ranks algorithms.

    Parameters
    ----------
    graph:
        Graph to validate.
    require_nodes:
        Minimum number of nodes the graph must contain.

    Returns
    -------
    ValidationReport
        Summary of the inspection.

    Raises
    ------
    GraphValidationError
        If the graph is too small, has inconsistent adjacency structures, or
        contains invalid weights.
    """
    if graph.num_nodes < require_nodes:
        raise GraphValidationError(
            f"graph has {graph.num_nodes} nodes but at least {require_nodes} are required"
        )

    graph.check_consistency()

    warnings: List[str] = []
    zero_weight = 0
    num_edges = 0
    for source, target, weight in graph.edges():
        num_edges += 1
        if math.isnan(weight) or math.isinf(weight) or weight < 0:
            raise GraphValidationError(
                f"edge ({source!r}, {target!r}) has invalid weight {weight!r}"
            )
        if weight == 0:
            zero_weight += 1

    if zero_weight:
        warnings.append(
            f"{zero_weight} zero-weight edges present; rank ties are more likely"
        )

    isolated = sum(1 for node in graph.nodes() if graph.out_degree(node) == 0)
    if isolated:
        warnings.append(
            f"{isolated} nodes have no outgoing edges; they can never reach a query node"
        )

    return ValidationReport(
        num_nodes=graph.num_nodes,
        num_edges=num_edges,
        num_zero_weight_edges=zero_weight,
        warnings=warnings,
    )
