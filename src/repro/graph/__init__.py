"""Weighted graph substrate used by every query algorithm in :mod:`repro`.

The paper's algorithms only ever touch a graph through three operations:

* enumerate the (out-)neighbours of a node together with edge weights,
* enumerate the in-neighbours (equivalently, the out-neighbours on the
  transpose graph ``G^T``) for building the SDS-tree, and
* look up basic node metadata (degree, bichromatic class).

:class:`~repro.graph.graph.Graph` provides exactly that with adjacency-list
storage, and the rest of this subpackage supplies construction helpers,
serialisation, validation, statistics and bichromatic partitions.
"""

from repro.graph.graph import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CompactGraph
from repro.graph.overlay import OverlayGraph
from repro.graph.shm import (
    SharedGraphHandle,
    SharedGraphOwner,
    attach_compact_graph,
    share_compact_graph,
)
from repro.graph.partition import BichromaticPartition
from repro.graph.views import transpose_view
from repro.graph.validation import validate_graph
from repro.graph.statistics import GraphStatistics, compute_statistics

__all__ = [
    "Graph",
    "GraphBuilder",
    "CompactGraph",
    "OverlayGraph",
    "SharedGraphHandle",
    "SharedGraphOwner",
    "share_compact_graph",
    "attach_compact_graph",
    "BichromaticPartition",
    "transpose_view",
    "validate_graph",
    "GraphStatistics",
    "compute_statistics",
]
