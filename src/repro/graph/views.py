"""Read-only graph views.

The SDS-tree is defined on the transpose graph ``G^T``.  Rather than copying
the whole graph (as :meth:`repro.graph.Graph.transpose` does), the query
algorithms use :func:`transpose_view`, which adapts neighbour enumeration in
O(1) and shares storage with the original graph.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.graph.graph import Graph, NodeId, Weight

__all__ = ["TransposeView", "transpose_view"]


class TransposeView:
    """A lazy transpose of a :class:`~repro.graph.Graph`.

    Only the read operations used by the traversal layer are exposed:
    membership, node iteration, neighbour enumeration and degrees.  Mutating
    the underlying graph is reflected immediately in the view.
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: Graph) -> None:
        self._graph = graph

    @property
    def base(self) -> Graph:
        """The graph this view transposes."""
        return self._graph

    @property
    def directed(self) -> bool:
        """Whether the underlying graph is directed."""
        return self._graph.directed

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self._graph.num_edges

    def __contains__(self, node: NodeId) -> bool:
        return node in self._graph

    def __len__(self) -> int:
        return len(self._graph)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node identifiers."""
        return self._graph.nodes()

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` exists."""
        return self._graph.has_node(node)

    def neighbor_items(self, node: NodeId) -> Iterator[Tuple[NodeId, Weight]]:
        """Out-neighbours in the transpose = in-neighbours in the base graph."""
        return self._graph.in_neighbor_items(node)

    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Out-neighbours in the transpose graph."""
        return self._graph.in_neighbors(node)

    def in_neighbor_items(self, node: NodeId) -> Iterator[Tuple[NodeId, Weight]]:
        """In-neighbours in the transpose = out-neighbours in the base graph."""
        return self._graph.neighbor_items(node)

    def out_degree(self, node: NodeId) -> int:
        """Out-degree in the transpose graph."""
        return self._graph.in_degree(node)

    def in_degree(self, node: NodeId) -> int:
        """In-degree in the transpose graph."""
        return self._graph.out_degree(node)

    def degree(self, node: NodeId) -> int:
        """Alias for :meth:`out_degree`."""
        return self.out_degree(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<TransposeView of {self._graph!r}>"


def transpose_view(graph: Graph) -> "Graph | TransposeView":
    """Return a traversal-compatible transpose of ``graph``.

    For undirected graphs the transpose equals the graph itself, so the
    original object is returned unchanged (no wrapper overhead).  Directed
    :class:`~repro.graph.csr.CompactGraph` inputs return their O(1)
    buffer-swapping :meth:`~repro.graph.csr.CompactGraph.reverse_view`, so
    backward expansions keep hitting the array fast paths (a generic
    wrapper would hide the ``is_compact`` marker and fall back to
    duck-typed iteration).  Other directed graphs get a
    :class:`TransposeView`.
    """
    if not graph.directed:
        return graph
    if getattr(graph, "is_compact", False):
        return graph.reverse_view()
    return TransposeView(graph)
