"""Bichromatic node partitions (paper Section 6.3.4, Definitions 3 & 4).

In a bichromatic reverse k-ranks query the node set is split into two
classes: the query node belongs to one class (``V2``, e.g. supermarkets) and
the result nodes to the other (``V1``, e.g. communities).  Rank values only
count nodes of the query node's class (``V2``).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Set

from repro.errors import BichromaticError
from repro.graph.graph import Graph, NodeId

__all__ = ["BichromaticPartition"]


class BichromaticPartition:
    """A two-class labelling of a graph's nodes.

    Parameters
    ----------
    graph:
        The graph whose nodes are partitioned.
    facility_nodes:
        The nodes of class ``V2`` (the paper calls these, e.g., the
        supermarkets / store nodes).  Every other node of ``graph`` is
        assigned to class ``V1`` (the communities).

    Notes
    -----
    The paper's Definition 3 counts only ``V2`` nodes when computing
    ``Rank(s, t)`` for ``s ∈ V1, t ∈ V2``, and Definition 4 restricts the
    result set to ``V1`` nodes.  :meth:`is_counted` and :meth:`is_candidate`
    expose exactly those two predicates to the query algorithms.
    """

    __slots__ = ("_graph", "_facilities", "_communities")

    def __init__(self, graph: Graph, facility_nodes: Iterable[NodeId]) -> None:
        facilities = set(facility_nodes)
        if not facilities:
            raise BichromaticError("facility node set (V2) must not be empty")
        missing = [node for node in facilities if node not in graph]
        if missing:
            raise BichromaticError(
                f"facility nodes not present in the graph: {missing[:5]!r}"
            )
        communities = set(graph.nodes()) - facilities
        if not communities:
            raise BichromaticError(
                "community node set (V1) must not be empty; "
                "at least one node must be outside the facility set"
            )
        self._graph = graph
        self._facilities: FrozenSet[NodeId] = frozenset(facilities)
        self._communities: FrozenSet[NodeId] = frozenset(communities)

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    @property
    def facilities(self) -> FrozenSet[NodeId]:
        """Class ``V2``: the nodes queries are issued from (e.g. stores)."""
        return self._facilities

    @property
    def communities(self) -> FrozenSet[NodeId]:
        """Class ``V1``: the nodes returned as results (e.g. communities)."""
        return self._communities

    @property
    def num_facilities(self) -> int:
        """Number of ``V2`` nodes."""
        return len(self._facilities)

    @property
    def num_communities(self) -> int:
        """Number of ``V1`` nodes."""
        return len(self._communities)

    # ------------------------------------------------------------------
    def is_facility(self, node: NodeId) -> bool:
        """Whether ``node`` belongs to class ``V2``."""
        return node in self._facilities

    def is_community(self, node: NodeId) -> bool:
        """Whether ``node`` belongs to class ``V1``."""
        return node in self._communities

    def is_candidate(self, node: NodeId) -> bool:
        """Whether ``node`` may appear in a bichromatic result set (``V1``)."""
        return node in self._communities

    def is_counted(self, node: NodeId) -> bool:
        """Whether ``node`` contributes to bichromatic rank values (``V2``)."""
        return node in self._facilities

    def validate_query_node(self, node: NodeId) -> None:
        """Ensure the query node is a ``V2`` node (Definition 4)."""
        if node not in self._facilities:
            raise BichromaticError(
                f"bichromatic query node {node!r} must belong to the facility class V2"
            )

    def iter_facilities(self) -> Iterator[NodeId]:
        """Iterate over ``V2`` nodes."""
        return iter(self._facilities)

    def iter_communities(self) -> Iterator[NodeId]:
        """Iterate over ``V1`` nodes."""
        return iter(self._communities)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<BichromaticPartition facilities={self.num_facilities} "
            f"communities={self.num_communities}>"
        )
