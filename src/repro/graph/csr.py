"""Compact CSR (compressed sparse row) graph backend.

:class:`CompactGraph` is a frozen, int-indexed array view of a
:class:`~repro.graph.Graph`.  Adjacency is stored in three parallel
``array`` buffers per direction — offsets, endpoints and weights — so the
shortest-path hot loops can run over machine-typed arrays and integer node
indexes instead of hashing arbitrary node identifiers through dict-of-dict
storage on every relaxation.

Design notes
------------
* Both out- and in-adjacency are compiled (the SDS-tree is a Dijkstra tree
  on the transpose graph); for undirected graphs the two directions share
  the same buffers.
* Node indexes follow the source graph's iteration order and edge slices
  follow its adjacency iteration order, so generic (duck-typed) traversals
  over a :class:`CompactGraph` visit neighbours in exactly the same order
  as over the originating :class:`~repro.graph.Graph` — query results are
  identical between the two backends, not merely equivalent.
* The view is immutable by construction: it exposes no mutators, and it
  snapshots the source graph's :attr:`~repro.graph.Graph.version` so caches
  (e.g. the engine's per-batch compilation) can detect staleness.
* The array-specialised Dijkstra/rank fast paths live in
  :mod:`repro.traversal.csr_ops`; the public traversal entry points
  dispatch to them automatically via the :attr:`is_compact` marker.
"""

from __future__ import annotations

import hashlib
import weakref
from array import array
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import GraphValidationError, NodeNotFoundError
from repro.graph.graph import Graph, NodeId, Weight

__all__ = ["CompactGraph", "ensure_backend_fresh"]


def ensure_backend_fresh(graph, backend, exc_type=GraphValidationError) -> None:
    """Reject ``backend`` unless it is a fresh compilation of ``graph``.

    The single gate every consumer of a caller-supplied CSR compilation
    uses (SDS entry points, hub-index builds): ``backend`` must carry the
    ``is_compact`` marker, must have been compiled from ``graph`` itself
    (identity via the compilation's source weakref, when still alive), and
    must match ``graph``'s node count and mutation version.  ``exc_type``
    lets callers surface their domain exception.
    """
    if not getattr(backend, "is_compact", False):
        raise exc_type(
            "backend must be a CompactGraph compilation of the query graph"
        )
    if getattr(backend, "is_transposed", False):
        # A reverse_view() shares the source weakref, node count and
        # version of the forward compilation but has in/out adjacency
        # swapped — traversing it as the forward graph yields wrong ranks.
        raise exc_type(
            "backend is a transposed (reverse_view) compilation; pass the "
            "forward CompactGraph"
        )
    source = backend.source_graph
    if source is not None and source is not graph:
        raise exc_type(
            "backend CSR compilation was built from a different graph; "
            "recompile it for this one"
        )
    if backend.num_nodes != graph.num_nodes:
        raise exc_type(
            "backend CSR compilation does not match the query graph "
            f"({backend.num_nodes} vs {graph.num_nodes} nodes)"
        )
    version = getattr(graph, "version", None)
    if (
        version is not None
        and backend.source_version is not None
        and backend.source_version != version
    ):
        raise exc_type(
            "backend CSR compilation is stale: graph version "
            f"{version} vs compiled {backend.source_version}; recompile it"
        )


class CompactGraph:
    """A frozen CSR compilation of a :class:`~repro.graph.Graph`.

    Use :meth:`from_graph` to build one.  The class implements the read-only
    adjacency protocol the traversal layer expects (``has_node``,
    ``neighbor_items``, ``in_neighbor_items``, degrees, iteration), so every
    query algorithm accepts a :class:`CompactGraph` wherever it accepts a
    :class:`~repro.graph.Graph`; the hot loops additionally recognise the
    :attr:`is_compact` marker and switch to array-index traversal.
    """

    #: Marker consulted by the traversal fast paths (duck-typed to avoid
    #: import cycles between the graph and traversal layers).
    is_compact = True

    #: Overlay markers.  A plain compilation has no mutation side-table;
    #: :class:`~repro.graph.overlay.OverlayGraph` shadows these with per-
    #: instance row dicts (``index -> (targets array, weights array)``).
    #: The traversal fast paths probe ``csr.overlay_out`` / ``overlay_in``
    #: once per traversal, so the static-graph hot loops pay a single
    #: ``None`` check.
    is_overlay = False
    overlay_out: Optional[Dict[int, Tuple[array, array]]] = None
    overlay_in: Optional[Dict[int, Tuple[array, array]]] = None

    __slots__ = (
        "_directed",
        "name",
        "_num_edges",
        "_nodes",
        "_index_of",
        "_out_offsets",
        "_out_targets",
        "_out_weights",
        "_in_offsets",
        "_in_sources",
        "_in_weights",
        "_source_version",
        "_source_ref",
        "_transposed",
        "_digest",
    )

    def __init__(
        self,
        directed: bool,
        nodes: List[NodeId],
        out_offsets: array,
        out_targets: array,
        out_weights: array,
        in_offsets: array,
        in_sources: array,
        in_weights: array,
        num_edges: int,
        name: str = "",
        source_version: Optional[int] = None,
        index_of: Optional[Dict[NodeId, int]] = None,
        source_graph=None,
        transposed: bool = False,
    ) -> None:
        self._directed = directed
        self.name = name
        self._num_edges = num_edges
        self._nodes = nodes
        self._index_of: Dict[NodeId, int] = (
            index_of
            if index_of is not None
            else {node: index for index, node in enumerate(nodes)}
        )
        self._out_offsets = out_offsets
        self._out_targets = out_targets
        self._out_weights = out_weights
        self._in_offsets = in_offsets
        self._in_sources = in_sources
        self._in_weights = in_weights
        self._source_version = source_version
        # Weakly remember the source graph's identity so freshness checks
        # can reject a compilation of a *different* graph that happens to
        # share node count and mutation version; a weakref keeps the view
        # from pinning its source alive.
        self._source_ref = None
        if source_graph is not None:
            try:
                self._source_ref = weakref.ref(source_graph)
            except TypeError:  # source type without weakref support
                self._source_ref = None
        self._transposed = transposed
        self._digest: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "CompactGraph":
        """Compile ``graph`` into a frozen CSR view.

        Weights are copied bit-for-bit (``array('d')`` stores the same IEEE
        doubles), and adjacency order is preserved, so traversals over the
        compilation reproduce the dict backend's results exactly.
        """
        nodes = list(graph.nodes())
        index_of = {node: index for index, node in enumerate(nodes)}

        out_offsets = array("q", [0])
        out_targets = array("q")
        out_weights = array("d")
        for node in nodes:
            for neighbor, weight in graph.neighbor_items(node):
                out_targets.append(index_of[neighbor])
                out_weights.append(weight)
            out_offsets.append(len(out_targets))

        if graph.directed:
            in_offsets = array("q", [0])
            in_sources = array("q")
            in_weights = array("d")
            for node in nodes:
                for neighbor, weight in graph.in_neighbor_items(node):
                    in_sources.append(index_of[neighbor])
                    in_weights.append(weight)
                in_offsets.append(len(in_sources))
        else:
            # Undirected adjacency is symmetric; share the buffers.
            in_offsets, in_sources, in_weights = out_offsets, out_targets, out_weights

        return cls(
            directed=graph.directed,
            nodes=nodes,
            out_offsets=out_offsets,
            out_targets=out_targets,
            out_weights=out_weights,
            in_offsets=in_offsets,
            in_sources=in_sources,
            in_weights=in_weights,
            num_edges=graph.num_edges,
            name=graph.name,
            source_version=getattr(graph, "version", None),
            index_of=index_of,
            source_graph=graph,
        )

    # ------------------------------------------------------------------
    # Basic properties (mirror repro.graph.Graph)
    # ------------------------------------------------------------------
    @property
    def directed(self) -> bool:
        """Whether the compiled graph is directed."""
        return self._directed

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of (logical) edges, undirected edges counted once."""
        return self._num_edges

    @property
    def average_degree(self) -> float:
        """Average out-degree (2·|E|/|V| for undirected graphs)."""
        if not self._nodes:
            return 0.0
        factor = 1 if self._directed else 2
        return factor * self._num_edges / self.num_nodes

    @property
    def source_version(self) -> Optional[int]:
        """The source graph's :attr:`~repro.graph.Graph.version` at compile time."""
        return self._source_version

    @property
    def version(self) -> Optional[int]:
        """Alias of :attr:`source_version`.

        A frozen compilation's "mutation version" is, by construction, its
        source graph's version at compile time — exposing it under the
        :class:`~repro.graph.graph.Graph` attribute name lets consumers
        that snapshot ``graph.version`` (notably
        :class:`~repro.core.hub_index.HubIndex`) treat a
        :class:`CompactGraph` as a first-class, always-fresh graph — the
        basis of the worker-process engines in :mod:`repro.parallel`.
        """
        return self._source_version

    @property
    def source_graph(self):
        """The graph this view was compiled from, or ``None`` if collected."""
        reference = self._source_ref
        return reference() if reference is not None else None

    def content_digest(self) -> str:
        """SHA-256 digest of directedness, node identifiers and adjacency.

        Computed lazily from the raw CSR buffers (``array.tobytes`` — the
        exact IEEE doubles, not a float rendering) and cached; two
        compilations digest equal iff they traverse identically.  The
        digest survives :mod:`pickle` round trips (see :meth:`__reduce__`),
        so a worker process can cheaply verify it received the same graph
        the coordinator compiled.
        """
        if self._digest is None:
            digest = hashlib.sha256()
            digest.update(
                f"{int(self._directed)}|{len(self._nodes)}|{self._num_edges}".encode()
            )
            for node in self._nodes:
                digest.update(repr(node).encode())
                digest.update(b";")
            digest.update(self._out_offsets.tobytes())
            digest.update(self._out_targets.tobytes())
            digest.update(self._out_weights.tobytes())
            self._digest = digest.hexdigest()
        return self._digest

    @property
    def is_transposed(self) -> bool:
        """Whether this view is a :meth:`reverse_view` of its source graph."""
        return self._transposed

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index_of

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "directed" if self._directed else "undirected"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<CompactGraph{label} {kind} nodes={self.num_nodes} "
            f"edges={self.num_edges}>"
        )

    # ------------------------------------------------------------------
    # Index mapping (used by the array fast paths)
    # ------------------------------------------------------------------
    def index_of(self, node: NodeId) -> int:
        """The dense array index of ``node``."""
        try:
            return self._index_of[node]
        except KeyError as exc:
            raise NodeNotFoundError(node) from exc

    def node_at(self, index: int) -> NodeId:
        """The node identifier stored at array ``index``."""
        return self._nodes[index]

    @property
    def node_ids(self) -> List[NodeId]:
        """Index-ordered node identifiers (do not mutate)."""
        return self._nodes

    def out_csr(self) -> Tuple[array, array, array]:
        """The out-adjacency buffers ``(offsets, targets, weights)``."""
        return self._out_offsets, self._out_targets, self._out_weights

    def in_csr(self) -> Tuple[array, array, array]:
        """The in-adjacency buffers ``(offsets, sources, weights)``."""
        return self._in_offsets, self._in_sources, self._in_weights

    # ------------------------------------------------------------------
    # Read-only adjacency protocol (duck-compatible with Graph)
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node identifiers in index order."""
        return iter(self._nodes)

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._index_of

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        """Whether the edge ``(source, target)`` exists."""
        source_index = self.index_of(source)
        target_index = self.index_of(target)
        offsets, targets, _ = self._out_offsets, self._out_targets, self._out_weights
        for position in range(offsets[source_index], offsets[source_index + 1]):
            if targets[position] == target_index:
                return True
        return False

    def weight(self, source: NodeId, target: NodeId) -> Weight:
        """Weight of edge ``(source, target)``; raises if absent."""
        from repro.errors import EdgeNotFoundError

        source_index = self.index_of(source)
        target_index = self.index_of(target)
        offsets, targets, weights = (
            self._out_offsets,
            self._out_targets,
            self._out_weights,
        )
        for position in range(offsets[source_index], offsets[source_index + 1]):
            if targets[position] == target_index:
                return weights[position]
        raise EdgeNotFoundError(source, target)

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, Weight]]:
        """Iterate over edges as ``(source, target, weight)`` triples.

        Undirected edges are yielded once (smaller array index first).
        """
        offsets, targets, weights = (
            self._out_offsets,
            self._out_targets,
            self._out_weights,
        )
        for source_index, source in enumerate(self._nodes):
            for position in range(offsets[source_index], offsets[source_index + 1]):
                target_index = targets[position]
                if not self._directed and target_index < source_index:
                    continue
                yield source, self._nodes[target_index], weights[position]

    def neighbor_items(self, node: NodeId) -> Iterator[Tuple[NodeId, Weight]]:
        """Iterate over ``(out-neighbour, weight)`` pairs of ``node``."""
        index = self.index_of(node)
        offsets, targets, weights = (
            self._out_offsets,
            self._out_targets,
            self._out_weights,
        )
        nodes = self._nodes
        for position in range(offsets[index], offsets[index + 1]):
            yield nodes[targets[position]], weights[position]

    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over out-neighbours of ``node``."""
        index = self.index_of(node)
        offsets, targets = self._out_offsets, self._out_targets
        nodes = self._nodes
        for position in range(offsets[index], offsets[index + 1]):
            yield nodes[targets[position]]

    def in_neighbor_items(self, node: NodeId) -> Iterator[Tuple[NodeId, Weight]]:
        """Iterate over ``(in-neighbour, weight)`` pairs of ``node``."""
        index = self.index_of(node)
        offsets, sources, weights = (
            self._in_offsets,
            self._in_sources,
            self._in_weights,
        )
        nodes = self._nodes
        for position in range(offsets[index], offsets[index + 1]):
            yield nodes[sources[position]], weights[position]

    def in_neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over in-neighbours of ``node``."""
        index = self.index_of(node)
        offsets, sources = self._in_offsets, self._in_sources
        nodes = self._nodes
        for position in range(offsets[index], offsets[index + 1]):
            yield nodes[sources[position]]

    def out_degree(self, node: NodeId) -> int:
        """Out-degree of ``node``."""
        index = self.index_of(node)
        return self._out_offsets[index + 1] - self._out_offsets[index]

    def in_degree(self, node: NodeId) -> int:
        """In-degree of ``node``."""
        index = self.index_of(node)
        return self._in_offsets[index + 1] - self._in_offsets[index]

    def degree(self, node: NodeId) -> int:
        """Alias of :meth:`out_degree` (equal to in-degree when undirected)."""
        return self.out_degree(node)

    # ------------------------------------------------------------------
    # Pickling (the repro.parallel worker processes ship compilations)
    # ------------------------------------------------------------------
    def __reduce__(self):
        """Pickle support: ship the frozen buffers, not the source graph.

        Explicit because the default slot pickling would choke on the
        source-graph weakref.  What round-trips: directedness, node order,
        all six CSR buffers (shared out/in buffers of undirected graphs
        stay *shared* after loading — pickle memoises object identity
        within one payload), edge count, name, the compile-time
        :attr:`source_version`, the :attr:`is_transposed` marker of
        :meth:`reverse_view`\\ s, and the :meth:`content_digest` (forced
        here so receivers can verify integrity without recomputing).
        What does not: the source-graph weakref — an unpickled compilation
        reports ``source_graph`` as ``None``, and freshness checks fall
        back to node-count and version comparisons.  The node-index map is
        rebuilt on load rather than shipped (it is derivable and typically
        the payload's largest dict).

        Shared-memory mapped compilations (from
        :func:`repro.graph.shm.attach_compact_graph`) refuse to pickle:
        their buffers are views into another process's segment, and
        copying them out would silently reintroduce the per-worker private
        copy the shared mode exists to avoid.  Ship the
        :class:`~repro.graph.shm.SharedGraphHandle` instead.
        """
        if not isinstance(self._out_offsets, array):
            raise GraphValidationError(
                "cannot pickle a shared-memory mapped CompactGraph (its "
                "buffers are views into a shared segment); ship the "
                "SharedGraphHandle and attach_compact_graph() on the "
                "receiving side instead"
            )
        return (
            _rebuild_compact_graph,
            (
                self._directed,
                self._nodes,
                self._out_offsets,
                self._out_targets,
                self._out_weights,
                self._in_offsets,
                self._in_sources,
                self._in_weights,
                self._num_edges,
                self.name,
                self._source_version,
                self._transposed,
                self.content_digest(),
            ),
        )

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def reverse_view(self) -> "CompactGraph":
        """The transpose as another :class:`CompactGraph`, sharing buffers.

        The reversed view swaps the out- and in-adjacency buffer triples in
        O(1) — no copying — so backward traversals (the SDS-tree grows over
        in-edges) stay on the array fast paths:
        :func:`~repro.graph.views.transpose_view` returns this instead of a
        generic wrapper when handed a directed compact graph.  Undirected
        graphs are their own transpose and are returned unchanged.
        """
        if not self._directed:
            return self
        return CompactGraph(
            directed=True,
            nodes=self._nodes,
            out_offsets=self._in_offsets,
            out_targets=self._in_sources,
            out_weights=self._in_weights,
            in_offsets=self._out_offsets,
            in_sources=self._out_targets,
            in_weights=self._out_weights,
            num_edges=self._num_edges,
            name=f"{self.name}^T" if self.name else "",
            source_version=self._source_version,
            index_of=self._index_of,
            source_graph=self.source_graph,
            transposed=not self._transposed,
        )

    def to_graph(self) -> Graph:
        """Decompile back into a mutable :class:`~repro.graph.Graph`."""
        graph = Graph(directed=self._directed, name=self.name)
        graph.add_nodes(self._nodes)
        graph.add_edges(self.edges())
        return graph


def _rebuild_compact_graph(
    directed,
    nodes,
    out_offsets,
    out_targets,
    out_weights,
    in_offsets,
    in_sources,
    in_weights,
    num_edges,
    name,
    source_version,
    transposed,
    digest,
):
    """Unpickle target of :meth:`CompactGraph.__reduce__` (module-level so
    :mod:`pickle` can address it by reference)."""
    graph = CompactGraph(
        directed=directed,
        nodes=nodes,
        out_offsets=out_offsets,
        out_targets=out_targets,
        out_weights=out_weights,
        in_offsets=in_offsets,
        in_sources=in_sources,
        in_weights=in_weights,
        num_edges=num_edges,
        name=name,
        source_version=source_version,
        source_graph=None,
        transposed=transposed,
    )
    graph._digest = digest
    return graph
