"""CSR delta-overlay: a frozen base compilation plus a mutation side-table.

A :class:`~repro.graph.csr.CompactGraph` is immutable by design, so before
this module *any* :class:`~repro.graph.Graph` mutation forced a full
recompile of the CSR buffers (O(|V| + |E|)) — and, transitively, nuked the
bichromatic masks, the hub index and the warmed worker pool.  For the
continuous trickle of edge insertions/deletions a real service sees, that
is the wrong trade: each update touches the adjacency of two nodes.

:class:`OverlayGraph` keeps the base buffers frozen and layers a small
**full-row side-table** over them: for every node whose adjacency changed
since the base was compiled, the overlay stores that node's *complete*
current adjacency row as a pair of parallel arrays
(``targets array('q')``, ``weights array('d')``), extracted from the
mutated source graph in its own iteration order.  Untouched nodes keep
reading the base buffers.

Full rows — not edge-level patches — are what make the overlay
*bit-identical* to a from-scratch recompile: a recompiled CSR enumerates
each node's neighbours in the source graph's dict-iteration order, and a
full row extracted from the same dict enumerates identically.  Ranks,
tie-breaking (heap order follows adjacency enumeration) and every
``QueryStats`` counter therefore match a fresh compilation exactly; the
differential fuzz suite pins this.  An edge-level patch table could not
promise that: a deleted-then-reinserted edge would move to the end of a
patched row but to its dict position in a recompile.

The traversal fast paths (:mod:`repro.traversal.csr_ops`,
:mod:`repro.traversal.csr_sds`) probe ``csr.overlay_out`` /
``csr.overlay_in`` — ``None`` on plain compilations, the row dicts here —
and pay one ``dict.get`` per *settled node* only when an overlay is
active.  Overlay cost is therefore proportional to how much of the graph
actually changed; once the side-table grows past the engine's threshold
(:attr:`~repro.core.engine.ReverseKRanksEngine.overlay_threshold`), the
engine recompacts into a fresh base and the side-table empties.

Contract
--------
* The overlay is built against a **plain, forward** base compilation —
  never against another overlay (the engine recompacts instead of
  stacking) and never against a :meth:`~repro.graph.csr.CompactGraph.
  reverse_view`.
* Node *additions* append to the node table (source-graph iteration order
  appends new nodes at the end) and always carry an overlay row; node
  *removals* cannot be represented (they renumber every index) and force
  recompaction upstream.
* Overlays refuse :mod:`pickle` and shared-memory publication: workers
  hold the same frozen base (mapped or pickled once) and receive just the
  side-table via :meth:`overlay_state` / :meth:`from_state` over the
  pool's broadcast channel.
"""

from __future__ import annotations

import hashlib
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import GraphValidationError
from repro.graph.csr import CompactGraph
from repro.graph.graph import NodeId, Weight

__all__ = ["OverlayGraph"]

#: Side-table wire-format marker for :meth:`OverlayGraph.overlay_state`;
#: bumped when the payload layout changes so a worker can never misapply
#: a side-table written by an incompatible build.
_OVERLAY_FORMAT = "repro-overlay/1"


def _extract_row(
    graph, node: NodeId, index_of, items: str
) -> Tuple[array, array]:
    """One node's complete adjacency row, in source-iteration order."""
    targets = array("q")
    weights = array("d")
    for neighbor, weight in getattr(graph, items)(node):
        targets.append(index_of[neighbor])
        weights.append(weight)
    return targets, weights


class OverlayGraph(CompactGraph):
    """A :class:`CompactGraph` view of a *mutated* graph over a frozen base.

    Build with :meth:`from_base` (coordinator side, from the live
    :class:`~repro.graph.Graph`) or :meth:`from_state` (worker side, from a
    broadcast side-table).  Implements the same read-only adjacency
    protocol as the base class; every accessor consults the row dicts
    first and falls back to the base buffers.
    """

    is_overlay = True

    __slots__ = ("overlay_out", "overlay_in", "_base", "_appended")

    def __init__(
        self,
        base: CompactGraph,
        nodes: List[NodeId],
        index_of: Dict[NodeId, int],
        out_rows: Dict[int, Tuple[array, array]],
        in_rows: Dict[int, Tuple[array, array]],
        num_edges: int,
        source_version: Optional[int],
        source_graph=None,
        appended: Iterable[NodeId] = (),
        transposed: bool = False,
    ) -> None:
        if base.is_overlay:
            raise GraphValidationError(
                "overlays do not stack: recompact the existing overlay into "
                "a fresh base before layering new mutations"
            )
        out_offsets, out_targets, out_weights = base.out_csr()
        in_offsets, in_sources, in_weights = base.in_csr()
        super().__init__(
            directed=base.directed,
            nodes=nodes,
            out_offsets=out_offsets,
            out_targets=out_targets,
            out_weights=out_weights,
            in_offsets=in_offsets,
            in_sources=in_sources,
            in_weights=in_weights,
            num_edges=num_edges,
            name=base.name,
            source_version=source_version,
            index_of=index_of,
            source_graph=source_graph,
            transposed=transposed,
        )
        self.overlay_out = out_rows
        self.overlay_in = in_rows
        self._base = base
        self._appended = list(appended)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_base(
        cls,
        graph,
        base: CompactGraph,
        touched: Iterable[NodeId],
        appended: Iterable[NodeId] = (),
    ) -> "OverlayGraph":
        """Overlay the mutations of ``graph`` onto its older compilation.

        ``touched`` names every node whose adjacency changed since ``base``
        was compiled from ``graph``; ``appended`` lists nodes added since
        then, *in insertion order* (they occupy the indexes after the base
        node table).  Appended nodes are implicitly touched.  The caller —
        normally :meth:`~repro.core.engine.ReverseKRanksEngine.
        apply_updates`, which tracks both sets — must not have removed any
        node since the base compile.
        """
        if base.is_transposed:
            raise GraphValidationError(
                "cannot overlay a transposed (reverse_view) base; pass the "
                "forward compilation"
            )
        if base.directed != graph.directed:
            raise GraphValidationError(
                "overlay base and source graph disagree on directedness"
            )
        appended = list(appended)
        base_nodes = base.node_ids
        if graph.num_nodes != len(base_nodes) + len(appended):
            raise GraphValidationError(
                "overlay node accounting is inconsistent: base has "
                f"{len(base_nodes)} nodes + {len(appended)} appended, but "
                f"the graph has {graph.num_nodes} (node removal requires "
                "recompaction)"
            )
        if appended:
            nodes = list(base_nodes) + appended
            index_of = {node: index for index, node in enumerate(nodes)}
        else:
            nodes = base_nodes
            index_of = base._index_of

        touched_nodes = set(touched)
        touched_nodes.update(appended)
        out_rows: Dict[int, Tuple[array, array]] = {}
        for node in touched_nodes:
            out_rows[index_of[node]] = _extract_row(
                graph, node, index_of, "neighbor_items"
            )
        if graph.directed:
            in_rows: Dict[int, Tuple[array, array]] = {}
            for node in touched_nodes:
                in_rows[index_of[node]] = _extract_row(
                    graph, node, index_of, "in_neighbor_items"
                )
        else:
            in_rows = out_rows

        return cls(
            base=base,
            nodes=nodes,
            index_of=index_of,
            out_rows=out_rows,
            in_rows=in_rows,
            num_edges=graph.num_edges,
            source_version=getattr(graph, "version", None),
            source_graph=graph,
            appended=appended,
        )

    # ------------------------------------------------------------------
    # Side-table transport (worker broadcast)
    # ------------------------------------------------------------------
    def overlay_state(self) -> Dict[str, object]:
        """The picklable side-table a worker needs to mirror this overlay.

        Rows are keyed by dense node index and carry ``array`` buffers, so
        the payload stays proportional to the mutation set, not the graph.
        The base digest pins the payload to one exact base compilation:
        :meth:`from_state` refuses a side-table built over different
        buffers.
        """
        return {
            "format": _OVERLAY_FORMAT,
            "base_digest": self._base.content_digest(),
            "directed": self.directed,
            "version": self.source_version,
            "num_edges": self.num_edges,
            "appended": list(self._appended),
            "out_rows": self.overlay_out,
            "in_rows": (
                None if self.overlay_in is self.overlay_out else self.overlay_in
            ),
        }

    @classmethod
    def from_state(
        cls, base: CompactGraph, state: Dict[str, object]
    ) -> "OverlayGraph":
        """Rebuild the overlay a coordinator broadcast, over a local base.

        ``base`` is the worker's own copy of the frozen base compilation
        (shared-memory mapped or unpickled at startup); it must digest
        equal to the coordinator's, which guarantees identical node
        indexing and therefore a bit-identical overlay.
        """
        if not isinstance(state, dict) or state.get("format") != _OVERLAY_FORMAT:
            raise GraphValidationError(
                f"unrecognised overlay side-table payload: "
                f"{state.get('format') if isinstance(state, dict) else state!r}"
            )
        if state["base_digest"] != base.content_digest():
            raise GraphValidationError(
                "overlay side-table was built over a different base "
                "compilation (content digest mismatch); refusing to apply"
            )
        if bool(state["directed"]) != base.directed:
            raise GraphValidationError(
                "overlay side-table directedness does not match the base"
            )
        appended = list(state["appended"])
        base_nodes = base.node_ids
        if appended:
            nodes = list(base_nodes) + appended
            index_of = {node: index for index, node in enumerate(nodes)}
        else:
            nodes = base_nodes
            index_of = base._index_of
        out_rows = dict(state["out_rows"])
        in_rows = state["in_rows"]
        in_rows = out_rows if in_rows is None else dict(in_rows)
        return cls(
            base=base,
            nodes=nodes,
            index_of=index_of,
            out_rows=out_rows,
            in_rows=in_rows,
            num_edges=int(state["num_edges"]),
            source_version=state["version"],
            source_graph=None,
            appended=appended,
        )

    # ------------------------------------------------------------------
    # Overlay introspection
    # ------------------------------------------------------------------
    @property
    def base(self) -> CompactGraph:
        """The frozen base compilation the side-table patches."""
        return self._base

    @property
    def overlay_rows(self) -> int:
        """How many node rows the side-table holds (the recompaction size)."""
        count = len(self.overlay_out)
        if self.overlay_in is not self.overlay_out:
            count = max(count, len(self.overlay_in))
        return count

    @property
    def appended_nodes(self) -> List[NodeId]:
        """Nodes added since the base compile, in index order (do not mutate)."""
        return self._appended

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "directed" if self.directed else "undirected"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<OverlayGraph{label} {kind} nodes={self.num_nodes} "
            f"edges={self.num_edges} overlay_rows={self.overlay_rows}>"
        )

    # ------------------------------------------------------------------
    # Content digest / pickling
    # ------------------------------------------------------------------
    def content_digest(self) -> str:
        """Digest of the base digest plus the side-table.

        Self-consistent (two identical overlays digest equal) but **not**
        comparable to a from-scratch compilation's digest — the bytes are
        laid out differently even though traversal is identical.  Nothing
        transports overlays by digest: workers verify the *base* digest
        and rebuild the side-table deterministically.
        """
        if self._digest is None:
            digest = hashlib.sha256()
            digest.update(f"{_OVERLAY_FORMAT}|".encode())
            digest.update(self._base.content_digest().encode())
            digest.update(
                f"|{self._num_edges}|{self._source_version}|"
                f"{len(self._nodes)}|".encode()
            )
            for node in self._appended:
                digest.update(repr(node).encode())
                digest.update(b";")
            for row_dict in (self.overlay_out, self.overlay_in):
                for index in sorted(row_dict):
                    targets, weights = row_dict[index]
                    digest.update(str(index).encode())
                    digest.update(targets.tobytes())
                    digest.update(weights.tobytes())
                digest.update(b"#")
                if self.overlay_in is self.overlay_out:
                    break
            self._digest = digest.hexdigest()
        return self._digest

    def __reduce__(self):
        raise GraphValidationError(
            "cannot pickle an OverlayGraph: workers already hold the frozen "
            "base; broadcast overlay_state() and rebuild with "
            "OverlayGraph.from_state() on the receiving side"
        )

    # ------------------------------------------------------------------
    # Read-only adjacency protocol (row-aware overrides)
    # ------------------------------------------------------------------
    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        source_index = self.index_of(source)
        target_index = self.index_of(target)
        row = self.overlay_out.get(source_index)
        if row is not None:
            return target_index in row[0]
        offsets, targets, _ = (
            self._out_offsets,
            self._out_targets,
            self._out_weights,
        )
        for position in range(offsets[source_index], offsets[source_index + 1]):
            if targets[position] == target_index:
                return True
        return False

    def weight(self, source: NodeId, target: NodeId) -> Weight:
        from repro.errors import EdgeNotFoundError

        source_index = self.index_of(source)
        target_index = self.index_of(target)
        row = self.overlay_out.get(source_index)
        if row is not None:
            targets, weights = row
            for position in range(len(targets)):
                if targets[position] == target_index:
                    return weights[position]
            raise EdgeNotFoundError(source, target)
        offsets, targets, weights = (
            self._out_offsets,
            self._out_targets,
            self._out_weights,
        )
        for position in range(offsets[source_index], offsets[source_index + 1]):
            if targets[position] == target_index:
                return weights[position]
        raise EdgeNotFoundError(source, target)

    def _out_span(self, index: int):
        """``(targets, weights, start, stop)`` for one node's out-row."""
        row = self.overlay_out.get(index)
        if row is not None:
            targets, weights = row
            return targets, weights, 0, len(targets)
        offsets = self._out_offsets
        return (
            self._out_targets,
            self._out_weights,
            offsets[index],
            offsets[index + 1],
        )

    def _in_span(self, index: int):
        """``(sources, weights, start, stop)`` for one node's in-row."""
        row = self.overlay_in.get(index)
        if row is not None:
            sources, weights = row
            return sources, weights, 0, len(sources)
        offsets = self._in_offsets
        return (
            self._in_sources,
            self._in_weights,
            offsets[index],
            offsets[index + 1],
        )

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, Weight]]:
        nodes = self._nodes
        for source_index, source in enumerate(nodes):
            targets, weights, start, stop = self._out_span(source_index)
            for position in range(start, stop):
                target_index = targets[position]
                if not self._directed and target_index < source_index:
                    continue
                yield source, nodes[target_index], weights[position]

    def neighbor_items(self, node: NodeId) -> Iterator[Tuple[NodeId, Weight]]:
        index = self.index_of(node)
        targets, weights, start, stop = self._out_span(index)
        nodes = self._nodes
        for position in range(start, stop):
            yield nodes[targets[position]], weights[position]

    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        index = self.index_of(node)
        targets, _, start, stop = self._out_span(index)
        nodes = self._nodes
        for position in range(start, stop):
            yield nodes[targets[position]]

    def in_neighbor_items(self, node: NodeId) -> Iterator[Tuple[NodeId, Weight]]:
        index = self.index_of(node)
        sources, weights, start, stop = self._in_span(index)
        nodes = self._nodes
        for position in range(start, stop):
            yield nodes[sources[position]], weights[position]

    def in_neighbors(self, node: NodeId) -> Iterator[NodeId]:
        index = self.index_of(node)
        sources, _, start, stop = self._in_span(index)
        nodes = self._nodes
        for position in range(start, stop):
            yield nodes[sources[position]]

    def out_degree(self, node: NodeId) -> int:
        index = self.index_of(node)
        row = self.overlay_out.get(index)
        if row is not None:
            return len(row[0])
        return self._out_offsets[index + 1] - self._out_offsets[index]

    def in_degree(self, node: NodeId) -> int:
        index = self.index_of(node)
        row = self.overlay_in.get(index)
        if row is not None:
            return len(row[0])
        return self._in_offsets[index + 1] - self._in_offsets[index]

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def reverse_view(self) -> "CompactGraph":
        """The transpose, swapping both the base triples and the row dicts."""
        if not self._directed:
            return self
        return OverlayGraph(
            base=self._base.reverse_view(),
            nodes=self._nodes,
            index_of=self._index_of,
            out_rows=self.overlay_in,
            in_rows=self.overlay_out,
            num_edges=self._num_edges,
            source_version=self._source_version,
            source_graph=self.source_graph,
            appended=self._appended,
            transposed=not self._transposed,
        )
