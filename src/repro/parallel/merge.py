"""Deterministic reassembly of sharded batch results.

Workers finish in nondeterministic order; this module makes the batch
outcome independent of that order.  Results are slotted back by the batch
positions their shard carried, the per-query
:class:`~repro.core.types.QueryStats` are aggregated into one batch-level
view, and the workers' hub-index learning deltas are returned sorted by
shard index — so a last-writer-wins merge into the master index applies
them in the same order every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.types import QueryResult, QueryStats
from repro.errors import ParallelExecutionError

__all__ = ["ShardOutput", "ParallelBatchResult", "merge_shard_outputs"]


@dataclass(frozen=True)
class ShardOutput:
    """What one worker returned for one shard of a batch."""

    shard_index: int
    positions: Tuple[int, ...]
    results: Sequence[QueryResult]
    delta: Optional[object] = None  # a HubIndexDelta when learning was logged


@dataclass
class ParallelBatchResult:
    """A merged parallel batch: ordered results plus batch-level aggregates."""

    #: One result per query, in the original batch order.
    results: List[QueryResult]
    #: All per-query counters accumulated into one batch-level QueryStats.
    stats: QueryStats
    #: Learning deltas in shard order (empty unless delta collection was on).
    deltas: List[object] = field(default_factory=list)
    #: How many shards carried work.
    shards: int = 0


def merge_shard_outputs(
    outputs: Sequence[ShardOutput], batch_size: int
) -> ParallelBatchResult:
    """Merge shard outputs (any arrival order) into one ordered batch result.

    Raises
    ------
    ParallelExecutionError
        When the shard outputs do not cover each of the ``batch_size``
        positions exactly once, or a shard's positions and results
        disagree in length — either means results would be misattributed
        to queries, which must never pass silently.
    """
    slots: List[Optional[QueryResult]] = [None] * batch_size
    filled = 0
    stats = QueryStats()
    ordered = sorted(outputs, key=lambda output: output.shard_index)
    for output in ordered:
        if len(output.positions) != len(output.results):
            raise ParallelExecutionError(
                f"shard {output.shard_index} returned {len(output.results)} "
                f"results for {len(output.positions)} positions"
            )
        for position, result in zip(output.positions, output.results):
            if not 0 <= position < batch_size:
                raise ParallelExecutionError(
                    f"shard {output.shard_index} returned out-of-range batch "
                    f"position {position} (batch size {batch_size})"
                )
            if slots[position] is not None:
                raise ParallelExecutionError(
                    f"batch position {position} was returned by two shards"
                )
            slots[position] = result
            filled += 1
            stats.merge(result.stats)
    if filled != batch_size:
        missing = [position for position, slot in enumerate(slots) if slot is None]
        raise ParallelExecutionError(
            f"shard outputs left {len(missing)} batch positions unanswered "
            f"(first missing: {missing[:5]})"
        )
    deltas = [output.delta for output in ordered if output.delta is not None]
    return ParallelBatchResult(
        results=slots, stats=stats, deltas=deltas, shards=len(ordered)
    )
