"""Deterministic reassembly of sharded batch results.

Workers finish in nondeterministic order; this module makes the batch
outcome independent of that order.  Shard results arrive either as plain
:class:`~repro.core.types.QueryResult` sequences (in-process callers, unit
tests) or — the pool's wire path — as flat
:class:`~repro.parallel.codec.ShardResultBlock` buffers, which are
**validated against their header first** and only then decoded back into
rich results, so a truncated or corrupted buffer fails loudly before any
position is trusted.  Results are slotted back by the batch positions
their shard carried, the per-query
:class:`~repro.core.types.QueryStats` (or the shards' pre-aggregated
stats, under ``stats="aggregate"``) are combined into one batch-level
view, and the workers' hub-index learning deltas are returned sorted by
shard index — so a last-writer-wins merge into the master index applies
them in the same order every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.types import QueryResult, QueryStats
from repro.errors import ParallelExecutionError
from repro.parallel.codec import ShardResultBlock, ShardResultCodec

__all__ = ["ShardOutput", "ParallelBatchResult", "merge_shard_outputs"]


@dataclass(frozen=True)
class ShardOutput:
    """What one worker returned for one shard of a batch.

    ``results`` is either a decoded result sequence or an encoded
    :class:`ShardResultBlock`; in the latter case ``queries`` must carry
    the shard's query nodes **from the parent's plan** (the decode never
    trusts worker-reported identifiers).
    """

    shard_index: int
    positions: Tuple[int, ...]
    results: Union[Sequence[QueryResult], ShardResultBlock]
    delta: Optional[object] = None  # a HubIndexDelta when learning was logged
    queries: Optional[Tuple] = None  # plan-side query nodes (encoded shards)
    trace: Optional[dict] = None  # worker-side span tree (traced batches)


@dataclass
class ParallelBatchResult:
    """A merged parallel batch: ordered results plus batch-level aggregates."""

    #: One result per query, in the original batch order.
    results: List[QueryResult]
    #: All per-query (or shard-aggregated) counters accumulated into one
    #: batch-level QueryStats; ``None`` when the batch ran ``stats="none"``
    #: — deliberately not a zeroed QueryStats, which would misread as "the
    #: batch did no work".
    stats: Optional[QueryStats]
    #: Learning deltas in shard order (empty unless delta collection was on).
    deltas: List[object] = field(default_factory=list)
    #: How many shards carried work.
    shards: int = 0
    #: Flat payload bytes that crossed the process boundary (codec-reported;
    #: 0 when every shard arrived as plain objects).
    ipc_bytes: int = 0
    #: Worker-side span trees in shard order (empty unless the batch was
    #: traced); the engine grafts them under its dispatch span.
    worker_traces: List[dict] = field(default_factory=list)


def merge_shard_outputs(
    outputs: Sequence[ShardOutput],
    batch_size: int,
    csr=None,
) -> ParallelBatchResult:
    """Merge shard outputs (any arrival order) into one ordered batch result.

    ``csr`` is the shared :class:`~repro.graph.csr.CompactGraph`
    compilation, required to decode encoded shards (their entry nodes
    travel as CSR indexes).

    For every encoded shard the codec header is validated **before** the
    shard's positions are used for anything — length lies, truncated
    buffers and out-of-range node indexes all raise here rather than
    silently misattributing results to queries.

    Raises
    ------
    ParallelExecutionError
        When a shard's block fails validation, the shard outputs do not
        cover each of the ``batch_size`` positions exactly once, or a
        shard's positions and results disagree in length.
    """
    slots: List[Optional[QueryResult]] = [None] * batch_size
    filled = 0
    stats: Optional[QueryStats] = QueryStats()
    stats_dropped = False
    ipc_bytes = 0
    ordered = sorted(outputs, key=lambda output: output.shard_index)
    for output in ordered:
        results = output.results
        if isinstance(results, ShardResultBlock):
            block = results
            # Header first: nothing from this shard — positions included —
            # is trusted until the flat buffers are internally consistent.
            block.validate()
            if len(output.positions) != block.num_queries:
                raise ParallelExecutionError(
                    f"shard {output.shard_index} reported "
                    f"{len(output.positions)} positions but its result "
                    f"block carries {block.num_queries} queries"
                )
            if csr is None:
                raise ParallelExecutionError(
                    "encoded shard outputs need the graph compilation to "
                    "decode; pass csr= to merge_shard_outputs"
                )
            if output.queries is None:
                raise ParallelExecutionError(
                    f"shard {output.shard_index} is encoded but carries no "
                    "plan-side query nodes to rebuild results against"
                )
            results = ShardResultCodec.decode(
                block, csr, output.queries, validated=True
            )
            ipc_bytes += block.payload_bytes()
            if block.stats_mode == "aggregate":
                stats.merge(block.shard_stats)
            elif block.stats_mode == "none":
                stats_dropped = True
            shard_stats_merged = block.stats_mode != "per-query"
        else:
            shard_stats_merged = False
        if len(output.positions) != len(results):
            raise ParallelExecutionError(
                f"shard {output.shard_index} returned {len(results)} "
                f"results for {len(output.positions)} positions"
            )
        for position, result in zip(output.positions, results):
            if not 0 <= position < batch_size:
                raise ParallelExecutionError(
                    f"shard {output.shard_index} returned out-of-range batch "
                    f"position {position} (batch size {batch_size})"
                )
            if slots[position] is not None:
                raise ParallelExecutionError(
                    f"batch position {position} was returned by two shards"
                )
            slots[position] = result
            filled += 1
            if not shard_stats_merged:
                stats.merge(result.stats)
    if filled != batch_size:
        missing = [position for position, slot in enumerate(slots) if slot is None]
        raise ParallelExecutionError(
            f"shard outputs left {len(missing)} batch positions unanswered "
            f"(first missing: {missing[:5]})"
        )
    deltas = [output.delta for output in ordered if output.delta is not None]
    traces = [output.trace for output in ordered if output.trace is not None]
    return ParallelBatchResult(
        results=slots,
        stats=None if stats_dropped else stats,
        deltas=deltas,
        shards=len(ordered),
        ipc_bytes=ipc_bytes,
        worker_traces=traces,
    )
