"""Shard planning: how a query batch is split across worker processes.

A :class:`ShardPlanner` turns an ordered batch of query nodes into a
:class:`ShardPlan` — one :class:`Shard` per worker slot, each carrying the
queries it should evaluate *and their positions in the original batch*, so
the merger can reassemble results in input order no matter which shard
finishes first.

Three chunking policies are provided (:class:`ShardPolicy`):

* ``round_robin`` — position ``i`` goes to shard ``i mod n``.  Zero
  planning cost, good balance for homogeneous batches; the default.
* ``cost`` — queries are ordered by a per-query cost estimate and placed
  greedily on the currently lightest shard (longest-processing-time
  scheduling).  The estimate combines the query node's degree (low-degree
  nodes sit in sparse regions where the SDS-tree must grow deeper before
  finding ``k`` candidates) with hub proximity (queries the hub index
  already holds Reverse-Rank-Dictionary seeds for start with a tight
  ``kRank`` and finish early).
* ``affinity`` — a query always lands on the same shard, decided by a
  seed-stable hash of the node identifier (``zlib.crc32`` of its ``repr``,
  *not* the builtin ``hash``, which is randomised per process for
  strings).  Repeated queries therefore hit the same worker, whose hub
  index has already learned them (Algorithm 4) — the parallel analogue of
  the engine's LRU result cache.

All policies are deterministic: the same batch, graph and index state
produce the same plan, which keeps parallel runs reproducible.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple, Union

from repro.errors import ParallelExecutionError, is_positive_int

NodeId = Hashable

__all__ = ["ShardPolicy", "Shard", "ShardPlan", "ShardPlanner", "chunk_evenly"]


def chunk_evenly(items: Sequence, parts: int) -> List[List]:
    """Split ``items`` into ``parts`` contiguous, near-equal chunks.

    Order-preserving by construction: concatenating the chunks reproduces
    ``items`` exactly.  The parallel hub-index build depends on that —
    dispatching *contiguous* hub runs and merging the resulting deltas in
    chunk order replays the sequential build's ``record_rank`` call
    sequence verbatim, which is what makes the merged index bit-identical
    (not merely equivalent) to a sequentially built one.  Chunk sizes
    differ by at most one; trailing chunks may be empty when
    ``parts > len(items)``.
    """
    if not is_positive_int(parts):
        raise ParallelExecutionError(
            f"parts must be a positive integer, got {parts!r}"
        )
    sequence = list(items)
    base, extra = divmod(len(sequence), parts)
    chunks: List[List] = []
    start = 0
    for part in range(parts):
        size = base + (1 if part < extra else 0)
        chunks.append(sequence[start : start + size])
        start += size
    return chunks


class ShardPolicy(str, enum.Enum):
    """Identifier of a batch-chunking policy."""

    ROUND_ROBIN = "round_robin"
    COST = "cost"
    AFFINITY = "affinity"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Shard:
    """One worker's slice of a batch: queries plus their batch positions."""

    index: int
    positions: Tuple[int, ...]
    queries: Tuple[NodeId, ...]

    def __len__(self) -> int:
        return len(self.queries)


@dataclass(frozen=True)
class ShardPlan:
    """The full assignment of a batch to ``num_shards`` worker slots."""

    policy: ShardPolicy
    num_shards: int
    shards: Tuple[Shard, ...]

    @property
    def num_queries(self) -> int:
        """Total queries across all shards."""
        return sum(len(shard) for shard in self.shards)

    def non_empty(self) -> List[Shard]:
        """The shards that actually carry work."""
        return [shard for shard in self.shards if shard.queries]

    def skew(self) -> float:
        """Largest shard size over the ideal even share (>= 1.0).

        ``1.0`` is a perfectly balanced plan; ``2.0`` means the busiest
        worker got twice its fair share of queries, so (cost estimates
        aside) the batch's critical path is ~2x the balanced one.  The
        engine observes this per plan into the
        ``repro_shard_skew_ratio{policy=...}`` histogram, the raw
        material for the ROADMAP's policy-picking cost model.
        """
        total = self.num_queries
        if total == 0 or self.num_shards <= 0:
            return 1.0
        ideal = total / self.num_shards
        return max(len(shard) for shard in self.shards) / ideal


class ShardPlanner:
    """Deterministically assigns a query batch to worker slots.

    Parameters
    ----------
    num_shards:
        How many slots (normally the pool's worker count) to plan for.
    policy:
        A :class:`ShardPolicy` or its string value.
    """

    def __init__(
        self,
        num_shards: int,
        policy: Union[ShardPolicy, str] = ShardPolicy.ROUND_ROBIN,
    ) -> None:
        if not is_positive_int(num_shards):
            raise ParallelExecutionError(
                f"num_shards must be a positive integer, got {num_shards!r}"
            )
        try:
            self._policy = ShardPolicy(policy)
        except ValueError:
            raise ParallelExecutionError(
                f"unknown shard policy {policy!r}; expected one of "
                f"{[p.value for p in ShardPolicy]}"
            ) from None
        self._num_shards = num_shards

    @property
    def num_shards(self) -> int:
        """How many worker slots plans are built for."""
        return self._num_shards

    @property
    def policy(self) -> ShardPolicy:
        """The chunking policy."""
        return self._policy

    # ------------------------------------------------------------------
    def plan(
        self,
        queries: Sequence[NodeId],
        graph=None,
        index=None,
    ) -> ShardPlan:
        """Assign ``queries`` (an ordered batch) to shards.

        ``graph`` and ``index`` feed the ``cost`` policy's estimate (a
        degree lookup and a Reverse-Rank-Dictionary count per query) and
        are ignored by the other policies; either may be ``None``, in
        which case that cost signal degrades gracefully.
        """
        batch = list(queries)
        if self._policy is ShardPolicy.ROUND_ROBIN:
            buckets = self._round_robin(batch)
        elif self._policy is ShardPolicy.AFFINITY:
            buckets = self._affinity(batch)
        else:
            buckets = self._cost_balanced(batch, graph, index)
        shards = tuple(
            Shard(
                index=shard_index,
                positions=tuple(position for position, _ in bucket),
                queries=tuple(query for _, query in bucket),
            )
            for shard_index, bucket in enumerate(buckets)
        )
        return ShardPlan(
            policy=self._policy, num_shards=self._num_shards, shards=shards
        )

    # ------------------------------------------------------------------
    def _round_robin(self, batch) -> List[List[Tuple[int, NodeId]]]:
        buckets: List[List[Tuple[int, NodeId]]] = [
            [] for _ in range(self._num_shards)
        ]
        for position, query in enumerate(batch):
            buckets[position % self._num_shards].append((position, query))
        return buckets

    def _affinity(self, batch) -> List[List[Tuple[int, NodeId]]]:
        buckets: List[List[Tuple[int, NodeId]]] = [
            [] for _ in range(self._num_shards)
        ]
        for position, query in enumerate(batch):
            buckets[self.affinity_shard(query)].append((position, query))
        return buckets

    def affinity_shard(self, query: NodeId) -> int:
        """The shard the affinity policy pins ``query`` to.

        Stable across processes and interpreter runs (unlike builtin
        ``hash``), so a resharded service keeps routing a repeated query
        to the worker that has already learned it.
        """
        return zlib.crc32(repr(query).encode("utf-8")) % self._num_shards

    def _cost_balanced(self, batch, graph, index) -> List[List[Tuple[int, NodeId]]]:
        costs = [
            (self.estimate_cost(query, graph, index), position, query)
            for position, query in enumerate(batch)
        ]
        # Longest-processing-time: heaviest first onto the lightest shard.
        # Ties break on batch position (stable) and then lowest shard
        # index, keeping the plan deterministic.
        costs.sort(key=lambda item: (-item[0], item[1]))
        loads = [0.0] * self._num_shards
        buckets: List[List[Tuple[int, NodeId]]] = [
            [] for _ in range(self._num_shards)
        ]
        for cost, position, query in costs:
            lightest = min(range(self._num_shards), key=lambda s: (loads[s], s))
            loads[lightest] += cost
            buckets[lightest].append((position, query))
        # Within each shard, evaluate in original batch order (cache- and
        # learning-friendly, and deterministic).
        for bucket in buckets:
            bucket.sort(key=lambda item: item[0])
        return buckets

    @staticmethod
    def estimate_cost(query: NodeId, graph=None, index=None) -> float:
        """Relative cost estimate of one reverse k-ranks query.

        Baseline 1.0 per query, inflated by up to +1.0 for low-degree
        query nodes (deeper SDS-trees) and deflated by Reverse-Rank
        seeds the hub index already holds for the query (early ``kRank``
        tightening).  The absolute scale is irrelevant — only ratios
        steer the balancing.
        """
        cost = 1.0
        if graph is not None:
            try:
                degree = graph.degree(query)
            except Exception:
                degree = 0
            cost += 1.0 / (1.0 + degree)
        if index is not None:
            counter = getattr(index, "reverse_rank_count", None)
            if counter is not None:
                cost /= 1.0 + counter(query)
        return cost
