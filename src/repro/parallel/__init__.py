"""Sharded multiprocess query execution with mergeable hub-index learning.

Reverse k-ranks queries are independent of each other, and the compact CSR
backend (:class:`~repro.graph.csr.CompactGraph`) is frozen, array-backed
and picklable — which makes batches embarrassingly parallel *except* for
one piece of shared mutable state: the hub index keeps learning from every
indexed refinement (Algorithm 4).  This package supplies the execution
substrate that exploits the former and reconciles the latter:

* :mod:`repro.parallel.planner` — :class:`ShardPlanner`, deterministic
  batch chunking (round-robin, cost-estimated, cache-affinity);
* :mod:`repro.parallel.worker` — the spawn-safe worker process entry
  point (a private engine per worker, rebuilt from one pickled graph
  compilation + hub-index snapshot);
* :mod:`repro.parallel.pool` — :class:`WorkerPool`, the persistent
  process pool with startup barrier, typed crash surfacing and graceful
  shutdown;
* :mod:`repro.parallel.codec` — :class:`ShardResultCodec`, the flat-array
  transport of shard results (ranks as doubles, entry nodes as CSR
  indexes, per-query offsets, stats payload selected by the ``stats``
  knob) that replaced per-object result pickling;
* :mod:`repro.parallel.merge` — deterministic reassembly of shard
  results in input order (decoding the flat blocks against the parent's
  compilation, header-validated first), with aggregated
  :class:`~repro.core.types.QueryStats` and the workers' learning deltas
  ready for :meth:`~repro.core.hub_index.HubIndex.merge_delta`.

The high-level entry point is
:meth:`repro.core.engine.ReverseKRanksEngine.query_many` with
``workers=N`` — the engine owns the pool, keys it by graph version, and
merges the learned rank deltas back into its master index after every
indexed batch.
"""

from repro.parallel.codec import ShardResultBlock, ShardResultCodec
from repro.parallel.merge import (
    ParallelBatchResult,
    ShardOutput,
    merge_shard_outputs,
)
from repro.parallel.planner import Shard, ShardPlan, ShardPlanner, ShardPolicy
from repro.parallel.pool import WorkerPool

__all__ = [
    "Shard",
    "ShardPlan",
    "ShardPlanner",
    "ShardPolicy",
    "ShardOutput",
    "ShardResultBlock",
    "ShardResultCodec",
    "ParallelBatchResult",
    "merge_shard_outputs",
    "WorkerPool",
]
