"""Flat-array transport of shard results (the zero-copy result path).

The pool used to pickle one full :class:`~repro.core.types.QueryResult` —
entries, per-query :class:`~repro.core.types.QueryStats`, label — per
query back through the result queue.  At smoke/default sizes that
per-object transport *dominates* parallel batches (the committed
``speedup_vs_serial`` ≪ 1 rows).  Like Tuffy's materialisation of
inference state into flat relational buffers, the fix is to ship a whole
shard as a handful of dense ``array`` buffers and rebuild the rich
objects only at the parent-side boundary.

Wire format (one :class:`ShardResultBlock` per shard)
-----------------------------------------------------
header
    ``num_queries``, ``k``, ``algorithm`` label (shared by the batch) and
    the ``stats_mode`` the block was encoded under.
offsets : ``array('q')``, length ``num_queries + 1``
    Query ``i``'s result entries occupy ``[offsets[i], offsets[i+1])`` of
    the entry buffers; ``offsets[0] == 0`` and ``offsets[-1]`` equals the
    total entry count.
ranks : ``array('d')``
    One rank value per entry, in the result's (already deterministic)
    entry order.
nodes : ``array('q')``
    The entry nodes as **CSR node indexes** of the shared
    :class:`~repro.graph.csr.CompactGraph` compilation — both sides hold
    digest-verified copies of the same compilation, so indexes round-trip
    exactly and no node identifier is ever pickled.
stats payload (by ``stats_mode``)
    * ``"per-query"`` — ``counters``: ``array('q')`` of
      :data:`COUNTERS_PER_QUERY` ints per query (the eight scalar
      :class:`QueryStats` counters followed by the four ``bound_wins``
      slots in :data:`BOUND_WIN_KEYS` order) plus ``elapsed``:
      ``array('d')`` of per-query wall-clock seconds;
    * ``"aggregate"`` — ``shard_stats``: one :class:`QueryStats` merged
      over the whole shard;
    * ``"none"`` — nothing.

:meth:`ShardResultBlock.validate` checks the header against the buffer
lengths **before** any field is trusted — a truncated or corrupted block
fails loudly instead of misattributing entries to queries (the merger
calls it before it even looks at the shard's batch positions).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.types import (
    QueryResult,
    QueryStats,
    RankedNode,
    check_stats_mode,
)
from repro.errors import ParallelExecutionError

__all__ = [
    "BOUND_WIN_KEYS",
    "COUNTER_FIELDS",
    "COUNTERS_PER_QUERY",
    "ShardResultBlock",
    "ShardResultCodec",
]

#: The eight scalar int counters of :class:`QueryStats`, in wire order.
COUNTER_FIELDS = (
    "rank_refinements",
    "refinements_pruned",
    "refinement_nodes_settled",
    "tree_pops",
    "tree_pushes",
    "pruned_by_bound",
    "answered_by_index",
    "pruned_by_check_dictionary",
)

#: The four ``bound_wins`` components, in wire order.  ``record_bound_win``
#: only ever creates keys with value >= 1, so "slot is zero" and "key is
#: absent" coincide and the dict round-trips exactly.
BOUND_WIN_KEYS = ("parent", "height", "count", "index")

#: Ints per query in the ``counters`` buffer of per-query mode.
COUNTERS_PER_QUERY = len(COUNTER_FIELDS) + len(BOUND_WIN_KEYS)


@dataclass(frozen=True)
class ShardResultBlock:
    """One shard's results packed into flat buffers (see module docstring)."""

    num_queries: int
    k: int
    algorithm: str
    stats_mode: str
    offsets: array
    ranks: array
    nodes: array
    counters: Optional[array] = None
    elapsed: Optional[array] = None
    shard_stats: Optional[QueryStats] = None

    # ------------------------------------------------------------------
    def payload_bytes(self) -> int:
        """Size of the flat entry/stats buffers in bytes.

        The honest transport measure the bench reports: the dense data
        that actually scales with the batch (pickle framing and the tiny
        fixed header are excluded; the aggregate ``shard_stats`` object is
        charged a nominal constant).
        """
        total = (
            self.offsets.itemsize * len(self.offsets)
            + self.ranks.itemsize * len(self.ranks)
            + self.nodes.itemsize * len(self.nodes)
            + len(self.algorithm)
        )
        if self.counters is not None:
            total += self.counters.itemsize * len(self.counters)
        if self.elapsed is not None:
            total += self.elapsed.itemsize * len(self.elapsed)
        if self.shard_stats is not None:
            # One QueryStats per *shard*: 8 scalars + elapsed + bound_wins.
            total += 96
        return total

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the header against the buffer lengths; raise on mismatch.

        This must be (and is) called before any consumer trusts the
        block's contents — see the merger, which validates the block
        before it reads the shard's batch positions.

        Raises
        ------
        ParallelExecutionError
            When the offsets table, the entry buffers, or the stats
            payload disagree with the header (a truncated or corrupted
            transport buffer).
        """
        if not isinstance(self.num_queries, int) or self.num_queries < 0:
            raise ParallelExecutionError(
                f"shard result block header is corrupt: num_queries="
                f"{self.num_queries!r}"
            )
        if self.stats_mode not in ("per-query", "aggregate", "none"):
            raise ParallelExecutionError(
                f"shard result block header is corrupt: stats_mode="
                f"{self.stats_mode!r}"
            )
        offsets = self.offsets
        if len(offsets) != self.num_queries + 1:
            raise ParallelExecutionError(
                f"shard result block offsets table has {len(offsets)} "
                f"entries for {self.num_queries} queries (want "
                f"{self.num_queries + 1})"
            )
        if offsets[0] != 0:
            raise ParallelExecutionError(
                f"shard result block offsets must start at 0, got {offsets[0]}"
            )
        for position in range(1, len(offsets)):
            if offsets[position] < offsets[position - 1]:
                raise ParallelExecutionError(
                    "shard result block offsets are not monotonic at "
                    f"query {position - 1}: {offsets[position - 1]} -> "
                    f"{offsets[position]}"
                )
        total_entries = offsets[-1]
        if len(self.ranks) != total_entries or len(self.nodes) != total_entries:
            raise ParallelExecutionError(
                f"shard result block entry buffers are truncated: offsets "
                f"declare {total_entries} entries but ranks={len(self.ranks)} "
                f"nodes={len(self.nodes)}"
            )
        if self.stats_mode == "per-query":
            if (
                self.counters is None
                or len(self.counters) != COUNTERS_PER_QUERY * self.num_queries
            ):
                have = None if self.counters is None else len(self.counters)
                raise ParallelExecutionError(
                    f"shard result block per-query counters are truncated: "
                    f"want {COUNTERS_PER_QUERY * self.num_queries} ints, "
                    f"have {have}"
                )
            if self.elapsed is None or len(self.elapsed) != self.num_queries:
                have = None if self.elapsed is None else len(self.elapsed)
                raise ParallelExecutionError(
                    f"shard result block elapsed buffer is truncated: want "
                    f"{self.num_queries} doubles, have {have}"
                )
        elif self.stats_mode == "aggregate":
            if not isinstance(self.shard_stats, QueryStats):
                raise ParallelExecutionError(
                    "shard result block is missing its aggregate QueryStats"
                )


class ShardResultCodec:
    """Packs shard results into a :class:`ShardResultBlock` (worker side)
    and rebuilds :class:`QueryResult` objects from one (parent side)."""

    # ------------------------------------------------------------------
    @staticmethod
    def encode(
        results: Sequence[QueryResult],
        csr,
        stats_mode: str = "per-query",
    ) -> ShardResultBlock:
        """Pack ``results`` (evaluated against ``csr``) into flat buffers."""
        check_stats_mode(stats_mode)
        index_of = csr.index_of
        offsets = array("q", [0])
        ranks = array("d")
        nodes = array("q")
        for result in results:
            for entry in result.entries:
                ranks.append(entry.rank)
                nodes.append(index_of(entry.node))
            offsets.append(len(ranks))

        counters: Optional[array] = None
        elapsed: Optional[array] = None
        shard_stats: Optional[QueryStats] = None
        if stats_mode == "per-query":
            counters = array("q")
            elapsed = array("d")
            for result in results:
                stats = result.stats
                for field in COUNTER_FIELDS:
                    counters.append(getattr(stats, field))
                bound_wins = stats.bound_wins
                for key in BOUND_WIN_KEYS:
                    counters.append(bound_wins.get(key, 0))
                elapsed.append(stats.elapsed_seconds)
        elif stats_mode == "aggregate":
            shard_stats = QueryStats()
            for result in results:
                shard_stats.merge(result.stats)

        first = results[0] if results else None
        return ShardResultBlock(
            num_queries=len(results),
            k=first.k if first is not None else 0,
            algorithm=first.algorithm if first is not None else "",
            stats_mode=stats_mode,
            offsets=offsets,
            ranks=ranks,
            nodes=nodes,
            counters=counters,
            elapsed=elapsed,
            shard_stats=shard_stats,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def decode(
        block: ShardResultBlock,
        csr,
        queries: Sequence,
        validated: bool = False,
    ) -> List[QueryResult]:
        """Rebuild one :class:`QueryResult` per query from ``block``.

        ``queries`` supplies the query nodes in shard order — taken from
        the *parent's* shard plan, never from worker-reported state.
        Entry order, node identity and rank values reproduce the worker's
        results bit for bit (ranks travel as IEEE doubles, which compare
        equal to the ints the refinement produces).  ``validated=True``
        skips the header re-check for callers (the merger) that already
        ran :meth:`ShardResultBlock.validate` on this block.

        Raises
        ------
        ParallelExecutionError
            When the block fails :meth:`ShardResultBlock.validate`, the
            query count disagrees, or an entry's node index is outside
            the compilation.
        """
        if not validated:
            block.validate()
        if len(queries) != block.num_queries:
            raise ParallelExecutionError(
                f"shard result block carries {block.num_queries} queries "
                f"but the plan assigned {len(queries)}"
            )
        num_nodes = csr.num_nodes
        node_at = csr.node_at
        offsets = block.offsets
        ranks = block.ranks
        nodes = block.nodes
        counters = block.counters
        elapsed = block.elapsed
        per_query = block.stats_mode == "per-query"

        results: List[QueryResult] = []
        for position, query in enumerate(queries):
            entries = []
            for slot in range(offsets[position], offsets[position + 1]):
                node_index = nodes[slot]
                if not 0 <= node_index < num_nodes:
                    raise ParallelExecutionError(
                        f"shard result block entry {slot} names node index "
                        f"{node_index}, outside the compilation's "
                        f"[0, {num_nodes}) range"
                    )
                entries.append(RankedNode.make(node_at(node_index), ranks[slot]))
            stats = QueryStats()
            if per_query:
                base = position * COUNTERS_PER_QUERY
                for offset, field in enumerate(COUNTER_FIELDS):
                    setattr(stats, field, counters[base + offset])
                wins_base = base + len(COUNTER_FIELDS)
                for offset, key in enumerate(BOUND_WIN_KEYS):
                    value = counters[wins_base + offset]
                    if value:
                        stats.bound_wins[key] = value
                stats.elapsed_seconds = elapsed[position]
            results.append(
                QueryResult(
                    query=query,
                    k=block.k,
                    entries=entries,
                    stats=stats,
                    algorithm=block.algorithm,
                )
            )
        return results
