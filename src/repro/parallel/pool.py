"""The persistent multiprocess worker pool (parent side).

A :class:`WorkerPool` owns ``N`` long-lived worker processes around one
:class:`~repro.graph.csr.CompactGraph` compilation (plus, optionally, a
bichromatic facility set and a
:meth:`~repro.core.hub_index.HubIndex.export_state` snapshot).  Batches
are then dispatched shard-wise — the payload per batch is just the query
identifiers — and reassembled deterministically by
:mod:`repro.parallel.merge`.

Graph transport
---------------
By default the pool publishes the compilation's frozen CSR buffers into a
:mod:`multiprocessing.shared_memory` segment
(:func:`~repro.graph.shm.share_compact_graph`) and ships workers only the
tiny :class:`~repro.graph.shm.SharedGraphHandle`: each worker *maps* the
graph (digest-verified attach, near-zero startup payload, O(1) extra RSS
per worker) instead of unpickling a private copy — the difference between
"2 workers" and "2x the graph in RAM" at the huge scale tier.  Pass
``share_graph=False`` to force the legacy pickled-copy transport, or
``share_graph=True`` to require the shared one (startup then fails
loudly where shared memory is unavailable instead of silently falling
back).  The segment is owned by the pool and unlinked on *every* exit
path: normal :meth:`close`, worker crash, context-manager exception and
the ``__del__`` safety net.

Lifecycle guarantees
--------------------
* **Start-method safety** — the pool works under ``fork``, ``spawn`` and
  ``forkserver`` (pass ``context=``; ``None`` uses the platform default).
  The worker entry point lives in the importable
  :mod:`repro.parallel.worker` module, and the pool temporarily extends
  ``PYTHONPATH`` with :mod:`repro`'s source root around process creation
  so spawned children can import the package even when only the parent's
  ``sys.path`` knew about it (the pytest case).
* **Startup barrier** — the constructor blocks until every worker reports
  ``ready``; import errors and corrupted payloads surface immediately as
  typed errors instead of hanging the first batch.
* **Crash surfacing and self-healing** — a worker that raises ships its
  remote traceback back and the batch fails with
  :class:`~repro.errors.ParallelExecutionError`; a worker that *dies*
  (signal, OOM kill, interpreter abort) is detected by liveness polling.
  :meth:`run_batch` heals from deaths in place: the dead slot is
  respawned from the retained startup state (with the *latest*
  hub-index snapshot, not the construction-time one) and the shards the
  casualty was holding are re-dispatched, up to ``crash_retries`` deaths
  per batch — only then does the batch fail with
  :class:`~repro.errors.WorkerCrashError` naming the unanswered
  positions.  Each respawn bumps the slot's *generation*, which salts
  the worker's failpoint RNG streams (:mod:`repro.faults`), so an
  injected crash schedule does not kill every replacement at the same
  task.
* **Crash-isolated result channels** — every worker writes results to
  its *own* queue rather than one shared queue.  This is load-bearing
  for healing from SIGKILL: a worker killed while its queue feeder
  thread holds the queue's write lock leaves that (cross-process) lock
  held forever, and on a shared queue that deadlocks every future
  writer — including the freshly respawned replacement, whose ``ready``
  message can then never be delivered.  With per-worker queues the
  poisoned channel dies with its worker: :meth:`_respawn` discards both
  of the casualty's queues and gives the replacement fresh ones.  A
  respawn is additionally bounded by ``respawn_timeout`` (a replacement
  that cannot report ready is killed and surfaced as a crash) so a
  wedged replacement can never stall a batch for the full
  ``start_timeout``.
* **Batch deadline** — ``run_batch(timeout=...)`` bounds the wall-clock
  wait; when it expires, the workers still holding shards are killed
  (terminate, then SIGKILL), respawned best-effort so the pool stays
  usable, and the batch raises
  :class:`~repro.errors.WorkerTimeoutError` instead of polling forever
  behind a hung child.
* **Graceful shutdown** — :meth:`close` sends each worker the shutdown
  sentinel, joins with a timeout, and only then escalates to
  ``terminate``.  The pool is a context manager; ``close`` is idempotent.
"""

from __future__ import annotations

import contextlib
import itertools
import multiprocessing
import multiprocessing.connection
import os
import queue as queue_module
import time
from typing import Dict, List, Optional, Sequence

from repro import faults
from repro.core.config import AlgorithmKind
from repro.core.types import check_stats_mode
from repro.errors import (
    ParallelExecutionError,
    WorkerCrashError,
    WorkerTimeoutError,
    is_positive_int,
)
from repro.graph.shm import share_compact_graph
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, get_registry
from repro.parallel.merge import ParallelBatchResult, ShardOutput, merge_shard_outputs
from repro.parallel.planner import ShardPlan, chunk_evenly
from repro.parallel.worker import build_init_payload, worker_main

__all__ = ["WorkerPool"]

#: Seconds between liveness polls while waiting on worker messages.
_POLL_SECONDS = 0.1


class _DeadlineExceeded(Exception):
    """Internal: :meth:`WorkerPool._receive` hit the batch deadline."""


@contextlib.contextmanager
def _child_spawn_env():
    """Environment for ``Process.start()`` (restores every override after).

    Two concerns, one scope:

    * ``spawn``/``forkserver`` children start a fresh interpreter that
      only sees ``PYTHONPATH`` — not the parent's ``sys.path``
      manipulations (pytest's ``pythonpath = ["src"]``, editable
      installs resolved at runtime, ...).  Prepending the package's
      source root closes that gap.
    * An armed :mod:`repro.faults` registry exports its
      ``REPRO_FAILPOINTS`` / ``REPRO_FAILPOINTS_SEED`` configuration so
      chaos schedules follow workers into fresh interpreters too
      (``fork`` children inherit the registry object directly; the
      redundant export is harmless).

    Every mutation is reverted before control returns, so nothing else
    observes it.
    """
    import repro

    source_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    overrides = {}
    existing_path = os.environ.get("PYTHONPATH")
    parts = existing_path.split(os.pathsep) if existing_path else []
    if source_root not in parts:
        overrides["PYTHONPATH"] = os.pathsep.join([source_root] + parts)
    overrides.update(faults.env_exports())
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for key, old in saved.items():
            if old is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = old


class WorkerPool:
    """``N`` persistent worker processes around one graph compilation.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.csr.CompactGraph` compilation, shipped to
        workers over the shared-memory or pickled transport (see the
        module docstring).
    workers:
        Number of worker processes (>= 1).
    index_state:
        Optional :meth:`~repro.core.hub_index.HubIndex.export_state`
        snapshot; workers rebuild a private index from it and report
        their learning back per batch.
    facilities:
        Optional bichromatic facility (V2) node set; workers rebuild the
        partition from it.
    context:
        Start method: ``"fork"``, ``"spawn"``, ``"forkserver"`` or
        ``None`` for the platform default.
    start_timeout:
        Seconds to wait for all workers to report ready at construction.
    respawn_timeout:
        Seconds a *respawned* worker gets to report ready before it is
        killed and the respawn fails (surfacing as a crash the caller's
        retry machinery handles).  Much shorter than ``start_timeout``
        by default: a replacement starts from a warmed payload, so a
        slot that is not ready quickly is wedged, and waiting the full
        startup budget would stall the in-flight batch.
    share_graph:
        ``None`` (default): share the CSR buffers via shared memory when
        the platform supports it, falling back to pickled copies.
        ``True``: require shared memory (raise otherwise).  ``False``:
        always ship pickled copies.
    crash_retries:
        Default number of worker deaths :meth:`run_batch` heals from
        (respawn + re-dispatch) before giving up on a batch; ``0``
        restores the fail-fast behaviour.  Overridable per batch.
    graph_update:
        Optional :meth:`~repro.graph.overlay.OverlayGraph.overlay_state`
        side-table: workers attach the (base) ``graph`` as usual, then
        rebuild the overlay over it before constructing their engines —
        the startup twin of :meth:`update_graph`, used when a pool is
        created while the coordinator's compilation already carries
        incremental mutations.
    """

    def __init__(
        self,
        graph,
        workers: int,
        index_state: Optional[Dict[str, object]] = None,
        facilities=None,
        context: Optional[str] = None,
        start_timeout: float = 60.0,
        respawn_timeout: float = 10.0,
        share_graph: Optional[bool] = None,
        crash_retries: int = 2,
        registry=None,
        graph_update: Optional[Dict[str, object]] = None,
    ) -> None:
        # Attributes close() touches come first: a constructor failure at
        # any later point must leave close() safe to run.
        self._closed = False
        self._graph_owner = None
        self._processes: List[multiprocessing.Process] = []
        self._task_queues = []
        self._result_queues = []
        if not isinstance(crash_retries, int) or isinstance(crash_retries, bool) or crash_retries < 0:
            raise ParallelExecutionError(
                f"crash_retries must be a non-negative integer, got {crash_retries!r}"
            )
        if not is_positive_int(workers):
            raise ParallelExecutionError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if not getattr(graph, "is_compact", False):
            raise ParallelExecutionError(
                "WorkerPool requires a CompactGraph compilation (its frozen "
                "array buffers are what make shipping the graph cheap); "
                "compile with CompactGraph.from_graph() first"
            )
        if getattr(graph, "is_overlay", False):
            raise ParallelExecutionError(
                "WorkerPool is built around the frozen base compilation; "
                "pass overlay.base as the graph and overlay.overlay_state() "
                "as graph_update"
            )
        try:
            ctx = multiprocessing.get_context(context)
        except ValueError:
            raise ParallelExecutionError(
                f"unknown multiprocessing start method {context!r}; available: "
                f"{multiprocessing.get_all_start_methods()}"
            ) from None

        self._num_workers = workers
        self._start_method = ctx.get_start_method()
        self._has_index = index_state is not None
        self._job_ids = itertools.count()
        # The *base* compilation: the only graph the workers' startup
        # transports (shared segment or pickled copy) ever carry.
        self._init_graph = graph
        # Kept for decoding shard result blocks (entry nodes travel as
        # CSR indexes of this compilation).  With an overlay side-table
        # in play this is the overlay view — same node indexing for base
        # nodes, appended nodes at the tail — rebuilt parent-side so
        # decode agrees with what the workers compute against.
        if graph_update is not None:
            from repro.graph.overlay import OverlayGraph

            self._graph = OverlayGraph.from_state(graph, graph_update)
        else:
            self._graph = graph
        # Retained so a dead slot can be respawned with current state:
        # _index_state tracks update_index() broadcasts and
        # _graph_update_state tracks update_graph() broadcasts, so
        # replacements start from the latest snapshots, not the
        # construction-time ones.
        self._ctx = ctx
        self._index_state = index_state
        self._graph_update_state = graph_update
        self._facilities = facilities
        self._start_timeout = start_timeout
        self._respawn_timeout = respawn_timeout
        self._crash_retries = crash_retries
        self._generations = [0] * workers
        self._crash_count = 0
        self._respawn_count = 0
        self._timeout_count = 0
        # Metrics land in the injected registry (the engine shares its own
        # so pool counters survive pool rebuilds) or the process-global
        # default for standalone pools.  Event-time increments here are
        # the single source of truth for crash/respawn/timeout totals.
        self._registry = registry if registry is not None else get_registry()
        metrics = self._registry
        self._m_crashes = metrics.counter(
            "repro_worker_crashes_total",
            "Worker processes that died mid-batch or failed to respawn.",
        )
        self._m_respawns = metrics.counter(
            "repro_worker_respawns_total",
            "Worker processes respawned in place after a crash or stall.",
        )
        self._m_timeouts = metrics.counter(
            "repro_worker_timeouts_total",
            "Batches that blew their deadline and had stuck workers killed.",
        )
        self._m_batches = metrics.counter(
            "repro_pool_batches_total",
            "Parallel batches the pool completed successfully.",
        )
        self._m_batch_seconds = metrics.histogram(
            "repro_pool_batch_seconds",
            "Wall-clock seconds per pool batch (dispatch to merge), by "
            "shard policy.",
            labels=("policy",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        ipc = metrics.counter(
            "repro_ipc_bytes_total",
            "Bytes crossing the worker IPC boundary, by direction "
            "(startup init payloads vs codec-encoded shard results).",
            labels=("direction",),
        )
        self._m_ipc_startup = ipc.labels(direction="startup")
        self._m_ipc_result = ipc.labels(direction="result")
        try:
            if share_graph is not False:
                try:
                    self._graph_owner = share_compact_graph(graph)
                except Exception as exc:
                    if share_graph is True:
                        raise ParallelExecutionError(
                            "share_graph=True but publishing the graph to "
                            f"shared memory failed: {exc}"
                        ) from exc
                    # Auto mode: platforms without (writable) shared
                    # memory fall back to the pickled transport.
                    self._graph_owner = None
            init_bytes = build_init_payload(
                None if self._graph_owner is not None else graph,
                index_state=index_state,
                facilities=facilities,
                graph_handle=(
                    self._graph_owner.handle
                    if self._graph_owner is not None
                    else None
                ),
                graph_update=graph_update,
            )
            self._startup_payload_bytes = len(init_bytes)
            self._m_ipc_startup.inc(len(init_bytes) * workers)
            # One result queue PER worker: crash isolation (see the
            # module docstring) — a SIGKILLed worker can only poison its
            # own channel, which _respawn discards with the slot.
            self._result_queues = [ctx.Queue() for _ in range(workers)]
            self._task_queues = [ctx.Queue() for _ in range(workers)]
            with _child_spawn_env():
                for worker_id in range(workers):
                    self._processes.append(
                        self._spawn_process(worker_id, init_bytes)
                    )
            self._await_ready(start_timeout)
        except BaseException:
            self.close(timeout=2.0)
            raise

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Number of worker processes."""
        return self._num_workers

    @property
    def start_method(self) -> str:
        """The multiprocessing start method the workers were created with."""
        return self._start_method

    @property
    def has_index(self) -> bool:
        """Whether workers carry a hub-index snapshot."""
        return self._has_index

    @property
    def uses_shared_graph(self) -> bool:
        """Whether workers map the graph from shared memory (vs pickled)."""
        return self._graph_owner is not None

    @property
    def shared_segment_name(self) -> Optional[str]:
        """The shared graph segment's name, or ``None`` in pickled mode."""
        owner = self._graph_owner
        return owner.segment_name if owner is not None else None

    @property
    def startup_payload_bytes(self) -> int:
        """Bytes of init payload pickled per worker at startup.

        In shared-graph mode this is just the handle + header (a few
        hundred bytes, independent of graph size); in pickled mode it
        includes the full CSR buffers.
        """
        return self._startup_payload_bytes

    @property
    def is_closed(self) -> bool:
        """Whether the pool has been shut down."""
        return self._closed

    @property
    def worker_pids(self) -> List[Optional[int]]:
        """The workers' process ids (``None`` before start, after close)."""
        return [process.pid for process in self._processes]

    @property
    def crash_count(self) -> int:
        """Worker deaths observed over the pool's lifetime."""
        return self._crash_count

    @property
    def respawn_count(self) -> int:
        """Workers respawned over the pool's lifetime."""
        return self._respawn_count

    @property
    def timeout_count(self) -> int:
        """Batches that blew their deadline over the pool's lifetime."""
        return self._timeout_count

    def health(self) -> Dict[str, object]:
        """A snapshot of pool liveness and self-healing counters.

        ``alive`` counts workers currently running; ``generations`` is
        the per-slot respawn count (all zeros for a pool that never lost
        a worker).  Safe to call on a closed pool.
        """
        return {
            "workers": self._num_workers,
            "alive": sum(1 for process in self._processes if process.is_alive()),
            "crashes": self._crash_count,
            "respawns": self._respawn_count,
            "timeouts": self._timeout_count,
            "generations": list(self._generations),
            "start_method": self._start_method,
            "shared_graph": self.uses_shared_graph,
            "closed": self._closed,
        }

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "closed" if self._closed else "open"
        return (
            f"<WorkerPool {state} workers={self._num_workers} "
            f"start_method={self._start_method!r} index={self._has_index}>"
        )

    # ------------------------------------------------------------------
    def run_batch(
        self,
        plan: ShardPlan,
        k: int,
        algorithm,
        bounds=None,
        collect_deltas: Optional[bool] = None,
        stats_mode: str = "per-query",
        timeout: Optional[float] = None,
        crash_retries: Optional[int] = None,
        trace_id: Optional[str] = None,
    ) -> ParallelBatchResult:
        """Execute one planned batch across the workers, healing crashes.

        Shard ``i`` of the plan runs on worker ``i mod num_workers`` (the
        identity mapping when the plan was built for this pool's worker
        count, which keeps the affinity policy's pinning honest); workers
        echo the shard index back, so attribution never depends on
        arrival order — which is what makes re-dispatching a dead
        worker's shards to its replacement safe.

        ``collect_deltas`` defaults to "whenever the workers hold an
        index and the algorithm is indexed" — exactly when there is
        learning to harvest.  ``stats_mode`` selects what stats payload
        the shard result blocks carry back (see
        :mod:`repro.parallel.codec`); with ``"none"`` the merged batch's
        ``stats`` is ``None``.

        ``timeout`` bounds the batch in wall-clock seconds; ``None``
        waits indefinitely (liveness-polled, so crashes still surface).
        ``crash_retries`` caps how many worker deaths this batch absorbs
        (respawn + re-dispatch) before failing; ``None`` uses the pool's
        construction-time default.

        ``trace_id`` (propagated in every task tuple) asks the workers to
        record their own span trees for this batch under that id; the
        finished trees come back in the result payloads and are returned
        on :attr:`ParallelBatchResult.worker_traces` in shard order.
        ``None`` — the default — keeps the worker-side hot path
        allocation-free.

        Raises
        ------
        ParallelExecutionError
            When the pool is closed, or a worker reported an exception
            (the remote traceback is embedded in the message) — worker
            *exceptions* are deterministic, so they are never retried.
        WorkerCrashError
            When worker deaths exceeded ``crash_retries``, or a
            replacement worker could not be started; ``positions`` names
            the batch positions that went unanswered.
        WorkerTimeoutError
            When ``timeout`` expired with shards still outstanding; the
            stuck workers are killed (and respawned best-effort) first.
        """
        if self._closed:
            raise ParallelExecutionError(
                "cannot run a batch on a closed WorkerPool"
            )
        kind = AlgorithmKind(algorithm)
        check_stats_mode(stats_mode)
        if collect_deltas is None:
            collect_deltas = self._has_index and kind is AlgorithmKind.INDEXED
        if crash_retries is None:
            crash_retries = self._crash_retries
        job_id = next(self._job_ids)
        shards = plan.non_empty()
        shard_by_index = {shard.index: shard for shard in shards}
        deadline = None if timeout is None else time.monotonic() + timeout
        batch_started = time.perf_counter()

        def dispatch(shard) -> None:
            self._task_queues[shard.index % self._num_workers].put(
                (
                    "query",
                    job_id,
                    shard.index,
                    shard.positions,
                    shard.queries,
                    k,
                    kind.value,
                    bounds,
                    bool(collect_deltas),
                    stats_mode,
                    trace_id,
                )
            )

        def lost_positions(shard_indexes) -> tuple:
            return tuple(
                position
                for shard_index in sorted(shard_indexes)
                for position in shard_by_index[shard_index].positions
            )

        for shard in shards:
            dispatch(shard)
        outputs: List[ShardOutput] = []
        outstanding = set(shard_by_index)
        crashes = 0
        while outstanding:
            try:
                message_kind, worker_id, message_job, payload = self._receive(
                    deadline
                )
            except WorkerCrashError as exc:
                self._crash_count += 1
                self._m_crashes.inc()
                crashes += 1
                # The casualty's unanswered shards: assigned to it and not
                # back yet (a result it flushed before dying already left
                # `outstanding`).
                lost = [
                    shard_index
                    for shard_index in outstanding
                    if shard_index % self._num_workers == exc.worker_id
                ]
                if crashes > crash_retries:
                    raise WorkerCrashError(
                        exc.worker_id,
                        exc.exitcode,
                        detail=(
                            f"batch crash budget exhausted "
                            f"({crashes} deaths > {crash_retries} retries)"
                            if crash_retries
                            else ""
                        ),
                        positions=lost_positions(lost),
                    ) from exc
                try:
                    self._respawn(exc.worker_id)
                except BaseException as respawn_exc:
                    raise WorkerCrashError(
                        exc.worker_id,
                        exc.exitcode,
                        detail=f"respawning the worker failed: {respawn_exc}",
                        positions=lost_positions(lost),
                    ) from respawn_exc
                for shard_index in sorted(lost):
                    dispatch(shard_by_index[shard_index])
                continue
            except _DeadlineExceeded:
                self._timeout_count += 1
                self._m_timeouts.inc()
                stuck = sorted(
                    {
                        shard_index % self._num_workers
                        for shard_index in outstanding
                    }
                )
                for stuck_id in stuck:
                    self._kill_worker(stuck_id)
                # Best-effort respawn so the pool survives the batch; a
                # slot that cannot come back will surface as a crash on
                # the next batch (which heals or fails loudly there).
                detail = ""
                for stuck_id in stuck:
                    try:
                        self._respawn(stuck_id)
                    except BaseException as respawn_exc:
                        detail = (
                            f"worker {stuck_id} could not be respawned "
                            f"({respawn_exc}); the pool is degraded"
                        )
                        break
                raise WorkerTimeoutError(
                    timeout,
                    worker_ids=stuck,
                    positions=lost_positions(outstanding),
                    detail=detail,
                ) from None
            if message_job != job_id:
                # A leftover from a batch that failed after this worker had
                # already finished its shard; drop it.
                continue
            if message_kind == "error":
                raise ParallelExecutionError(
                    f"worker {worker_id} failed while evaluating its shard:\n"
                    f"{payload}"
                )
            shard_index, positions, results, delta, worker_trace = payload
            if shard_index not in outstanding:
                continue  # defensive: duplicate delivery
            outstanding.discard(shard_index)
            outputs.append(
                ShardOutput(
                    shard_index=shard_index,
                    positions=positions,
                    results=results,
                    delta=delta,
                    # Decode against the parent's plan, not worker-reported
                    # identifiers.
                    queries=shard_by_index[shard_index].queries,
                    trace=worker_trace,
                )
            )
        merged = merge_shard_outputs(
            outputs, batch_size=plan.num_queries, csr=self._graph
        )
        self._m_batches.inc()
        self._m_batch_seconds.labels(policy=plan.policy.value).observe(
            time.perf_counter() - batch_started
        )
        if merged.ipc_bytes:
            self._m_ipc_result.inc(merged.ipc_bytes)
        return merged

    def update_index(self, index_state: Dict[str, object]) -> None:
        """Broadcast a fresh hub-index snapshot to every worker (blocking).

        Each worker rebuilds its private index from ``index_state`` (an
        :meth:`~repro.core.hub_index.HubIndex.export_state` snapshot) and
        adopts it into its engine, replacing whatever snapshot it held —
        the in-place alternative to tearing the pool down whenever the
        master index learns or is rebuilt.  Returns once every worker has
        acknowledged, so the next :meth:`run_batch` is guaranteed to run
        on the new state.

        Raises
        ------
        ParallelExecutionError
            When the pool is closed or a worker failed to adopt the
            snapshot (remote traceback embedded).
        WorkerCrashError
            When a worker process died during the sync.
        """
        if self._closed:
            raise ParallelExecutionError(
                "cannot update the index on a closed WorkerPool"
            )
        job_id = next(self._job_ids)
        # Retain it first: even if a worker dies mid-sync and the caller
        # retries, a respawned replacement must start from this snapshot.
        self._index_state = index_state
        for task_queue in self._task_queues:
            task_queue.put(("index", job_id, index_state))
        pending = self._num_workers
        while pending:
            message_kind, worker_id, message_job, payload = self._receive()
            if message_job != job_id:
                continue
            if message_kind == "error":
                raise ParallelExecutionError(
                    f"worker {worker_id} failed to adopt the hub-index "
                    f"snapshot:\n{payload}"
                )
            pending -= 1
        self._has_index = True

    def update_graph(
        self,
        new_graph,
        update_state: Dict[str, object],
        index_state: Optional[Dict[str, object]] = None,
    ) -> None:
        """Broadcast an overlay side-table to every worker (blocking).

        The incremental-maintenance twin of :meth:`update_index`: after
        the coordinator applies graph mutations as a CSR delta-overlay
        (:meth:`~repro.core.engine.ReverseKRanksEngine.apply_updates`),
        the pool stays alive — each worker rebuilds the overlay over the
        frozen base compilation it already holds (shared-memory mapped
        or unpickled at startup; the side-table's base digest is
        verified on the worker side) and swaps in a fresh engine, plus a
        new hub-index snapshot when ``index_state`` is given (the
        repaired master state, exported *after*
        :meth:`~repro.core.hub_index.HubIndex.repair`, so worker indexes
        land at the new graph version).  ``new_graph`` is the
        coordinator's overlay view, adopted parent-side for decoding
        shard result blocks.  Returns once every worker has
        acknowledged; both states are retained first so a slot respawned
        mid- or post-sync starts from them.

        Raises
        ------
        ParallelExecutionError
            When the pool is closed, the side-table was built over a
            different base than this pool ships its workers, or a worker
            failed to adopt the update (remote traceback embedded).
        WorkerCrashError
            When a worker process died during the sync.
        """
        if self._closed:
            raise ParallelExecutionError(
                "cannot update the graph on a closed WorkerPool"
            )
        if update_state.get("base_digest") != self._init_graph.content_digest():
            raise ParallelExecutionError(
                "overlay side-table was built over a different base "
                "compilation than this pool's workers hold; rebuild the "
                "pool instead"
            )
        job_id = next(self._job_ids)
        # Retain first: even if a worker dies mid-sync and the caller
        # retries, a respawned replacement must start from this state.
        self._graph = new_graph
        self._graph_update_state = update_state
        self._index_state = index_state
        self._has_index = index_state is not None
        for task_queue in self._task_queues:
            task_queue.put(("graph", job_id, update_state, index_state))
        pending = self._num_workers
        while pending:
            message_kind, worker_id, message_job, payload = self._receive()
            if message_job != job_id:
                continue
            if message_kind == "error":
                raise ParallelExecutionError(
                    f"worker {worker_id} failed to adopt the graph "
                    f"update:\n{payload}"
                )
            pending -= 1

    def run_hub_build(self, hubs, explore_limit: int, capacity: int):
        """Explore ``hubs`` across the workers; returns deltas in hub order.

        The hub list is split into contiguous chunks
        (:func:`~repro.parallel.planner.chunk_evenly`) — worker ``j``
        explores the ``j``-th run of hubs — and the returned
        :class:`~repro.core.hub_index.HubIndexDelta` list is ordered by
        chunk, i.e. by original hub order.  Merging the deltas in that
        order replays the sequential build's recording sequence exactly;
        :meth:`~repro.core.hub_index.HubIndex.build_parallel` is the
        intended caller.

        Raises
        ------
        ParallelExecutionError
            When the pool is closed, or a worker reported an exception.
        WorkerCrashError
            When a worker process died mid-exploration.
        """
        if self._closed:
            raise ParallelExecutionError(
                "cannot run a hub build on a closed WorkerPool"
            )
        job_id = next(self._job_ids)
        chunks = chunk_evenly(list(hubs), self._num_workers)
        dispatched: List[int] = []
        for worker_id, chunk in enumerate(chunks):
            if not chunk:
                continue
            self._task_queues[worker_id].put(
                ("hubs", job_id, tuple(chunk), explore_limit, capacity)
            )
            dispatched.append(worker_id)
        deltas: Dict[int, object] = {}
        pending = len(dispatched)
        while pending:
            message_kind, worker_id, message_job, payload = self._receive()
            if message_job != job_id:
                continue
            if message_kind == "error":
                raise ParallelExecutionError(
                    f"worker {worker_id} failed while exploring its hub "
                    f"chunk:\n{payload}"
                )
            deltas[worker_id] = payload
            pending -= 1
        return [deltas[worker_id] for worker_id in dispatched]

    def _receive(self, deadline: Optional[float] = None):
        """Next worker message, polling liveness so crashes cannot hang us.

        Waits on every worker's result channel at once
        (:func:`multiprocessing.connection.wait` over the queues' read
        pipes — ``Queue`` has no multi-queue wait of its own), so a
        message from any worker is picked up within one poll interval.
        Raises :class:`~repro.errors.WorkerCrashError` when a worker is
        found dead with its own channel drained, and the internal
        :class:`_DeadlineExceeded` when ``deadline`` (monotonic seconds)
        passes first.
        """
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                raise _DeadlineExceeded()
            readers = {
                result_queue._reader: result_queue
                for result_queue in self._result_queues
            }
            ready = multiprocessing.connection.wait(
                list(readers), timeout=_POLL_SECONDS
            )
            for reader in ready:
                try:
                    return readers[reader].get_nowait()
                except queue_module.Empty:  # pragma: no cover - feeder race
                    continue
            if ready:  # pragma: no cover - all ready readers raced empty
                continue
            for worker_id, process in enumerate(self._processes):
                if not process.is_alive():
                    # Give the crashed worker's final message (flushed by
                    # its queue feeder before death) one last chance.
                    try:
                        return self._result_queues[worker_id].get(
                            timeout=_POLL_SECONDS
                        )
                    except queue_module.Empty:
                        raise WorkerCrashError(
                            worker_id, process.exitcode
                        ) from None

    # -- self-healing machinery ----------------------------------------
    def _spawn_process(self, worker_id: int, init_bytes: bytes):
        """Start one worker process for ``worker_id`` (caller sets env)."""
        generation = self._generations[worker_id]
        name = f"repro-worker-{worker_id}"
        if generation:
            name = f"{name}-g{generation}"
        process = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id,
                init_bytes,
                self._task_queues[worker_id],
                self._result_queues[worker_id],
                generation,
            ),
            name=name,
            daemon=True,
        )
        process.start()
        return process

    def _current_init_bytes(self) -> bytes:
        """The startup payload a worker spawned *now* should receive.

        Always ships the frozen *base* compilation (overlays refuse both
        pickling and shared memory); the latest overlay side-table, if
        any, rides along as ``graph_update`` so a respawned slot comes
        back answering against the same mutated adjacency as its peers.
        """
        return build_init_payload(
            None if self._graph_owner is not None else self._init_graph,
            index_state=self._index_state,
            facilities=self._facilities,
            graph_handle=(
                self._graph_owner.handle if self._graph_owner is not None else None
            ),
            graph_update=self._graph_update_state,
        )

    def _respawn(self, worker_id: int) -> None:
        """Replace a dead/killed worker slot with a fresh process.

        *Both* of the old slot's queues are abandoned: the task queue
        may still hold tasks the casualty never dequeued (re-dispatch is
        the caller's job), and the result queue may be poisoned — a
        worker killed while its queue feeder thread held the write lock
        leaves that cross-process lock held forever, wedging any future
        writer.  The generation counter is bumped (salting the
        replacement's failpoint RNGs) and the call blocks until the
        replacement reports ready on its fresh channel, bounded by
        ``respawn_timeout``.  Other workers' in-flight messages stay
        buffered in their own channels throughout.
        """
        old_process = self._processes[worker_id]
        try:
            old_process.join(timeout=1.0)  # reap the zombie
        except Exception:
            pass
        for old_queue in (
            self._task_queues[worker_id],
            self._result_queues[worker_id],
        ):
            for cleanup in (old_queue.close, old_queue.cancel_join_thread):
                try:
                    cleanup()
                except Exception:
                    pass
        self._generations[worker_id] += 1
        self._task_queues[worker_id] = self._ctx.Queue()
        self._result_queues[worker_id] = self._ctx.Queue()
        init_bytes = self._current_init_bytes()
        self._m_ipc_startup.inc(len(init_bytes))
        with _child_spawn_env():
            self._processes[worker_id] = self._spawn_process(
                worker_id, init_bytes
            )
        self._await_worker_ready(worker_id)
        self._respawn_count += 1
        self._m_respawns.inc()

    def _await_worker_ready(self, worker_id: int) -> None:
        """Block until the respawned ``worker_id`` reports ready.

        Reads only the replacement's own fresh result queue; nothing
        stale can appear on it and nothing from the in-flight batch can
        be swallowed.  On timeout the replacement is killed before
        raising — a wedged child must not outlive the respawn attempt —
        and the caller's crash handling turns the failure into a typed
        batch error instead of a ``start_timeout``-long stall.
        """
        deadline = time.monotonic() + self._respawn_timeout
        result_queue = self._result_queues[worker_id]
        while True:
            if time.monotonic() >= deadline:
                self._kill_worker(worker_id)
                raise ParallelExecutionError(
                    f"respawned worker {worker_id} did not report ready "
                    f"within {self._respawn_timeout:.0f}s (killed)"
                )
            try:
                message = result_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                process = self._processes[worker_id]
                if not process.is_alive():
                    raise WorkerCrashError(
                        worker_id, process.exitcode, detail="during respawn"
                    ) from None
                continue
            message_kind, _, message_job, payload = message
            if message_kind == "ready":
                return
            if message_kind == "error" and message_job is None:
                raise ParallelExecutionError(
                    f"respawned worker {worker_id} failed to start:\n"
                    f"{payload}"
                )

    def _kill_worker(self, worker_id: int) -> None:
        """Forcibly stop a live-but-stuck worker (terminate, then kill)."""
        process = self._processes[worker_id]
        try:
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        except Exception:  # pragma: no cover - already-dead races
            pass

    def _await_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        pending = set(range(self._num_workers))
        while pending:
            readers = {
                self._result_queues[worker_id]._reader: worker_id
                for worker_id in pending
            }
            ready = multiprocessing.connection.wait(
                list(readers), timeout=_POLL_SECONDS
            )
            for reader in ready:
                worker_id = readers[reader]
                try:
                    message_kind, _, _, payload = self._result_queues[
                        worker_id
                    ].get_nowait()
                except queue_module.Empty:  # pragma: no cover - feeder race
                    continue
                if message_kind == "error":
                    raise ParallelExecutionError(
                        f"worker {worker_id} failed to start:\n{payload}"
                    )
                pending.discard(worker_id)
            if ready:
                continue
            for worker_id in sorted(pending):
                process = self._processes[worker_id]
                if not process.is_alive():
                    raise WorkerCrashError(
                        worker_id, process.exitcode, detail="during startup"
                    ) from None
            if time.monotonic() >= deadline:
                hint = ""
                if self._start_method != "fork":
                    hint = (
                        "; under the spawn/forkserver start methods the "
                        "launching script must be import-safe — guard "
                        "pool creation with `if __name__ == '__main__':` "
                        "or children re-execute the script instead of "
                        "starting"
                    )
                num_ready = self._num_workers - len(pending)
                raise ParallelExecutionError(
                    f"worker pool startup timed out after {timeout:.0f}s "
                    f"({num_ready}/{self._num_workers} workers ready){hint}"
                ) from None

    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Shut the workers down; escalates to ``terminate`` on stragglers.

        Idempotent and exception-proof by contract: it runs on normal
        shutdown, after a :class:`~repro.errors.WorkerCrashError`, from
        context-manager ``__exit__`` during an unrelated exception, and
        from ``__del__`` at interpreter teardown — none of which may
        raise.  Every queue operation is individually guarded (a crashed
        worker leaves broken pipes; GC-time cleanup finds queues already
        torn down), and the shared graph segment, if any, is unlinked
        unconditionally at the end of every path through this method.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for task_queue in self._task_queues:
                try:
                    task_queue.put(None)
                except (OSError, ValueError, BrokenPipeError):
                    pass  # queue already broken / worker gone
            for process in self._processes:
                try:
                    process.join(timeout=timeout)
                except Exception:
                    pass
            for process in self._processes:
                try:
                    if process.is_alive():
                        process.terminate()
                        process.join(timeout=2.0)
                except Exception:
                    pass
            for any_queue in list(self._task_queues) + list(self._result_queues):
                try:
                    any_queue.close()
                except (OSError, ValueError, BrokenPipeError, AttributeError):
                    pass
                try:
                    any_queue.cancel_join_thread()
                except Exception:
                    pass
        finally:
            # The one cleanup that MUST happen on every path: a leaked
            # segment outlives the process and eats /dev/shm forever.
            owner = self._graph_owner
            self._graph_owner = None
            if owner is not None:
                owner.unlink()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close(timeout=0.1)
        except Exception:
            pass
