"""The persistent multiprocess worker pool (parent side).

A :class:`WorkerPool` owns ``N`` long-lived worker processes around one
:class:`~repro.graph.csr.CompactGraph` compilation (plus, optionally, a
bichromatic facility set and a
:meth:`~repro.core.hub_index.HubIndex.export_state` snapshot).  Batches
are then dispatched shard-wise — the payload per batch is just the query
identifiers — and reassembled deterministically by
:mod:`repro.parallel.merge`.

Graph transport
---------------
By default the pool publishes the compilation's frozen CSR buffers into a
:mod:`multiprocessing.shared_memory` segment
(:func:`~repro.graph.shm.share_compact_graph`) and ships workers only the
tiny :class:`~repro.graph.shm.SharedGraphHandle`: each worker *maps* the
graph (digest-verified attach, near-zero startup payload, O(1) extra RSS
per worker) instead of unpickling a private copy — the difference between
"2 workers" and "2x the graph in RAM" at the huge scale tier.  Pass
``share_graph=False`` to force the legacy pickled-copy transport, or
``share_graph=True`` to require the shared one (startup then fails
loudly where shared memory is unavailable instead of silently falling
back).  The segment is owned by the pool and unlinked on *every* exit
path: normal :meth:`close`, worker crash, context-manager exception and
the ``__del__`` safety net.

Lifecycle guarantees
--------------------
* **Start-method safety** — the pool works under ``fork``, ``spawn`` and
  ``forkserver`` (pass ``context=``; ``None`` uses the platform default).
  The worker entry point lives in the importable
  :mod:`repro.parallel.worker` module, and the pool temporarily extends
  ``PYTHONPATH`` with :mod:`repro`'s source root around process creation
  so spawned children can import the package even when only the parent's
  ``sys.path`` knew about it (the pytest case).
* **Startup barrier** — the constructor blocks until every worker reports
  ``ready``; import errors and corrupted payloads surface immediately as
  typed errors instead of hanging the first batch.
* **Crash surfacing** — a worker that raises ships its remote traceback
  back and the batch fails with
  :class:`~repro.errors.ParallelExecutionError`; a worker that *dies*
  (signal, OOM kill, interpreter abort) is detected by liveness polling
  and surfaces as :class:`~repro.errors.WorkerCrashError` with its exit
  code.
* **Graceful shutdown** — :meth:`close` sends each worker the shutdown
  sentinel, joins with a timeout, and only then escalates to
  ``terminate``.  The pool is a context manager; ``close`` is idempotent.
"""

from __future__ import annotations

import contextlib
import itertools
import multiprocessing
import os
import queue as queue_module
from typing import Dict, List, Optional, Sequence

from repro.core.config import AlgorithmKind
from repro.core.types import check_stats_mode
from repro.errors import ParallelExecutionError, WorkerCrashError, is_positive_int
from repro.graph.shm import share_compact_graph
from repro.parallel.merge import ParallelBatchResult, ShardOutput, merge_shard_outputs
from repro.parallel.planner import ShardPlan, chunk_evenly
from repro.parallel.worker import build_init_payload, worker_main

__all__ = ["WorkerPool"]

#: Seconds between liveness polls while waiting on worker messages.
_POLL_SECONDS = 0.1


@contextlib.contextmanager
def _child_importable_pythonpath():
    """Ensure spawned children can ``import repro`` (restores env after).

    ``spawn``/``forkserver`` children start a fresh interpreter that only
    sees ``PYTHONPATH`` — not the parent's ``sys.path`` manipulations
    (pytest's ``pythonpath = ["src"]``, editable installs resolved at
    runtime, ...).  Prepending the package's source root around
    ``Process.start()`` closes that gap; the mutation is reverted before
    control returns, so nothing else observes it.
    """
    import repro

    source_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH")
    parts = existing.split(os.pathsep) if existing else []
    if source_root in parts:
        yield
        return
    os.environ["PYTHONPATH"] = os.pathsep.join([source_root] + parts)
    try:
        yield
    finally:
        if existing is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = existing


class WorkerPool:
    """``N`` persistent worker processes around one graph compilation.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.csr.CompactGraph` compilation, shipped to
        workers over the shared-memory or pickled transport (see the
        module docstring).
    workers:
        Number of worker processes (>= 1).
    index_state:
        Optional :meth:`~repro.core.hub_index.HubIndex.export_state`
        snapshot; workers rebuild a private index from it and report
        their learning back per batch.
    facilities:
        Optional bichromatic facility (V2) node set; workers rebuild the
        partition from it.
    context:
        Start method: ``"fork"``, ``"spawn"``, ``"forkserver"`` or
        ``None`` for the platform default.
    start_timeout:
        Seconds to wait for all workers to report ready.
    share_graph:
        ``None`` (default): share the CSR buffers via shared memory when
        the platform supports it, falling back to pickled copies.
        ``True``: require shared memory (raise otherwise).  ``False``:
        always ship pickled copies.
    """

    def __init__(
        self,
        graph,
        workers: int,
        index_state: Optional[Dict[str, object]] = None,
        facilities=None,
        context: Optional[str] = None,
        start_timeout: float = 60.0,
        share_graph: Optional[bool] = None,
    ) -> None:
        # Attributes close() touches come first: a constructor failure at
        # any later point must leave close() safe to run.
        self._closed = False
        self._graph_owner = None
        self._processes: List[multiprocessing.Process] = []
        self._task_queues = []
        self._result_queue = None
        if not is_positive_int(workers):
            raise ParallelExecutionError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if not getattr(graph, "is_compact", False):
            raise ParallelExecutionError(
                "WorkerPool requires a CompactGraph compilation (its frozen "
                "array buffers are what make shipping the graph cheap); "
                "compile with CompactGraph.from_graph() first"
            )
        try:
            ctx = multiprocessing.get_context(context)
        except ValueError:
            raise ParallelExecutionError(
                f"unknown multiprocessing start method {context!r}; available: "
                f"{multiprocessing.get_all_start_methods()}"
            ) from None

        self._num_workers = workers
        self._start_method = ctx.get_start_method()
        self._has_index = index_state is not None
        self._job_ids = itertools.count()
        # Kept for decoding shard result blocks (entry nodes travel as
        # CSR indexes of this compilation).
        self._graph = graph
        try:
            if share_graph is not False:
                try:
                    self._graph_owner = share_compact_graph(graph)
                except Exception as exc:
                    if share_graph is True:
                        raise ParallelExecutionError(
                            "share_graph=True but publishing the graph to "
                            f"shared memory failed: {exc}"
                        ) from exc
                    # Auto mode: platforms without (writable) shared
                    # memory fall back to the pickled transport.
                    self._graph_owner = None
            init_bytes = build_init_payload(
                None if self._graph_owner is not None else graph,
                index_state=index_state,
                facilities=facilities,
                graph_handle=(
                    self._graph_owner.handle
                    if self._graph_owner is not None
                    else None
                ),
            )
            self._startup_payload_bytes = len(init_bytes)
            self._result_queue = ctx.Queue()
            self._task_queues = [ctx.Queue() for _ in range(workers)]
            with _child_importable_pythonpath():
                for worker_id in range(workers):
                    process = ctx.Process(
                        target=worker_main,
                        args=(
                            worker_id,
                            init_bytes,
                            self._task_queues[worker_id],
                            self._result_queue,
                        ),
                        name=f"repro-worker-{worker_id}",
                        daemon=True,
                    )
                    process.start()
                    self._processes.append(process)
            self._await_ready(start_timeout)
        except BaseException:
            self.close(timeout=2.0)
            raise

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Number of worker processes."""
        return self._num_workers

    @property
    def start_method(self) -> str:
        """The multiprocessing start method the workers were created with."""
        return self._start_method

    @property
    def has_index(self) -> bool:
        """Whether workers carry a hub-index snapshot."""
        return self._has_index

    @property
    def uses_shared_graph(self) -> bool:
        """Whether workers map the graph from shared memory (vs pickled)."""
        return self._graph_owner is not None

    @property
    def shared_segment_name(self) -> Optional[str]:
        """The shared graph segment's name, or ``None`` in pickled mode."""
        owner = self._graph_owner
        return owner.segment_name if owner is not None else None

    @property
    def startup_payload_bytes(self) -> int:
        """Bytes of init payload pickled per worker at startup.

        In shared-graph mode this is just the handle + header (a few
        hundred bytes, independent of graph size); in pickled mode it
        includes the full CSR buffers.
        """
        return self._startup_payload_bytes

    @property
    def is_closed(self) -> bool:
        """Whether the pool has been shut down."""
        return self._closed

    @property
    def worker_pids(self) -> List[Optional[int]]:
        """The workers' process ids (``None`` before start, after close)."""
        return [process.pid for process in self._processes]

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "closed" if self._closed else "open"
        return (
            f"<WorkerPool {state} workers={self._num_workers} "
            f"start_method={self._start_method!r} index={self._has_index}>"
        )

    # ------------------------------------------------------------------
    def run_batch(
        self,
        plan: ShardPlan,
        k: int,
        algorithm,
        bounds=None,
        collect_deltas: Optional[bool] = None,
        stats_mode: str = "per-query",
    ) -> ParallelBatchResult:
        """Execute one planned batch across the workers.

        Shard ``i`` of the plan runs on worker ``i mod num_workers`` (the
        identity mapping when the plan was built for this pool's worker
        count, which keeps the affinity policy's pinning honest).

        ``collect_deltas`` defaults to "whenever the workers hold an
        index and the algorithm is indexed" — exactly when there is
        learning to harvest.  ``stats_mode`` selects what stats payload
        the shard result blocks carry back (see
        :mod:`repro.parallel.codec`); with ``"none"`` the merged batch's
        ``stats`` is ``None``.

        Raises
        ------
        ParallelExecutionError
            When the pool is closed, or a worker reported an exception
            (the remote traceback is embedded in the message).
        WorkerCrashError
            When a worker process died without reporting anything; its
            ``positions`` attribute names the batch positions the dead
            worker was still holding.
        """
        if self._closed:
            raise ParallelExecutionError(
                "cannot run a batch on a closed WorkerPool"
            )
        kind = AlgorithmKind(algorithm)
        check_stats_mode(stats_mode)
        if collect_deltas is None:
            collect_deltas = self._has_index and kind is AlgorithmKind.INDEXED
        job_id = next(self._job_ids)
        shards = plan.non_empty()
        shard_by_index = {shard.index: shard for shard in shards}
        for shard in shards:
            self._task_queues[shard.index % self._num_workers].put(
                (
                    "query",
                    job_id,
                    shard.positions,
                    shard.queries,
                    k,
                    kind.value,
                    bounds,
                    bool(collect_deltas),
                    stats_mode,
                )
            )
        outputs: List[ShardOutput] = []
        returned: set = set()
        pending = len(shards)
        arrival: Dict[int, int] = {}
        while pending:
            try:
                message_kind, worker_id, message_job, payload = self._receive()
            except WorkerCrashError as exc:
                # Name the casualties: every position of a shard assigned
                # to the dead worker that has not come back yet.
                lost = tuple(
                    position
                    for shard in shards
                    if shard.index % self._num_workers == exc.worker_id
                    and shard.index not in returned
                    for position in shard.positions
                )
                raise WorkerCrashError(
                    exc.worker_id, exc.exitcode, positions=lost
                ) from exc
            if message_job != job_id:
                # A leftover from a batch that failed after this worker had
                # already finished its shard; drop it.
                continue
            if message_kind == "error":
                raise ParallelExecutionError(
                    f"worker {worker_id} failed while evaluating its shard:\n"
                    f"{payload}"
                )
            positions, results, delta = payload
            arrival[worker_id] = arrival.get(worker_id, 0) + 1
            # Recover the shard index deterministically: workers process
            # their queue in FIFO order, and shard s went to worker s % N,
            # so the j-th arrival from worker w is the j-th shard (in index
            # order) assigned to w.
            shard_index = self._nth_shard_of_worker(
                shards, worker_id, arrival[worker_id]
            )
            returned.add(shard_index)
            outputs.append(
                ShardOutput(
                    shard_index=shard_index,
                    positions=positions,
                    results=results,
                    delta=delta,
                    # Decode against the parent's plan, not worker-reported
                    # identifiers.
                    queries=shard_by_index[shard_index].queries,
                )
            )
            pending -= 1
        return merge_shard_outputs(
            outputs, batch_size=plan.num_queries, csr=self._graph
        )

    def update_index(self, index_state: Dict[str, object]) -> None:
        """Broadcast a fresh hub-index snapshot to every worker (blocking).

        Each worker rebuilds its private index from ``index_state`` (an
        :meth:`~repro.core.hub_index.HubIndex.export_state` snapshot) and
        adopts it into its engine, replacing whatever snapshot it held —
        the in-place alternative to tearing the pool down whenever the
        master index learns or is rebuilt.  Returns once every worker has
        acknowledged, so the next :meth:`run_batch` is guaranteed to run
        on the new state.

        Raises
        ------
        ParallelExecutionError
            When the pool is closed or a worker failed to adopt the
            snapshot (remote traceback embedded).
        WorkerCrashError
            When a worker process died during the sync.
        """
        if self._closed:
            raise ParallelExecutionError(
                "cannot update the index on a closed WorkerPool"
            )
        job_id = next(self._job_ids)
        for task_queue in self._task_queues:
            task_queue.put(("index", job_id, index_state))
        pending = self._num_workers
        while pending:
            message_kind, worker_id, message_job, payload = self._receive()
            if message_job != job_id:
                continue
            if message_kind == "error":
                raise ParallelExecutionError(
                    f"worker {worker_id} failed to adopt the hub-index "
                    f"snapshot:\n{payload}"
                )
            pending -= 1
        self._has_index = True

    def run_hub_build(self, hubs, explore_limit: int, capacity: int):
        """Explore ``hubs`` across the workers; returns deltas in hub order.

        The hub list is split into contiguous chunks
        (:func:`~repro.parallel.planner.chunk_evenly`) — worker ``j``
        explores the ``j``-th run of hubs — and the returned
        :class:`~repro.core.hub_index.HubIndexDelta` list is ordered by
        chunk, i.e. by original hub order.  Merging the deltas in that
        order replays the sequential build's recording sequence exactly;
        :meth:`~repro.core.hub_index.HubIndex.build_parallel` is the
        intended caller.

        Raises
        ------
        ParallelExecutionError
            When the pool is closed, or a worker reported an exception.
        WorkerCrashError
            When a worker process died mid-exploration.
        """
        if self._closed:
            raise ParallelExecutionError(
                "cannot run a hub build on a closed WorkerPool"
            )
        job_id = next(self._job_ids)
        chunks = chunk_evenly(list(hubs), self._num_workers)
        dispatched: List[int] = []
        for worker_id, chunk in enumerate(chunks):
            if not chunk:
                continue
            self._task_queues[worker_id].put(
                ("hubs", job_id, tuple(chunk), explore_limit, capacity)
            )
            dispatched.append(worker_id)
        deltas: Dict[int, object] = {}
        pending = len(dispatched)
        while pending:
            message_kind, worker_id, message_job, payload = self._receive()
            if message_job != job_id:
                continue
            if message_kind == "error":
                raise ParallelExecutionError(
                    f"worker {worker_id} failed while exploring its hub "
                    f"chunk:\n{payload}"
                )
            deltas[worker_id] = payload
            pending -= 1
        return [deltas[worker_id] for worker_id in dispatched]

    def _nth_shard_of_worker(self, shards, worker_id: int, nth: int) -> int:
        """Index of the ``nth`` (1-based) shard dispatched to ``worker_id``."""
        count = 0
        for shard_index in sorted(shard.index for shard in shards):
            if shard_index % self._num_workers == worker_id:
                count += 1
                if count == nth:
                    return shard_index
        raise ParallelExecutionError(  # pragma: no cover - protocol violation
            f"worker {worker_id} returned more shards than it was assigned"
        )

    def _receive(self):
        """Next worker message, polling liveness so crashes cannot hang us."""
        while True:
            try:
                return self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                for worker_id, process in enumerate(self._processes):
                    if not process.is_alive():
                        # Give a crashed worker's final message (flushed by
                        # the queue feeder before death) one last chance.
                        try:
                            return self._result_queue.get(timeout=_POLL_SECONDS)
                        except queue_module.Empty:
                            raise WorkerCrashError(
                                worker_id, process.exitcode
                            ) from None

    def _await_ready(self, timeout: float) -> None:
        deadline = timeout / _POLL_SECONDS
        ready = 0
        polls = 0.0
        while ready < self._num_workers:
            try:
                message_kind, worker_id, _, payload = self._result_queue.get(
                    timeout=_POLL_SECONDS
                )
            except queue_module.Empty:
                polls += 1
                if polls > deadline:
                    hint = ""
                    if self._start_method != "fork":
                        hint = (
                            "; under the spawn/forkserver start methods the "
                            "launching script must be import-safe — guard "
                            "pool creation with `if __name__ == '__main__':` "
                            "or children re-execute the script instead of "
                            "starting"
                        )
                    raise ParallelExecutionError(
                        f"worker pool startup timed out after {timeout:.0f}s "
                        f"({ready}/{self._num_workers} workers ready){hint}"
                    ) from None
                for worker_id, process in enumerate(self._processes):
                    if not process.is_alive():
                        raise WorkerCrashError(
                            worker_id, process.exitcode, detail="during startup"
                        ) from None
                continue
            if message_kind == "error":
                raise ParallelExecutionError(
                    f"worker {worker_id} failed to start:\n{payload}"
                )
            ready += 1

    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Shut the workers down; escalates to ``terminate`` on stragglers.

        Idempotent and exception-proof by contract: it runs on normal
        shutdown, after a :class:`~repro.errors.WorkerCrashError`, from
        context-manager ``__exit__`` during an unrelated exception, and
        from ``__del__`` at interpreter teardown — none of which may
        raise.  Every queue operation is individually guarded (a crashed
        worker leaves broken pipes; GC-time cleanup finds queues already
        torn down), and the shared graph segment, if any, is unlinked
        unconditionally at the end of every path through this method.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for task_queue in self._task_queues:
                try:
                    task_queue.put(None)
                except (OSError, ValueError, BrokenPipeError):
                    pass  # queue already broken / worker gone
            for process in self._processes:
                try:
                    process.join(timeout=timeout)
                except Exception:
                    pass
            for process in self._processes:
                try:
                    if process.is_alive():
                        process.terminate()
                        process.join(timeout=2.0)
                except Exception:
                    pass
            queues = list(self._task_queues)
            if self._result_queue is not None:
                queues.append(self._result_queue)
            for any_queue in queues:
                try:
                    any_queue.close()
                except (OSError, ValueError, BrokenPipeError, AttributeError):
                    pass
                try:
                    any_queue.cancel_join_thread()
                except Exception:
                    pass
        finally:
            # The one cleanup that MUST happen on every path: a leaked
            # segment outlives the process and eats /dev/shm forever.
            owner = self._graph_owner
            self._graph_owner = None
            if owner is not None:
                owner.unlink()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close(timeout=0.1)
        except Exception:
            pass
