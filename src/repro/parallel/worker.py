"""The worker-process side of the pool (spawn-safe by construction).

Everything in this module is importable at top level: under the ``spawn``
start method the child pickles the entry point *by reference* and
re-imports this module from scratch, so nothing here may depend on state
that only exists in the parent (closures, lambdas, module-level
mutations).

Startup contract
----------------
Each worker receives one :func:`pickle.dumps`-ed init payload — built by
:func:`build_init_payload` in the parent — containing the coordinator's
:class:`~repro.graph.csr.CompactGraph` compilation, the optional
bichromatic facility set, and an optional
:meth:`~repro.core.hub_index.HubIndex.export_state` snapshot.  Pickling is
explicit (bytes, not objects) so the graph and index are *copies* under
``fork`` too: a worker warming its local index can never mutate the
coordinator's.

The worker rebuilds a full :class:`~repro.core.engine.ReverseKRanksEngine`
around the compilation itself (a :class:`CompactGraph` satisfies the whole
read-only graph protocol, and every algorithm's hot loop recognises its
``is_compact`` marker), verifies the graph's content digest against the
digest recorded at pool construction, and then serves shard tasks until it
reads the ``None`` shutdown sentinel.

Message protocol (all tuples, queue-pickled)
--------------------------------------------
* parent -> worker: ``(job_id, positions, queries, k, algorithm_value,
  bounds, collect_delta, stats_mode)`` or ``None`` to shut down.
* worker -> parent: ``(kind, worker_id, job_id, payload)`` where ``kind``
  is ``"ready"`` (startup complete), ``"done"`` (payload is
  ``(positions, block, delta)`` with ``block`` a flat
  :class:`~repro.parallel.codec.ShardResultBlock` — per-object result
  pickling is gone; see :mod:`repro.parallel.codec` for the wire format)
  or ``"error"`` (payload is a formatted remote traceback string).
"""

from __future__ import annotations

import pickle
import traceback
from typing import Dict, Optional

__all__ = ["build_init_payload", "worker_main"]


def build_init_payload(
    graph,
    index_state: Optional[Dict[str, object]] = None,
    facilities=None,
) -> bytes:
    """Serialise the per-worker startup state (parent side).

    ``graph`` must be a :class:`~repro.graph.csr.CompactGraph`;
    ``facilities`` the bichromatic V2 node set (or ``None``);
    ``index_state`` an :meth:`~repro.core.hub_index.HubIndex.export_state`
    snapshot (or ``None``).
    """
    payload = {
        "graph": graph,
        "digest": graph.content_digest(),
        "facilities": None if facilities is None else frozenset(facilities),
        "index_state": index_state,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


class _WorkerState:
    """A worker's private engine, rebuilt from the init payload."""

    def __init__(self, init: Dict[str, object]) -> None:
        # Imported here, not at module top: the engine layer imports
        # repro.parallel lazily and this module is also imported by the
        # parent-side pool — keeping the heavyweight imports inside the
        # constructor breaks any residual cycle risk and speeds up spawn's
        # re-import of the module itself.
        from repro.core.engine import ReverseKRanksEngine
        from repro.core.hub_index import HubIndex
        from repro.errors import ParallelExecutionError
        from repro.graph.partition import BichromaticPartition

        graph = init["graph"]
        digest = graph.content_digest()
        if digest != init["digest"]:
            raise ParallelExecutionError(
                "worker received a corrupted graph payload: content digest "
                f"{digest} != expected {init['digest']}"
            )
        facilities = init["facilities"]
        partition = (
            BichromaticPartition(graph, facilities)
            if facilities is not None
            else None
        )
        index_state = init["index_state"]
        index = (
            HubIndex.from_state(graph, index_state)
            if index_state is not None
            else None
        )
        self.engine = ReverseKRanksEngine(graph, partition=partition, index=index)

    def run_shard(
        self, positions, queries, k, algorithm, bounds, collect_delta,
        stats_mode="per-query",
    ):
        """Evaluate one shard; returns ``(positions, block, delta)``.

        ``block`` is the shard's results packed into flat array buffers
        by :class:`~repro.parallel.codec.ShardResultCodec` under
        ``stats_mode`` — the worker's engine *is* the CSR compilation, so
        entry nodes leave as integer indexes, never pickled identifiers.
        """
        from repro.parallel.codec import ShardResultCodec

        index = self.engine.index
        if collect_delta and index is not None:
            index.start_learning_log()
        try:
            results = self.engine.query_many(
                list(queries), k, algorithm=algorithm, bounds=bounds,
                use_csr=False,
            )
        finally:
            delta = (
                index.pop_learning_log()
                if collect_delta and index is not None
                else None
            )
        block = ShardResultCodec.encode(
            results, self.engine.graph, stats_mode=stats_mode
        )
        return tuple(positions), block, delta


def worker_main(worker_id: int, init_bytes: bytes, task_queue, result_queue) -> None:
    """Entry point of one worker process.

    Reports ``"ready"`` after the engine is rebuilt, then answers shard
    tasks until the shutdown sentinel.  Any exception — during startup or
    while serving a shard — is formatted with its traceback and shipped
    to the parent as an ``"error"`` message; the worker survives shard
    errors (the next task may be fine) but startup errors are fatal.
    """
    try:
        state = _WorkerState(pickle.loads(init_bytes))
    except BaseException:
        result_queue.put(("error", worker_id, None, traceback.format_exc()))
        return
    result_queue.put(("ready", worker_id, None, None))

    while True:
        task = task_queue.get()
        if task is None:
            break
        (
            job_id, positions, queries, k, algorithm, bounds, collect_delta,
            stats_mode,
        ) = task
        try:
            payload = state.run_shard(
                positions, queries, k, algorithm, bounds, collect_delta,
                stats_mode,
            )
        except BaseException:
            result_queue.put(
                ("error", worker_id, job_id, traceback.format_exc())
            )
            continue
        result_queue.put(("done", worker_id, job_id, payload))
