"""The worker-process side of the pool (spawn-safe by construction).

Everything in this module is importable at top level: under the ``spawn``
start method the child pickles the entry point *by reference* and
re-imports this module from scratch, so nothing here may depend on state
that only exists in the parent (closures, lambdas, module-level
mutations).

Startup contract
----------------
Each worker receives one :func:`pickle.dumps`-ed init payload — built by
:func:`build_init_payload` in the parent — containing the graph in one of
two transports plus the optional bichromatic facility set and an optional
:meth:`~repro.core.hub_index.HubIndex.export_state` snapshot:

* **pickled** (``"graph"`` key): the coordinator's
  :class:`~repro.graph.csr.CompactGraph` compilation serialised in full.
  Pickling is explicit (bytes, not objects) so the graph and index are
  *copies* under ``fork`` too: a worker warming its local index can never
  mutate the coordinator's.  The worker verifies the compilation's
  content digest against the digest recorded at pool construction.
* **shared** (``"graph_handle"`` key): a
  :class:`~repro.graph.shm.SharedGraphHandle` naming a shared-memory
  segment published by the parent.  The worker *maps* the segment —
  :func:`~repro.graph.shm.attach_compact_graph` recomputes the content
  digest over the mapped bytes before handing the graph out — so startup
  cost and per-worker RSS stay O(1) in the graph size.  The worker keeps
  the segment mapped for its whole lifetime (the graph's buffers are
  views into it) and never unlinks: the segment's lifecycle belongs to
  the parent pool.

The worker rebuilds a full :class:`~repro.core.engine.ReverseKRanksEngine`
around the compilation itself (a :class:`CompactGraph` satisfies the whole
read-only graph protocol, and every algorithm's hot loop recognises its
``is_compact`` marker), then serves tasks until it reads the ``None``
shutdown sentinel.

Message protocol (all tuples, queue-pickled)
--------------------------------------------
* parent -> worker: tagged tuples —
  ``("query", job_id, shard_index, positions, queries, k,
  algorithm_value, bounds, collect_delta, stats_mode, trace_id)`` for a
  query shard (``trace_id`` is ``None`` unless the parent batch is being
  traced — see :mod:`repro.obs.trace`), ``("hubs", job_id, hubs,
  explore_limit, capacity)`` for a hub-index build shard, ``("index",
  job_id, index_state)`` to adopt a fresher hub-index snapshot
  (acknowledged with a bare ``"done"``), ``("graph", job_id,
  update_state, index_state)`` to rebuild the serving engine over a
  delta-overlay (:meth:`~repro.graph.overlay.OverlayGraph.overlay_state`
  side-table applied over the startup base compilation, plus an optional
  post-repair index snapshot; acknowledged with a bare ``"done"``), or
  ``None`` to shut down.
* worker -> parent: ``(kind, worker_id, job_id, payload)`` where ``kind``
  is ``"ready"`` (startup complete), ``"done"`` (payload is
  ``(shard_index, positions, block, delta, trace)`` for a query shard —
  ``shard_index`` echoed from the task so the parent can attribute and
  re-dispatch shards without assuming arrival order, ``block`` a flat
  :class:`~repro.parallel.codec.ShardResultBlock`; see
  :mod:`repro.parallel.codec` for the wire format; ``trace`` the
  worker-side span tree (a plain dict) or ``None`` — or a bare
  :class:`~repro.core.hub_index.HubIndexDelta` for a hub shard) or
  ``"error"`` (payload is a formatted remote traceback string).

Fault injection
---------------
Three :mod:`repro.faults` failpoints are compiled into the serving loop:
``worker.start`` (after the engine is rebuilt, before ``ready``),
``worker.before_task`` (per dequeued task) and ``worker.before_result``
(after computing a payload, before enqueueing it — the hung-worker
site).  :func:`~repro.faults.on_worker_start` re-derives the trigger
RNGs with a ``(worker_id, generation)`` salt, so a respawned worker does
not replay its predecessor's crash schedule and die at the same task
forever.
"""

from __future__ import annotations

import pickle
import traceback
from typing import Dict, Optional

from repro import faults

__all__ = ["build_init_payload", "worker_main"]


def build_init_payload(
    graph,
    index_state: Optional[Dict[str, object]] = None,
    facilities=None,
    graph_handle=None,
    graph_update: Optional[Dict[str, object]] = None,
) -> bytes:
    """Serialise the per-worker startup state (parent side).

    Exactly one graph transport is encoded: when ``graph_handle`` (a
    :class:`~repro.graph.shm.SharedGraphHandle`) is given the payload
    carries only that handle — the CSR buffers never enter the pickle and
    the payload stays a few hundred bytes regardless of graph size;
    otherwise ``graph`` (a :class:`~repro.graph.csr.CompactGraph`) is
    pickled in full alongside its content digest.  ``facilities`` is the
    bichromatic V2 node set (or ``None``); ``index_state`` an
    :meth:`~repro.core.hub_index.HubIndex.export_state` snapshot (or
    ``None``); ``graph_update`` an
    :meth:`~repro.graph.overlay.OverlayGraph.overlay_state` side-table to
    re-apply over the transported base (or ``None``) — overlays refuse
    pickling by design, so the base always travels frozen and the worker
    reconstructs the overlay locally, digest-verified against the base it
    actually attached.
    """
    payload = {
        "facilities": None if facilities is None else frozenset(facilities),
        "index_state": index_state,
        "graph_update": graph_update,
    }
    if graph_handle is not None:
        payload["graph_handle"] = graph_handle
    else:
        payload["graph"] = graph
        payload["digest"] = graph.content_digest()
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


class _WorkerState:
    """A worker's private engine, rebuilt from the init payload."""

    def __init__(self, init: Dict[str, object]) -> None:
        # Imported here, not at module top: the engine layer imports
        # repro.parallel lazily and this module is also imported by the
        # parent-side pool — keeping the heavyweight imports inside the
        # constructor breaks any residual cycle risk and speeds up spawn's
        # re-import of the module itself.
        from repro.errors import ParallelExecutionError

        handle = init.get("graph_handle")
        if handle is not None:
            from repro.graph.shm import attach_compact_graph

            # attach_compact_graph digest-verifies the mapped bytes; the
            # segment must stay referenced as long as the graph lives.
            graph, self._segment = attach_compact_graph(handle)
        else:
            self._segment = None
            graph = init["graph"]
            digest = graph.content_digest()
            if digest != init["digest"]:
                raise ParallelExecutionError(
                    "worker received a corrupted graph payload: content digest "
                    f"{digest} != expected {init['digest']}"
                )
        # The frozen base compilation and facility set are retained for
        # the worker's whole lifetime: every later ("graph", ...) task
        # rebuilds its overlay over *this* base, never over a previous
        # overlay (overlays do not stack).
        self._base_graph = graph
        self._facilities = init["facilities"]
        graph_update = init.get("graph_update")
        if graph_update is not None:
            from repro.graph.overlay import OverlayGraph

            # from_state digest-verifies the side-table against the base
            # this worker actually attached/unpickled.
            graph = OverlayGraph.from_state(graph, graph_update)
        self._build_engine(graph, init["index_state"])

    def _build_engine(self, graph, index_state) -> None:
        """(Re)assemble the serving engine around ``graph``."""
        from repro.core.engine import ReverseKRanksEngine
        from repro.core.hub_index import HubIndex
        from repro.graph.partition import BichromaticPartition

        partition = (
            BichromaticPartition(graph, self._facilities)
            if self._facilities is not None
            else None
        )
        index = (
            HubIndex.from_state(graph, index_state)
            if index_state is not None
            else None
        )
        self.engine = ReverseKRanksEngine(graph, partition=partition, index=index)

    def update_graph(self, update_state, index_state) -> None:
        """Swap in a new delta-overlay without restarting the process.

        ``update_state`` is the coordinator's
        :meth:`~repro.graph.overlay.OverlayGraph.overlay_state` — a full
        replacement, not an increment: it is applied over the retained
        startup *base*, so consecutive updates never stack overlays.
        ``index_state`` (when given) is the master's post-repair
        :meth:`~repro.core.hub_index.HubIndex.export_state`, exported at
        the overlay's graph version so the rebuilt engine's freshness
        checks hold immediately.
        """
        from repro.graph.overlay import OverlayGraph

        graph = OverlayGraph.from_state(self._base_graph, update_state)
        self._build_engine(graph, index_state)

    def run_shard(
        self, shard_index, positions, queries, k, algorithm, bounds,
        collect_delta, stats_mode="per-query", trace_id=None,
    ):
        """Evaluate one query shard; returns ``(shard_index, positions, block, delta, trace)``.

        ``block`` is the shard's results packed into flat array buffers
        by :class:`~repro.parallel.codec.ShardResultCodec` under
        ``stats_mode`` — the worker's engine *is* the CSR compilation, so
        entry nodes leave as integer indexes, never pickled identifiers.

        ``trace_id`` (non-``None`` only for traced parent batches)
        enables the worker engine's tracer for exactly this shard: the
        shard runs under a ``worker.shard`` root span carrying the
        parent's trace id, the engine's own spans nest inside it, and the
        finished tree travels back as ``trace`` — durations and
        worker-local offsets only, because ``perf_counter`` epochs are
        not comparable across processes.  Untraced shards pay a single
        attribute check and allocate no span objects.
        """
        from repro.parallel.codec import ShardResultCodec

        tracer = self.engine.tracer
        tracer.enabled = trace_id is not None
        with tracer.trace(
            "worker.shard",
            trace_id=trace_id,
            shard=shard_index,
            queries=len(queries),
        ):
            index = self.engine.index
            if collect_delta and index is not None:
                index.start_learning_log()
            try:
                results = self.engine.query_many(
                    list(queries), k, algorithm=algorithm, bounds=bounds,
                    use_csr=False,
                )
            finally:
                delta = (
                    index.pop_learning_log()
                    if collect_delta and index is not None
                    else None
                )
            with tracer.span("worker.encode", stats_mode=stats_mode):
                block = ShardResultCodec.encode(
                    results, self.engine.graph, stats_mode=stats_mode
                )
        trace = tracer.last_trace["root"] if trace_id is not None else None
        return shard_index, tuple(positions), block, delta, trace

    def update_index(self, index_state) -> None:
        """Replace the engine's hub-index snapshot with a fresher one.

        The pool broadcasts the master's
        :meth:`~repro.core.hub_index.HubIndex.export_state` whenever the
        master has learned past the workers' snapshots (or was rebuilt);
        adopting it keeps this worker answering with the same knowledge —
        and the same capacity bound — as the master.
        """
        from repro.core.hub_index import HubIndex

        self.engine.adopt_index(
            HubIndex.from_state(self.engine.graph, index_state)
        )

    def run_hub_shard(self, hubs, explore_limit, capacity):
        """Explore ``hubs`` and return the learned :class:`HubIndexDelta`.

        The shard builds a throwaway index over the worker's own graph
        copy/mapping purely to drive the explorations with a learning log
        attached; everything learned — exact ranks and per-hub settled
        counts — leaves as the delta, which the parent merges in hub
        order to reproduce the sequential build exactly (different hubs
        record disjoint ``(source, target)`` keys, so merge order across
        shards never changes a value; see
        :meth:`~repro.core.hub_index.HubIndex.build_parallel`).
        """
        from repro.core.hub_index import HubIndex

        scratch = HubIndex(self.engine.graph, capacity, hubs)
        scratch.start_learning_log()
        for hub in hubs:
            scratch._explore_hub(hub, explore_limit, self.engine.graph)
        return scratch.pop_learning_log()

    def release(self) -> None:
        """Drop the engine and close the shared mapping, in that order.

        Called on clean shutdown so the segment's mmap can actually close:
        the attached graph's buffers are exported memoryviews into it, and
        closing with exports alive raises ``BufferError`` (which at
        interpreter-exit GC would surface as "Exception ignored" noise on
        stderr).  Dropping every graph reference first, then collecting,
        releases the exports.
        """
        segment = self._segment
        self._segment = None
        self.engine = None
        self._base_graph = None
        if segment is None:
            return
        import gc

        gc.collect()
        try:
            segment.close()
        except Exception:  # pragma: no cover - stray export still alive
            pass


def worker_main(
    worker_id: int,
    init_bytes: bytes,
    task_queue,
    result_queue,
    generation: int = 0,
) -> None:
    """Entry point of one worker process.

    Reports ``"ready"`` after the engine is rebuilt, then answers tagged
    tasks until the shutdown sentinel.  Any exception — during startup or
    while serving a task — is formatted with its traceback and shipped
    to the parent as an ``"error"`` message; the worker survives task
    errors (the next task may be fine) but startup errors are fatal.

    ``generation`` is the slot's respawn count (0 for the original
    worker); it only feeds the failpoint RNG salt, so replacement
    workers walk fresh deterministic fault schedules.
    """
    faults.on_worker_start(worker_id, generation)
    try:
        state = _WorkerState(pickle.loads(init_bytes))
        faults.fire("worker.start")
    except BaseException:
        result_queue.put(("error", worker_id, None, traceback.format_exc()))
        return
    result_queue.put(("ready", worker_id, None, None))

    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            tag, job_id = task[0], task[1]
            try:
                faults.fire("worker.before_task")
                if tag == "query":
                    (
                        shard_index, positions, queries, k, algorithm, bounds,
                        collect_delta, stats_mode, trace_id,
                    ) = task[2:]
                    payload = state.run_shard(
                        shard_index, positions, queries, k, algorithm, bounds,
                        collect_delta, stats_mode, trace_id,
                    )
                elif tag == "hubs":
                    hubs, explore_limit, capacity = task[2:]
                    payload = state.run_hub_shard(hubs, explore_limit, capacity)
                elif tag == "index":
                    (index_state,) = task[2:]
                    state.update_index(index_state)
                    payload = None
                elif tag == "graph":
                    update_state, index_state = task[2:]
                    state.update_graph(update_state, index_state)
                    payload = None
                else:
                    raise ValueError(f"unknown worker task tag {tag!r}")
                faults.fire("worker.before_result")
            except BaseException:
                result_queue.put(
                    ("error", worker_id, job_id, traceback.format_exc())
                )
                continue
            result_queue.put(("done", worker_id, job_id, payload))
    finally:
        state.release()
