"""Benchmark report assembly and the ``BENCH_core.json`` writer.

The JSON schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "generated_by": "repro.bench",
      "created_at": "2026-07-30T12:00:00Z",       # UTC, ISO-8601
      "environment": {"python": "...", "platform": "..."},
      "config": {"scale": "smoke", "repetitions": 1, "warmup": 0,
                 "seed": 0, "use_csr": true, "families": [...]},
      "workloads": [
        {
          "name": "gnp-n120", "family": "gnp",
          "num_nodes": 120, "num_edges": 362, "directed": false,
          "bichromatic": false, "num_queries": 4, "k": 8, "seed": 0,
          "params": {...}, "backend": "csr", "backend_consistent": true,
          "algorithms": {
            "naive":   {"mean_seconds": ..., "best_seconds": ...,
                        "per_query_seconds": ..., "repetitions_seconds": [...],
                        "rank_refinements": ..., "validated": true,
                        "speedup_vs_naive": 1.0},
            "static":  {...}, "dynamic": {...},
            "indexed": {..., "index_build_seconds": ...}
          }
        }, ...
      ]
    }

``validated`` is ``true`` only when the algorithm's batch results were
checked against the naive baseline during the run, and
``backend_consistent`` only when the CSR backend reproduced the dict
backend's results exactly (bichromatic workloads included).

Large-scale workloads add ``naive_sample`` / ``index_params`` to the
workload metadata; their naive timing carries ``sampled_candidates`` and
``estimated_full_seconds`` (the extrapolated exhaustive batch cost that
``speedup_vs_naive`` is computed against), and ``validated`` there means
the exact-rank spot checks plus pairwise algorithm agreement passed.  When
the run used ``--index-cache``, the indexed timing records ``index_cache``
as ``"hit"`` or ``"miss"``.

Runs with a ``--workers`` axis record, per algorithm row, the worker
count that executed its timed batches (``workers``, 1 = in-process) and —
for parallel rows, keyed ``name@wN`` — the direct process-scaling factor
``speedup_vs_serial`` (same-run single-process batch time over this
row's) plus ``ipc_bytes_per_query``, the flat result-payload bytes per
query that crossed the process boundary in one batch (reported by the
shard result codec; shrinks under ``--stats aggregate`` / ``none``,
which the config records as ``stats``).  Parallel rows also carry the
graph-transport facts: ``graph_shared`` (``true`` when the workers
mapped the shared-memory CSR segment instead of unpickling a private
graph copy) and ``startup_payload_bytes`` (the pickled worker init
payload — under the shared transport the graph contributes a fixed
~200-byte handle instead of its full pickle; an adopted hub index's
snapshot still travels by value).  Workloads that ran a parallel
pass additionally carry ``parallel_consistent``: ``true`` iff every
parallel batch was rank-identical to its sequential reference; when the
run also *built* a hub index (no cache hit), ``parallel_index_consistent``
records that a pool-built index exported byte-identical state to the
sequential build.  All additions are backwards-compatible optional
fields, so the schema version stays 1.
"""

from __future__ import annotations

import datetime
import json
import platform
import sys
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.bench.harness import WorkloadResult

__all__ = ["SCHEMA_VERSION", "build_report", "write_report", "render_table"]

SCHEMA_VERSION = 1

#: Default report location — the repo-root trajectory file every later
#: optimisation PR is judged against.
DEFAULT_REPORT_NAME = "BENCH_core.json"


def build_report(
    results: List[WorkloadResult],
    config: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the JSON-ready report document."""
    created = datetime.datetime.now(datetime.timezone.utc)
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "repro.bench",
        "created_at": created.strftime("%Y-%m-%dT%H:%M:%SZ"),
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "config": dict(config or {}),
        "workloads": [result.as_dict() for result in results],
    }


def write_report(
    report: Dict[str, object],
    path: Union[str, Path] = DEFAULT_REPORT_NAME,
) -> Path:
    """Write ``report`` as pretty-printed JSON; returns the resolved path."""
    target = Path(path)
    target.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return target.resolve()


def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def render_table(report: Dict[str, object]) -> str:
    """A compact per-workload summary table for the CLI."""
    lines = []
    header = (
        f"{'workload':<20} {'algo':<12} {'mean/query':>10} "
        f"{'speedup':>8} {'vs-w1':>7} {'refine':>7} {'ok':>3}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    any_sampled = False
    for workload in report["workloads"]:
        for name, timing in workload["algorithms"].items():
            if timing.get("skipped"):
                lines.append(
                    f"{workload['name']:<20} {name:<12} {'skipped':>10}"
                )
                continue
            label = name
            if timing.get("sampled_candidates") is not None:
                label = f"{name}*"
                any_sampled = True
            speedup = timing.get("speedup_vs_naive")
            serial = timing.get("speedup_vs_serial")
            validated = timing.get("validated")
            refinements = timing.get("rank_refinements")
            lines.append(
                f"{workload['name']:<20} {label:<12} "
                f"{_format_seconds(timing.get('per_query_seconds')):>10} "
                f"{(f'{speedup:.1f}x' if speedup else '-'):>8} "
                f"{(f'{serial:.2f}x' if serial else '-'):>7} "
                f"{(refinements if refinements is not None else '-'):>7} "
                f"{('y' if validated else '-'):>3}"
            )
    if any_sampled:
        lines.append(
            "* baseline timed on a candidate sample; speedups are vs its "
            "extrapolated exhaustive cost"
        )
    return "\n".join(lines)
