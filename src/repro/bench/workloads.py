"""Seeded benchmark workload generators.

A *workload* bundles a synthetic graph, a deterministic set of query nodes
and a result size ``k`` — everything :func:`repro.bench.harness.run_workload`
needs to time the four algorithms against each other.  Six graph families
mirror the shapes the paper's experiments stress:

* ``path``        — the worst case for rank locality (long chains);
* ``grid``        — planar, many near-ties;
* ``gnp``         — Erdős–Rényi G(n, p), the paper's synthetic default;
* ``powerlaw``    — preferential attachment (hub-heavy degree sequence),
  the regime the hub index is designed for;
* ``bichromatic`` — a G(n, p) with a facility/community split
  (Definitions 3-4), queried from facility nodes;
* ``lattice``     — a road-network-like grid with sparse diagonal
  shortcuts and low weight variance, the shape of the huge-scale tier
  (real road networks load via :func:`dataset_workload`).

Every generator is parametric in size and fully determined by an explicit
``seed`` (stdlib :mod:`random` only), so runs are reproducible and the
recorded ``BENCH_core.json`` trajectory is comparable across commits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.errors import WorkloadError
from repro.graph import BichromaticPartition, Graph
from repro.graph.io import load_dataset

__all__ = [
    "Workload",
    "path_workload",
    "grid_workload",
    "gnp_workload",
    "powerlaw_workload",
    "bichromatic_workload",
    "lattice_workload",
    "dataset_workload",
    "WORKLOAD_FAMILIES",
    "build_suite",
    "smoke_suite",
    "default_suite",
    "large_suite",
    "huge_suite",
]


@dataclass
class Workload:
    """One benchmark unit: a graph plus the queries to run against it.

    ``naive_sample`` marks a *large-scale* workload: the naive baseline is
    timed on (and spot-validated against) that many deterministically
    sampled candidates instead of all ``|V| - 1`` — exhaustive brute force
    at thousands of nodes would dominate the suite by hours.
    ``index_params`` optionally bounds the hub-index build
    (``num_hubs`` / ``explore_limit``) so index construction stays
    proportionate at scale.
    """

    name: str
    family: str
    graph: Graph
    queries: List[object]
    k: int
    seed: int
    partition: Optional[BichromaticPartition] = None
    params: Dict[str, object] = field(default_factory=dict)
    naive_sample: Optional[int] = None
    index_params: Dict[str, object] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the workload graph."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of edges in the workload graph."""
        return self.graph.num_edges

    def describe(self) -> Dict[str, object]:
        """JSON-ready metadata describing this workload."""
        payload = {
            "name": self.name,
            "family": self.family,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "directed": self.graph.directed,
            "bichromatic": self.partition is not None,
            "num_queries": len(self.queries),
            "k": self.k,
            "seed": self.seed,
            "params": dict(self.params),
        }
        if self.naive_sample is not None:
            payload["naive_sample"] = self.naive_sample
        if self.index_params:
            payload["index_params"] = dict(self.index_params)
        return payload


def _weight(rng: random.Random) -> float:
    """A reproducible edge weight in [1, 10) with two decimals."""
    return round(rng.uniform(1.0, 10.0), 2)


def _sample_queries(
    rng: random.Random, population, count: int, family: str
) -> List[object]:
    """Draw ``count`` distinct query nodes deterministically."""
    ordered = sorted(population, key=repr)
    if not ordered:
        raise WorkloadError(f"{family} workload generated an empty query population")
    count = min(count, len(ordered))
    return rng.sample(ordered, count)


def _check_k(k: int, candidates: int, family: str) -> int:
    if candidates < 1:
        raise WorkloadError(f"{family} workload has no candidate nodes")
    return min(k, candidates)


def path_workload(
    num_nodes: int = 64,
    seed: int = 0,
    num_queries: int = 4,
    k: int = 8,
    naive_sample: Optional[int] = None,
    index_params: Optional[Dict[str, object]] = None,
) -> Workload:
    """A weighted path ``0 - 1 - ... - (n-1)``."""
    if num_nodes < 2:
        raise WorkloadError("path workload needs at least 2 nodes")
    rng = random.Random(seed)
    graph = Graph(name=f"path-{num_nodes}")
    for node in range(num_nodes - 1):
        graph.add_edge(node, node + 1, _weight(rng))
    return Workload(
        name=f"path-n{num_nodes}",
        family="path",
        graph=graph,
        queries=_sample_queries(rng, graph.nodes(), num_queries, "path"),
        k=_check_k(k, num_nodes - 1, "path"),
        seed=seed,
        params={"num_nodes": num_nodes},
        naive_sample=naive_sample,
        index_params=dict(index_params or {}),
    )


def grid_workload(
    side: int = 8,
    seed: int = 0,
    num_queries: int = 4,
    k: int = 8,
    naive_sample: Optional[int] = None,
    index_params: Optional[Dict[str, object]] = None,
) -> Workload:
    """A ``side``×``side`` grid with random weights (many near-ties)."""
    if side < 2:
        raise WorkloadError("grid workload needs side >= 2")
    rng = random.Random(seed)
    graph = Graph(name=f"grid-{side}x{side}")
    for row in range(side):
        for col in range(side):
            node = row * side + col
            if col + 1 < side:
                graph.add_edge(node, node + 1, _weight(rng))
            if row + 1 < side:
                graph.add_edge(node, node + side, _weight(rng))
    return Workload(
        name=f"grid-{side}x{side}",
        family="grid",
        graph=graph,
        queries=_sample_queries(rng, graph.nodes(), num_queries, "grid"),
        k=_check_k(k, side * side - 1, "grid"),
        seed=seed,
        params={"side": side},
        naive_sample=naive_sample,
        index_params=dict(index_params or {}),
    )


def gnp_workload(
    num_nodes: int = 96,
    avg_degree: float = 6.0,
    directed: bool = False,
    seed: int = 0,
    num_queries: int = 4,
    k: int = 8,
    naive_sample: Optional[int] = None,
    index_params: Optional[Dict[str, object]] = None,
) -> Workload:
    """Erdős–Rényi G(n, p) with ``p`` derived from the target average degree."""
    if num_nodes < 2:
        raise WorkloadError("gnp workload needs at least 2 nodes")
    rng = random.Random(seed)
    probability = min(1.0, avg_degree / (num_nodes - 1))
    graph = Graph(directed=directed, name=f"gnp-{num_nodes}")
    graph.add_nodes(range(num_nodes))
    for source in range(num_nodes):
        start = 0 if directed else source + 1
        for target in range(start, num_nodes):
            if source == target:
                continue
            if rng.random() < probability:
                graph.add_edge(source, target, _weight(rng))
    return Workload(
        name=f"gnp-n{num_nodes}{'-directed' if directed else ''}",
        family="gnp",
        graph=graph,
        queries=_sample_queries(rng, graph.nodes(), num_queries, "gnp"),
        k=_check_k(k, num_nodes - 1, "gnp"),
        seed=seed,
        params={
            "num_nodes": num_nodes,
            "avg_degree": avg_degree,
            "directed": directed,
        },
        naive_sample=naive_sample,
        index_params=dict(index_params or {}),
    )


def powerlaw_workload(
    num_nodes: int = 96,
    attach: int = 3,
    seed: int = 0,
    num_queries: int = 4,
    k: int = 8,
    naive_sample: Optional[int] = None,
    index_params: Optional[Dict[str, object]] = None,
) -> Workload:
    """Preferential attachment (Barabási–Albert style): hub-heavy degrees.

    Each new node attaches to ``attach`` existing nodes sampled proportional
    to degree (via the repeated-endpoint trick), producing the skewed degree
    sequence the hub index bets on.
    """
    if num_nodes < 2:
        raise WorkloadError("powerlaw workload needs at least 2 nodes")
    if attach < 1:
        raise WorkloadError("powerlaw workload needs attach >= 1")
    rng = random.Random(seed)
    graph = Graph(name=f"powerlaw-{num_nodes}")
    core = min(attach + 1, num_nodes)
    for source in range(core):
        for target in range(source + 1, core):
            graph.add_edge(source, target, _weight(rng))
    # Endpoint multiset: sampling from it is degree-proportional sampling.
    endpoints: List[int] = []
    for source, target, _ in graph.edges():
        endpoints.extend((source, target))
    for node in range(core, num_nodes):
        chosen = set()
        while len(chosen) < min(attach, node):
            chosen.add(endpoints[rng.randrange(len(endpoints))] if endpoints else rng.randrange(node))
        for neighbor in sorted(chosen):
            graph.add_edge(node, neighbor, _weight(rng))
            endpoints.extend((node, neighbor))
    return Workload(
        name=f"powerlaw-n{num_nodes}",
        family="powerlaw",
        graph=graph,
        queries=_sample_queries(rng, graph.nodes(), num_queries, "powerlaw"),
        k=_check_k(k, num_nodes - 1, "powerlaw"),
        seed=seed,
        params={"num_nodes": num_nodes, "attach": attach},
        naive_sample=naive_sample,
        index_params=dict(index_params or {}),
    )


def lattice_workload(
    side: int = 32,
    diagonal_fraction: float = 0.08,
    seed: int = 0,
    num_queries: int = 2,
    k: int = 16,
    naive_sample: Optional[int] = None,
    index_params: Optional[Dict[str, object]] = None,
) -> Workload:
    """A road-network-like lattice: a grid plus sparse diagonal shortcuts.

    Road networks are near-planar with bounded degree, low edge-weight
    variance (road segments differ by length, not by orders of magnitude)
    and occasional diagonal connectors.  This generator mimics that shape:
    a ``side``×``side`` grid whose edges weigh ``[1, 2)`` plus a
    ``diagonal_fraction`` of cells gaining a slightly costlier diagonal.
    It is the synthetic stand-in of the ``huge`` scale tier — at
    ``side=320`` it reaches the 10\\ :sup:`5`-node regime the
    shared-memory worker transport and the ``"auto"`` hub budget exist
    for — while real SNAP/DIMACS road networks load through
    :func:`dataset_workload`.
    """
    if side < 2:
        raise WorkloadError("lattice workload needs side >= 2")
    if not 0.0 <= diagonal_fraction <= 1.0:
        raise WorkloadError(
            f"diagonal_fraction must be in [0, 1], got {diagonal_fraction!r}"
        )
    rng = random.Random(seed)
    graph = Graph(name=f"lattice-{side}x{side}")
    for row in range(side):
        for col in range(side):
            node = row * side + col
            if col + 1 < side:
                graph.add_edge(node, node + 1, round(rng.uniform(1.0, 2.0), 2))
            if row + 1 < side:
                graph.add_edge(node, node + side, round(rng.uniform(1.0, 2.0), 2))
            if (
                col + 1 < side
                and row + 1 < side
                and rng.random() < diagonal_fraction
            ):
                # A diagonal connector, costlier than either leg alone but
                # cheaper than the two-leg detour (~sqrt(2) of a leg).
                graph.add_edge(
                    node, node + side + 1, round(rng.uniform(1.4, 2.8), 2)
                )
    return Workload(
        name=f"lattice-{side}x{side}",
        family="lattice",
        graph=graph,
        queries=_sample_queries(rng, graph.nodes(), num_queries, "lattice"),
        k=_check_k(k, side * side - 1, "lattice"),
        seed=seed,
        params={"side": side, "diagonal_fraction": diagonal_fraction},
        naive_sample=naive_sample,
        index_params=dict(index_params or {}),
    )


def dataset_workload(
    path: Union[str, Path],
    directed: bool = False,
    num_queries: int = 4,
    k: int = 16,
    seed: int = 0,
    naive_sample: Optional[int] = None,
    index_params: Optional[Dict[str, object]] = None,
) -> Workload:
    """Wrap a real dataset file (edge list, DIMACS ``.gr`` or JSON) as a workload.

    The graph loads through :func:`repro.graph.io.load_dataset` (format
    auto-detected), queries are sampled deterministically from ``seed``,
    and the scale knobs default by graph size: beyond
    ``_SAMPLED_NAIVE_THRESHOLD`` nodes the naive baseline is sampled
    (24 candidates) and the hub index uses the ``"auto"`` budget — the
    same treatment the synthetic large/huge presets get.  Pass explicit
    ``naive_sample`` / ``index_params`` to override.  This is the
    function behind the bench CLI's ``--dataset`` flag.
    """
    path = Path(path)
    graph = load_dataset(path, directed=directed)
    if graph.num_nodes < 2:
        raise WorkloadError(f"dataset {path} holds fewer than 2 nodes")
    rng = random.Random(seed)
    if naive_sample is None and graph.num_nodes > _SAMPLED_NAIVE_THRESHOLD:
        naive_sample = 24
    if index_params is None and graph.num_nodes > _SAMPLED_NAIVE_THRESHOLD:
        index_params = {"num_hubs": "auto", "explore_limit": "auto"}
    return Workload(
        name=f"dataset-{path.stem}",
        family="dataset",
        graph=graph,
        queries=_sample_queries(rng, graph.nodes(), num_queries, "dataset"),
        k=_check_k(k, graph.num_nodes - 1, "dataset"),
        seed=seed,
        params={
            "path": str(path),
            "directed": directed,
        },
        naive_sample=naive_sample,
        index_params=dict(index_params or {}),
    )


#: Node count above which :func:`dataset_workload` defaults to a sampled
#: naive baseline and the ``"auto"`` hub budget.
_SAMPLED_NAIVE_THRESHOLD = 512


def bichromatic_workload(
    num_nodes: int = 72,
    avg_degree: float = 6.0,
    facility_fraction: float = 0.3,
    seed: int = 0,
    num_queries: int = 4,
    k: int = 8,
) -> Workload:
    """A G(n, p) with a facility/community split, queried from facilities."""
    base = gnp_workload(
        num_nodes=num_nodes,
        avg_degree=avg_degree,
        seed=seed,
        num_queries=num_queries,
        k=k,
    )
    rng = random.Random(seed + 1)
    nodes = sorted(base.graph.nodes(), key=repr)
    num_facilities = max(1, min(num_nodes - 1, round(num_nodes * facility_fraction)))
    facilities = rng.sample(nodes, num_facilities)
    partition = BichromaticPartition(base.graph, facilities)
    queries = _sample_queries(rng, partition.facilities, num_queries, "bichromatic")
    return Workload(
        name=f"bichromatic-n{num_nodes}",
        family="bichromatic",
        graph=base.graph,
        queries=queries,
        k=_check_k(k, partition.num_communities, "bichromatic"),
        seed=seed,
        partition=partition,
        params={
            "num_nodes": num_nodes,
            "avg_degree": avg_degree,
            "facility_fraction": facility_fraction,
        },
    )


#: Family name -> generator, for CLI ``--families`` selection.  The
#: ``dataset`` family is deliberately absent: it needs a file path, so it
#: is reachable only through ``--dataset`` / :func:`dataset_workload`.
WORKLOAD_FAMILIES: Dict[str, Callable[..., Workload]] = {
    "path": path_workload,
    "grid": grid_workload,
    "gnp": gnp_workload,
    "powerlaw": powerlaw_workload,
    "bichromatic": bichromatic_workload,
    "lattice": lattice_workload,
}

#: Per-family size parameters for the built-in scales.  The ``large`` scale
#: (n in the thousands) only became affordable once the SDS-tree and
#: refinement loops ran array-specialised on the CSR backend; its naive
#: baseline is *sampled* (``naive_sample`` candidates, timing extrapolated)
#: because exhaustive brute force at that size runs for hours, and its
#: hub-index builds resolve the scale-aware ``"auto"`` budget
#: (:func:`repro.core.hubs.hub_budget`) instead of a fixed hub count that
#: cannot serve every size.  The ``huge`` scale (n in the 10\ :sup:`4`–
#: 10\ :sup:`5` range) is lattice-only — the road-network shape is what
#: that tier models, and it is where the shared-memory graph transport
#: pays off: workers *map* the frozen CSR buffers instead of unpickling a
#: private copy.  The bichromatic family has no large preset yet: it needs
#: the facility-count Reverse Rank Dictionary (see ROADMAP) before an
#: indexed row exists to justify one.
_AUTO_INDEX = {"num_hubs": "auto", "explore_limit": "auto"}

_SCALES: Dict[str, Dict[str, Dict[str, object]]] = {
    "smoke": {
        "path": {"num_nodes": 24, "num_queries": 2, "k": 3},
        "grid": {"side": 5, "num_queries": 2, "k": 3},
        "gnp": {"num_nodes": 30, "num_queries": 2, "k": 3},
        "powerlaw": {"num_nodes": 30, "num_queries": 2, "k": 3},
        "bichromatic": {"num_nodes": 28, "num_queries": 2, "k": 3},
        "lattice": {"side": 5, "num_queries": 2, "k": 3},
    },
    "default": {
        "path": {"num_nodes": 96, "num_queries": 4, "k": 8},
        "grid": {"side": 10, "num_queries": 4, "k": 8},
        "gnp": {"num_nodes": 120, "num_queries": 4, "k": 8},
        "powerlaw": {"num_nodes": 120, "num_queries": 4, "k": 8},
        "bichromatic": {"num_nodes": 90, "num_queries": 4, "k": 8},
        "lattice": {"side": 11, "num_queries": 4, "k": 8},
    },
    "large": {
        "path": {
            "num_nodes": 4000,
            "num_queries": 3,
            "k": 16,
            "naive_sample": 48,
            "index_params": dict(_AUTO_INDEX),
        },
        "grid": {
            "side": 45,
            "num_queries": 3,
            "k": 16,
            "naive_sample": 48,
            "index_params": dict(_AUTO_INDEX),
        },
        "gnp": {
            "num_nodes": 2500,
            "avg_degree": 8.0,
            "num_queries": 3,
            "k": 16,
            "naive_sample": 48,
            "index_params": dict(_AUTO_INDEX),
        },
        "powerlaw": {
            "num_nodes": 2500,
            "attach": 4,
            "num_queries": 3,
            "k": 16,
            "naive_sample": 48,
            "index_params": dict(_AUTO_INDEX),
        },
    },
    "huge": {
        "lattice": {
            "side": 320,
            "num_queries": 2,
            "k": 16,
            "naive_sample": 12,
            "index_params": dict(_AUTO_INDEX),
        },
    },
}


def build_suite(
    families: Optional[List[str]] = None,
    scale: str = "default",
    seed: int = 0,
) -> List[Workload]:
    """Build the workloads for ``families`` at ``scale``.

    ``scale`` is one scale name or a comma-separated combination
    (``"default,large"`` benchmarks both sizes in one run).  When
    ``families`` is omitted, each scale contributes every family it
    defines; naming a family explicitly that a requested scale does not
    support raises :class:`~repro.errors.WorkloadError`.
    """
    # dict.fromkeys: dedupe while keeping order — "default,default" must
    # not emit duplicate workload names (report diffs match by name).
    scales = list(
        dict.fromkeys(name.strip() for name in scale.split(",") if name.strip())
    )
    if not scales:
        raise WorkloadError(f"no scale named in {scale!r}")
    for name in scales:
        if name not in _SCALES:
            raise WorkloadError(
                f"unknown scale {name!r}; expected one of {sorted(_SCALES)}"
            )
    explicit = families is not None
    workloads = []
    for scale_name in scales:
        sizes = _SCALES[scale_name]
        selected = list(sizes) if not explicit else list(families)
        for family in selected:
            generator = WORKLOAD_FAMILIES.get(family)
            if generator is None:
                raise WorkloadError(
                    f"unknown workload family {family!r}; "
                    f"expected one of {sorted(WORKLOAD_FAMILIES)}"
                )
            params = sizes.get(family)
            if params is None:
                raise WorkloadError(
                    f"workload family {family!r} has no {scale_name!r} preset"
                )
            workloads.append(generator(seed=seed, **params))
    return workloads


def smoke_suite(seed: int = 0) -> List[Workload]:
    """The tiny CI suite (all five families, seconds to run)."""
    return build_suite(scale="smoke", seed=seed)


def default_suite(seed: int = 0) -> List[Workload]:
    """The standard suite behind ``python -m repro.bench``."""
    return build_suite(scale="default", seed=seed)


def large_suite(seed: int = 0) -> List[Workload]:
    """The thousands-of-nodes suite (sampled naive baseline)."""
    return build_suite(scale="large", seed=seed)


def huge_suite(seed: int = 0) -> List[Workload]:
    """The huge-scale tier: road-network-like lattices, ``"auto"`` budgets."""
    return build_suite(scale="huge", seed=seed)
