"""The benchmark timing harness.

:func:`run_workload` times every applicable
:class:`~repro.core.config.AlgorithmKind` on one
:class:`~repro.bench.workloads.Workload` — warmup rounds first, then timed
repetitions of the whole query batch through
:meth:`~repro.core.engine.ReverseKRanksEngine.query_many` — and
cross-validates every optimised algorithm's results against the naive
baseline *during the run* (a disagreement raises
:class:`~repro.errors.CrossValidationError`, which fails the CI smoke job).

A backend consistency check additionally asserts that the
:class:`~repro.graph.csr.CompactGraph` CSR backend returns results identical
to the dict-backed graph (bichromatic workloads included), so the
trajectory never silently benchmarks a backend that diverged.

Large-scale workloads (``Workload.naive_sample`` set) time the naive
baseline over a deterministic candidate *sample* and extrapolate the
exhaustive cost; exhaustive brute force at thousands of nodes would run
for hours.  Validation stays real: every optimised algorithm is
spot-checked against the exact ranks of the sampled candidates (a sampled
candidate strictly inside the result boundary must appear with exactly
that rank), and the optimised algorithms are additionally cross-checked
against each other.

With ``index_cache`` set, the indexed algorithm first tries
:meth:`~repro.core.hub_index.HubIndex.load` from that directory and falls
back to building (then :meth:`~repro.core.hub_index.HubIndex.save`-ing) on
a miss, so repeated runs — and restarted servers — start warm.

Parallel rows (``name@wN``) additionally record how the workers received
the graph — ``graph_shared`` (mapped the shared-memory CSR segment vs
unpickled a private copy) and ``startup_payload_bytes`` (the pickled
init payload, near-constant under the shared transport) — and runs that
both build an index and have a parallel pass verify that a pool-built
index is *bit-identical* to the sequential build
(``parallel_index_consistent``).
"""

from __future__ import annotations

import json
import pickle
import random
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.workloads import Workload
from repro.core.config import AlgorithmKind
from repro.core.engine import ReverseKRanksEngine
from repro.core.hub_index import HubIndex
from repro.core.naive import naive_reverse_k_ranks
from repro.core.types import QueryResult, check_stats_mode
from repro.core.validation import results_equivalent
from repro.errors import (
    CrossValidationError,
    IndexParameterError,
    WorkloadError,
    is_positive_int,
)
from repro.obs.trace import summarize_trace
from repro.traversal.rank import exact_rank

__all__ = ["AlgorithmTiming", "WorkloadResult", "run_workload", "run_suite"]

#: Canonical benchmarking order: the baseline first (its results seed the
#: in-run validation), then by increasing sophistication.
_KIND_ORDER = (
    AlgorithmKind.NAIVE,
    AlgorithmKind.STATIC,
    AlgorithmKind.DYNAMIC,
    AlgorithmKind.INDEXED,
)


@dataclass
class AlgorithmTiming:
    """Wall-clock timings (and work counters) for one algorithm on one workload.

    ``algorithm`` doubles as the row key in the report: plain algorithm
    names for the first ``--workers`` value of a run, ``name@wN`` for
    every further value — so one report can carry a whole scaling axis.
    """

    algorithm: str
    repetitions: List[float] = field(default_factory=list)
    index_build_seconds: Optional[float] = None
    #: ``None`` when the counters were never collected (a parallel pass
    #: under ``--stats none``) — never presented as a zero count.
    rank_refinements: Optional[int] = 0
    validated: Optional[bool] = None
    speedup_vs_naive: Optional[float] = None
    skipped: Optional[str] = None
    #: Large-scale workloads only: how many candidates the naive baseline
    #: was timed on, and its extrapolated exhaustive batch cost.
    sampled_candidates: Optional[int] = None
    estimated_full_seconds: Optional[float] = None
    #: ``"hit"`` / ``"miss"`` when an ``index_cache`` directory was used.
    index_cache: Optional[str] = None
    #: How many worker processes executed the timed batches (1 = in-process).
    workers: int = 1
    #: Parallel rows only: this run's same-algorithm single-process batch
    #: time divided by this row's — the direct process-scaling factor.
    speedup_vs_serial: Optional[float] = None
    #: Parallel rows only: flat result-payload bytes per query that crossed
    #: the process boundary in one batch (reported by the shard codec).
    ipc_bytes_per_query: Optional[float] = None
    #: Parallel rows only: whether the workers attached the graph via the
    #: shared-memory segment (``True``) or fell back to unpickling a
    #: private copy (``False``).
    graph_shared: Optional[bool] = None
    #: Parallel rows only: bytes of the pickled worker-startup payload
    #: (facilities + hub-index snapshot + graph).  Under the shared-graph
    #: transport the graph contributes a fixed ~200-byte segment handle
    #: instead of its full pickle, so on index-free workloads this is
    #: near-constant in ``|V|``; with an index built it is dominated by
    #: the index snapshot.
    startup_payload_bytes: Optional[int] = None
    #: Traced runs only (``--trace``): the top spans of the last timed
    #: batch by inclusive time, ``[{"name", "total_s", "count"}, ...]``.
    #: Absent from untraced reports; :mod:`repro.bench.diff` ignores it.
    trace_summary: Optional[List[Dict[str, object]]] = None
    #: Mutation rows (``name@mut``) only: effective graph updates applied
    #: during the timed repetitions, and the :mod:`repro.obs` counter
    #: deltas observed across them — how many full CSR recompactions the
    #: updates forced (0 = every batch stayed on the delta-overlay) and
    #: how many in-place pool graph syncs replaced pool teardowns.
    updates_applied: Optional[int] = None
    csr_recompactions: Optional[int] = None
    pool_graph_syncs: Optional[int] = None

    @property
    def mean_seconds(self) -> Optional[float]:
        """Mean wall-clock seconds per timed repetition of the batch."""
        if not self.repetitions:
            return None
        return statistics.fmean(self.repetitions)

    @property
    def best_seconds(self) -> Optional[float]:
        """Fastest timed repetition of the batch."""
        return min(self.repetitions) if self.repetitions else None

    def per_query_seconds(self, num_queries: int) -> Optional[float]:
        """Mean wall-clock seconds per individual query."""
        mean = self.mean_seconds
        if mean is None or num_queries <= 0:
            return None
        return mean / num_queries

    def as_dict(self, num_queries: int) -> Dict[str, object]:
        """JSON-ready view."""
        payload: Dict[str, object] = {
            "algorithm": self.algorithm,
            "repetitions_seconds": list(self.repetitions),
            "mean_seconds": self.mean_seconds,
            "best_seconds": self.best_seconds,
            "per_query_seconds": self.per_query_seconds(num_queries),
            "rank_refinements": self.rank_refinements,
            "validated": self.validated,
            "speedup_vs_naive": self.speedup_vs_naive,
            "workers": self.workers,
        }
        if self.speedup_vs_serial is not None:
            payload["speedup_vs_serial"] = self.speedup_vs_serial
        if self.ipc_bytes_per_query is not None:
            payload["ipc_bytes_per_query"] = self.ipc_bytes_per_query
        if self.graph_shared is not None:
            payload["graph_shared"] = self.graph_shared
        if self.startup_payload_bytes is not None:
            payload["startup_payload_bytes"] = self.startup_payload_bytes
        if self.index_build_seconds is not None:
            payload["index_build_seconds"] = self.index_build_seconds
        if self.skipped is not None:
            payload["skipped"] = self.skipped
        if self.sampled_candidates is not None:
            payload["sampled_candidates"] = self.sampled_candidates
            payload["estimated_full_seconds"] = self.estimated_full_seconds
        if self.index_cache is not None:
            payload["index_cache"] = self.index_cache
        if self.trace_summary is not None:
            payload["trace_summary"] = self.trace_summary
        if self.updates_applied is not None:
            payload["updates_applied"] = self.updates_applied
            payload["csr_recompactions"] = self.csr_recompactions
            payload["pool_graph_syncs"] = self.pool_graph_syncs
        return payload


@dataclass
class WorkloadResult:
    """All algorithm timings for one workload, plus its metadata."""

    workload: Workload
    backend: str
    algorithms: Dict[str, AlgorithmTiming] = field(default_factory=dict)
    backend_consistent: Optional[bool] = None
    #: ``True`` when every parallel batch reproduced its sequential
    #: reference (rank-identical); ``None`` when no parallel pass ran.
    parallel_consistent: Optional[bool] = None
    #: ``True`` when a pool-built hub index was byte-identical (pickled
    #: exported state) to the sequentially built one; ``None`` when the
    #: run had no parallel pass, no indexed row, or loaded from cache.
    parallel_index_consistent: Optional[bool] = None
    #: ``True`` when the mutation pass's final overlay-path answers were
    #: validated against a from-scratch recompile of the mutated graph
    #: (bit-identical ranks *and* work counters for the dynamic row);
    #: ``None`` when no mutation pass ran (``mutation_rate=0`` or a
    #: bichromatic workload).
    mutation_consistent: Optional[bool] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view."""
        payload = self.workload.describe()
        payload["backend"] = self.backend
        payload["backend_consistent"] = self.backend_consistent
        if self.parallel_consistent is not None:
            payload["parallel_consistent"] = self.parallel_consistent
        if self.parallel_index_consistent is not None:
            payload["parallel_index_consistent"] = self.parallel_index_consistent
        if self.mutation_consistent is not None:
            payload["mutation_consistent"] = self.mutation_consistent
        payload["algorithms"] = {
            name: timing.as_dict(len(self.workload.queries))
            for name, timing in self.algorithms.items()
        }
        return payload


def _validate_batch(
    workload: Workload,
    baseline: List[QueryResult],
    contender: List[QueryResult],
    label: str,
    baseline_label: str = "naive",
) -> None:
    for expected, actual in zip(baseline, contender):
        if not results_equivalent(expected, actual):
            raise CrossValidationError(
                f"{label} disagrees with {baseline_label} on workload "
                f"{workload.name!r} for query={expected.query!r}, "
                f"k={workload.k}: {baseline_label}={expected.as_pairs()!r} vs "
                f"{label}={actual.as_pairs()!r}"
            )


def _sample_candidates(workload: Workload) -> List[object]:
    """The deterministic naive-baseline candidate sample of a workload."""
    rng = random.Random(workload.seed * 65_537 + 0x5A17)
    ordered = sorted(workload.graph.nodes(), key=repr)
    count = min(workload.naive_sample, len(ordered))
    return rng.sample(ordered, count)


def _time_sampled_naive(
    workload: Workload,
    search_graph,
    sample: List[object],
    timing: AlgorithmTiming,
    repetitions: int,
    warmup: int,
) -> None:
    """Time the naive baseline restricted to ``sample`` and extrapolate.

    The sampled runs compute *exact* ranks (for the sampled candidates),
    so per-candidate cost is representative; ``estimated_full_seconds``
    scales the measured batch time to all ``|V| - 1`` candidates.
    """
    membership = set(sample).__contains__
    batches = []
    for round_index in range(warmup + repetitions):
        started = time.perf_counter()
        batch = [
            naive_reverse_k_ranks(
                search_graph, query, workload.k, candidate=membership
            )
            for query in workload.queries
        ]
        elapsed = time.perf_counter() - started
        if round_index >= warmup:
            timing.repetitions.append(elapsed)
            batches = batch
    timing.rank_refinements = sum(
        item.stats.rank_refinements for item in batches
    )
    timing.sampled_candidates = len(sample)
    total_candidates = workload.num_nodes - 1
    scale = total_candidates / max(1, len(sample))
    timing.estimated_full_seconds = timing.mean_seconds * scale
    timing.validated = True
    timing.speedup_vs_naive = 1.0


def _spot_validate_sampled(
    workload: Workload,
    batch: List[QueryResult],
    sample_ranks: Dict[object, Dict[object, float]],
    label: str,
) -> None:
    """Check an optimised batch against the sampled candidates' exact ranks.

    Every sampled candidate ranked strictly below a result's boundary must
    appear in that result with exactly its exact rank, and any sampled
    candidate that does appear must carry its exact rank.
    """
    for result in batch:
        ranks = result.ranks()
        boundary = result.kth_rank()
        for candidate, rank in sample_ranks[result.query].items():
            if candidate in ranks:
                if ranks[candidate] != rank:
                    raise CrossValidationError(
                        f"{label} reports rank {ranks[candidate]!r} for "
                        f"{candidate!r} on workload {workload.name!r} "
                        f"(query={result.query!r}), exact rank is {rank!r}"
                    )
            elif rank < boundary:
                raise CrossValidationError(
                    f"{label} omits {candidate!r} (exact rank {rank!r}, "
                    f"result boundary {boundary!r}) on workload "
                    f"{workload.name!r} (query={result.query!r})"
                )


def _check_backend_consistency(
    workload: Workload,
    engine: ReverseKRanksEngine,
    timed_batch: List[QueryResult],
    timed_on_csr: bool,
) -> bool:
    """Assert CSR-backed results are identical to dict-backed results.

    The timed dynamic batch is reused as one side of the comparison; only
    the opposite backend is evaluated here.
    """
    other_batch = engine.query_many(
        workload.queries,
        workload.k,
        algorithm=AlgorithmKind.DYNAMIC,
        use_csr=not timed_on_csr,
    )
    dict_results = other_batch if timed_on_csr else timed_batch
    csr_results = timed_batch if timed_on_csr else other_batch
    for expected, actual in zip(dict_results, csr_results):
        if expected.as_pairs() != actual.as_pairs():
            raise CrossValidationError(
                f"CompactGraph backend diverges from the dict backend on "
                f"workload {workload.name!r} for query={expected.query!r}: "
                f"dict={expected.as_pairs()!r} vs csr={actual.as_pairs()!r}"
            )
    return True


def _normalise_workers(workers) -> List[int]:
    """Normalise the ``workers`` axis to an ordered, deduplicated int list."""
    if isinstance(workers, bool):
        raise WorkloadError(f"workers must be positive integers, got {workers!r}")
    if isinstance(workers, int):
        values = [workers]
    else:
        values = list(workers)
    seen = []
    for value in values:
        if not is_positive_int(value):
            raise WorkloadError(
                f"workers must be positive integers, got {value!r}"
            )
        if value not in seen:
            seen.append(value)
    if not seen:
        raise WorkloadError("workers axis must name at least one value")
    return seen


def _check_parallel_consistency(
    workload: Workload,
    kind: AlgorithmKind,
    reference: List[QueryResult],
    batch: List[QueryResult],
    label: str,
) -> None:
    """Assert a parallel batch reproduces its sequential reference.

    Naive/static/dynamic (and their bichromatic variants) are pure
    functions of the graph, so parallel results must match pair for pair.
    Indexed queries consult worker-local index snapshots that lag the
    sequentially-warmed master, which can change the *identity* of
    entries tied exactly at the boundary rank — never a rank value — so
    they are held to :func:`results_equivalent` instead.
    """
    for expected, actual in zip(reference, batch):
        if kind is AlgorithmKind.INDEXED:
            consistent = results_equivalent(expected, actual)
        else:
            consistent = expected.as_pairs() == actual.as_pairs()
        if not consistent:
            raise CrossValidationError(
                f"parallel {label} diverges from its sequential reference on "
                f"workload {workload.name!r} for query={expected.query!r}: "
                f"sequential={expected.as_pairs()!r} vs "
                f"parallel={actual.as_pairs()!r}"
            )


def run_workload(
    workload: Workload,
    repetitions: int = 3,
    warmup: int = 1,
    use_csr: bool = True,
    validate: bool = True,
    check_backend: bool = True,
    num_hubs: Optional[int] = None,
    index_cache: Optional[object] = None,
    workers=1,
    worker_context: Optional[str] = None,
    stats_mode: str = "per-query",
    trace: bool = False,
    trace_dir: Optional[object] = None,
    mutation_rate: float = 0.0,
) -> WorkloadResult:
    """Time all four algorithms on ``workload``, across the ``workers`` axis.

    Parameters
    ----------
    workload:
        The workload to benchmark.
    repetitions:
        Timed repetitions of the full query batch per algorithm.
    warmup:
        Untimed warmup batches per algorithm (also pre-warms the hub index,
        so indexed timings measure the warm steady state the paper reports).
    use_csr:
        Whether queries run on the CSR backend (bichromatic included).
    validate:
        Cross-validate every algorithm's results against naive in-run; on
        sampled (large-scale) workloads this becomes the spot-check and
        pairwise validation described in the module docstring.  Parallel
        passes are *additionally* checked rank-identical against a
        sequential reference batch regardless of this flag.
    check_backend:
        Additionally assert CSR results == dict results.
    num_hubs:
        Hub count for the indexed algorithm; overrides the workload's
        ``index_params``, defaults to ``max(1, |V| // 8)``.
    index_cache:
        Optional directory for :meth:`HubIndex.load`/:meth:`HubIndex.save`
        warm restarts of the indexed algorithm.
    workers:
        One int or an iterable of ints — the worker-process axis.  The
        first value keys its rows by plain algorithm name; every further
        value adds ``name@wN`` rows (so one report carries the scaling
        curve).  Values above 1 run the timed batches through
        :meth:`~repro.core.engine.ReverseKRanksEngine.query_many`'s
        sharded worker pool, started *outside* the timed windows.
    worker_context:
        Multiprocessing start method for parallel passes (``None`` =
        platform default).
    stats_mode:
        The engine's batch ``stats`` knob (``"per-query"``, ``"aggregate"``
        or ``"none"``), applied to the *parallel* timed passes, where it
        selects the shard codec's stats payload — ``"aggregate"`` and
        ``"none"`` shrink the per-query IPC bytes the rows report (and
        ``"none"`` records the rows' ``rank_refinements`` as ``None``,
        never a fake 0).  Sequential passes always keep full per-query
        stats: in-process results carry them for free, and the
        ``rank_refinements`` column needs them.  The parallel consistency
        reference also runs (untimed) with full per-query stats, so the
        rank-identity gate is mode-independent.
    trace:
        Enable the engine's batch tracer for the timed passes; each row
        records a ``trace_summary`` (top spans by inclusive time) from
        the last timed batch.  Tracing adds span bookkeeping to the
        timed windows, so traced timings are for *attribution*, not for
        comparing against untraced reports.
    trace_dir:
        Optional directory (implies ``trace=True``): the full span tree
        of each row's last timed batch is written there as
        ``{workload}-{row}.trace.json``.
    mutation_rate:
        When positive, run an additional *mixed update/query* pass on a
        private copy of the graph: each timed repetition first applies
        ``max(1, round(mutation_rate * len(queries)))`` seeded graph
        updates through
        :meth:`~repro.core.engine.ReverseKRanksEngine.apply_updates`
        (exercising the CSR delta-overlay and in-place hub-index repair)
        and then runs the query batch.  Rows are keyed ``name@mut`` (and
        ``name@mut@wN`` when the ``workers`` axis has a parallel value,
        proving the worker pool survives updates in place).  After the
        pass the overlay-path answers are validated bit-identically
        against a from-scratch recompile of the final mutated graph —
        the report's ``mutation_consistent`` flag.  Monochromatic
        workloads only (``apply_updates`` rejects bichromatic engines);
        requires the CSR backend.

    Raises
    ------
    CrossValidationError
        When any algorithm disagrees with the (possibly sampled) naive
        baseline, the CSR backend disagrees with the dict backend, or a
        parallel batch is not rank-identical to its sequential reference.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    if mutation_rate < 0:
        raise WorkloadError(
            f"mutation_rate must be >= 0, got {mutation_rate!r}"
        )
    if mutation_rate and not use_csr:
        raise WorkloadError(
            "the mutation pass benchmarks the CSR delta-overlay; drop "
            "--no-csr or run with mutation_rate=0"
        )
    check_stats_mode(stats_mode)
    if trace_dir is not None:
        trace = True
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    if workload.naive_sample is not None and workload.partition is not None:
        raise WorkloadError(
            "sampled naive baselines are monochromatic-only for now"
        )
    workers_axis = _normalise_workers(workers)
    if not use_csr and any(value > 1 for value in workers_axis):
        raise WorkloadError(
            "parallel passes require the CSR backend; drop --no-csr or "
            "run with workers=1"
        )
    graph = workload.graph
    result = WorkloadResult(
        workload=workload,
        backend="csr" if use_csr else "dict",
    )
    baseline: Optional[List[QueryResult]] = None
    reference: Optional[List[QueryResult]] = None
    reference_label = ""
    sample: Optional[List[object]] = None
    sample_ranks: Optional[Dict[object, Dict[object, float]]] = None
    #: kind -> sequential batch, the parallel passes' consistency reference.
    serial_batches: Dict[AlgorithmKind, List[QueryResult]] = {}

    # One engine per workload: its version-keyed CSR cache compiles the
    # CompactGraph exactly once, outside every timed window (with warmup=0
    # a per-kind engine would fold the compile into the first repetition).
    engine = ReverseKRanksEngine(graph, partition=workload.partition)
    if trace:
        engine.tracer.enabled = True
    search_graph = engine.compact_graph() if use_csr else graph
    if workload.naive_sample is not None:
        sample = _sample_candidates(workload)

    try:
        for pass_index, num_workers in enumerate(workers_axis):
            base_pass = pass_index == 0
            for kind in _KIND_ORDER:
                key = (
                    kind.value if base_pass else f"{kind.value}@w{num_workers}"
                )
                timing = AlgorithmTiming(algorithm=key, workers=num_workers)
                result.algorithms[key] = timing

                if (
                    workload.partition is not None
                    and kind is AlgorithmKind.INDEXED
                ):
                    timing.skipped = "indexed algorithm is monochromatic-only"
                    continue

                if kind is AlgorithmKind.NAIVE and sample is not None:
                    if base_pass:
                        _time_sampled_naive(
                            workload, search_graph, sample, timing,
                            repetitions, warmup,
                        )
                    else:
                        # The sampled estimate is a per-candidate
                        # extrapolation; re-timing it through the pool
                        # would only measure IPC on 48 candidates.
                        timing.skipped = (
                            "sampled naive baseline is timed once, at the "
                            "first workers value"
                        )
                    continue

                if kind is AlgorithmKind.INDEXED and engine.index is None:
                    _prepare_index(
                        workload, engine, timing, num_hubs, index_cache,
                        use_csr, result=result, workers_axis=workers_axis,
                        worker_context=worker_context,
                    )

                run_kwargs = dict(use_csr=use_csr)
                if num_workers > 1:
                    # Pool startup (spawn can take seconds) happens here,
                    # outside warmup and the timed repetitions.
                    pool = engine.prepare_parallel(num_workers, worker_context)
                    timing.graph_shared = pool.uses_shared_graph
                    timing.startup_payload_bytes = pool.startup_payload_bytes
                    run_kwargs.update(
                        workers=num_workers, worker_context=worker_context,
                        stats=stats_mode,
                    )

                for _ in range(warmup):
                    engine.query_many(
                        workload.queries, workload.k, algorithm=kind,
                        **run_kwargs,
                    )

                batch: List[QueryResult] = []
                for _ in range(repetitions):
                    started = time.perf_counter()
                    batch = engine.query_many(
                        workload.queries, workload.k, algorithm=kind,
                        **run_kwargs,
                    )
                    timing.repetitions.append(time.perf_counter() - started)

                if trace and engine.last_trace is not None:
                    # Capture now: the consistency/backend checks below
                    # run more (untimed) batches that would overwrite the
                    # engine's last trace.
                    last_trace = engine.last_trace
                    timing.trace_summary = summarize_trace(last_trace, top=5)
                    if trace_dir is not None:
                        trace_path = trace_dir / (
                            f"{workload.name}-{key.replace('@', '-')}"
                            ".trace.json"
                        )
                        trace_path.write_text(
                            json.dumps(last_trace, indent=2, sort_keys=True)
                            + "\n"
                        )

                if num_workers > 1 and stats_mode != "per-query":
                    # Rebuilt results carry empty stats under "aggregate" /
                    # "none"; take the counter from the batch aggregate when
                    # one was collected, and report None — not a fake 0 —
                    # when stats were never collected at all.
                    batch_stats = engine.last_batch_stats
                    timing.rank_refinements = getattr(
                        batch_stats, "rank_refinements", None
                    )
                else:
                    timing.rank_refinements = sum(
                        item.stats.rank_refinements for item in batch
                    )
                if num_workers > 1 and batch:
                    timing.ipc_bytes_per_query = (
                        engine.last_batch_ipc_bytes / len(batch)
                    )
                if num_workers == 1:
                    serial_batches.setdefault(kind, batch)

                if kind is AlgorithmKind.NAIVE and base_pass:
                    baseline = batch
                    timing.speedup_vs_naive = 1.0
                    timing.validated = True
                else:
                    if validate:
                        if baseline is not None:
                            _validate_batch(workload, baseline, batch, key)
                            timing.validated = True
                        elif sample is not None:
                            if sample_ranks is None:
                                sample_ranks = _exact_sample_ranks(
                                    workload, search_graph, sample
                                )
                            _spot_validate_sampled(
                                workload, batch, sample_ranks, key
                            )
                            if reference is not None:
                                _validate_batch(
                                    workload, reference, batch, key,
                                    baseline_label=reference_label,
                                )
                            reference = batch
                            reference_label = key
                            timing.validated = True
                    naive_timing = result.algorithms.get(
                        AlgorithmKind.NAIVE.value
                    )
                    naive_mean = None
                    if naive_timing is not None:
                        naive_mean = (
                            naive_timing.estimated_full_seconds
                            if naive_timing.estimated_full_seconds is not None
                            else naive_timing.mean_seconds
                        )
                    if naive_mean and timing.mean_seconds:
                        timing.speedup_vs_naive = naive_mean / timing.mean_seconds

                if num_workers > 1:
                    serial = serial_batches.get(kind)
                    if serial is None:
                        # Parallel-only run (e.g. ``--workers 2``): build
                        # the sequential reference untimed.
                        serial = engine.query_many(
                            workload.queries, workload.k, algorithm=kind,
                            use_csr=use_csr,
                        )
                        serial_batches[kind] = serial
                    _check_parallel_consistency(
                        workload, kind, serial, batch, key
                    )
                    if result.parallel_consistent is None:
                        result.parallel_consistent = True
                    serial_timing = result.algorithms.get(kind.value)
                    if (
                        serial_timing is not None
                        and serial_timing.workers == 1
                        and serial_timing.mean_seconds
                        and timing.mean_seconds
                    ):
                        timing.speedup_vs_serial = (
                            serial_timing.mean_seconds / timing.mean_seconds
                        )

                if (
                    check_backend
                    and kind is AlgorithmKind.DYNAMIC
                    and base_pass
                ):
                    result.backend_consistent = _check_backend_consistency(
                        workload, engine, batch, timed_on_csr=use_csr
                    )
    finally:
        engine.close_pool()

    if mutation_rate:
        _run_mutation_pass(
            workload, result, mutation_rate,
            repetitions=repetitions, warmup=warmup, num_hubs=num_hubs,
            workers_axis=workers_axis, worker_context=worker_context,
        )

    return result


def _exact_sample_ranks(
    workload: Workload, search_graph, sample: List[object]
) -> Dict[object, Dict[object, float]]:
    """Exact ``Rank(p, q)`` for every sampled ``p`` and workload query ``q``."""
    return {
        query: {
            candidate: exact_rank(search_graph, candidate, query)
            for candidate in sample
            if candidate != query
        }
        for query in workload.queries
    }


def _prepare_index(
    workload: Workload,
    engine: ReverseKRanksEngine,
    timing: AlgorithmTiming,
    num_hubs: Optional[int],
    index_cache: Optional[object],
    use_csr: bool = True,
    result: Optional[WorkloadResult] = None,
    workers_axis: Optional[List[int]] = None,
    worker_context: Optional[str] = None,
) -> None:
    """Build — or load from ``index_cache`` — the engine's hub index.

    ``use_csr`` is threaded into the build so a ``--no-csr`` run measures
    the dict backend's index construction too, not a hidden CSR one.

    When the run has a parallel pass (``workers_axis`` contains a value
    above 1) and the index is actually *built* (not a cache hit), a twin
    engine additionally builds the same index through the sharded worker
    pool and the two exported states are compared byte-for-byte — the
    ``parallel_index_consistent`` flag of the report.  A mismatch raises
    :class:`~repro.errors.CrossValidationError`: merge-order bugs in the
    delta machinery must fail the bench, not silently ship a different
    index.
    """
    build_kwargs = dict(workload.index_params)
    if num_hubs is not None:
        build_kwargs["num_hubs"] = num_hubs
    capacity = int(build_kwargs.pop("capacity", max(workload.k, 16)))

    cache_path: Optional[Path] = None
    if index_cache is not None:
        # The build parameters are part of the cache key: a cached 64-hub
        # index must not silently serve a 128-hub configuration.
        tag = (
            f"h{build_kwargs.get('num_hubs', 'auto')}"
            f"-m{build_kwargs.get('explore_limit', 'full')}"
            f"-k{capacity}"
        )
        cache_path = (
            Path(index_cache)
            / f"{workload.name}-seed{workload.seed}-{tag}.hubindex"
        )

    started = time.perf_counter()
    if cache_path is not None and cache_path.exists():
        try:
            loaded = HubIndex.load(cache_path, workload.graph)
        except (IndexParameterError, OSError, pickle.PickleError, EOFError):
            loaded = None
        if loaded is not None and loaded.capacity >= capacity:
            engine.adopt_index(loaded)
            timing.index_cache = "hit"
            timing.index_build_seconds = time.perf_counter() - started
            return
    index = engine.build_index(capacity=capacity, use_csr=use_csr, **build_kwargs)
    timing.index_build_seconds = time.perf_counter() - started
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        index.save(cache_path)
        timing.index_cache = "miss"

    parallel_workers = max(
        (value for value in (workers_axis or []) if value > 1), default=None
    )
    if parallel_workers is not None and use_csr and result is not None:
        twin = ReverseKRanksEngine(workload.graph)
        try:
            parallel_index = twin.build_index(
                capacity=capacity,
                use_csr=True,
                workers=parallel_workers,
                worker_context=worker_context,
                **build_kwargs,
            )
        finally:
            twin.close_pool()
        if pickle.dumps(parallel_index.export_state()) != pickle.dumps(
            index.export_state()
        ):
            raise CrossValidationError(
                f"hub index built through {parallel_workers} workers is not "
                f"bit-identical to the sequential build on workload "
                f"{workload.name!r}"
            )
        result.parallel_index_consistent = True


def _mutation_ops(rng, graph, count: int) -> List[tuple]:
    """Draw ``count`` effective update ops, shadow-applying them to ``graph``.

    ``graph`` is the pass's *shadow* copy — the mutation pass never touches
    the engine's own graph outside
    :meth:`~repro.core.engine.ReverseKRanksEngine.apply_updates`.  Ops stay
    within the existing node set (node removal forces a recompaction by
    design, and the steady state this pass measures is the overlay path):
    edge removals, brand-new edges and weight decreases — increases are
    no-ops under the graph's min-collapse rule and would only dilute the
    measured update cost.
    """
    ops: List[tuple] = []
    nodes = sorted(graph.nodes(), key=repr)
    attempts = 0
    while len(ops) < count and attempts < count * 25:
        attempts += 1
        edges = list(graph.edges())
        roll = rng.random()
        if edges and roll < 0.35:
            source, target, _ = edges[rng.randrange(len(edges))]
            ops.append(("remove_edge", source, target))
            graph.remove_edge(source, target)
        elif edges and roll < 0.6:
            source, target, weight = edges[rng.randrange(len(edges))]
            new_weight = round(weight * rng.uniform(0.4, 0.9), 6)
            if not 0 < new_weight < weight:
                continue
            ops.append(("add_edge", source, target, new_weight))
            graph.add_edge(source, target, new_weight)
        else:
            source = nodes[rng.randrange(len(nodes))]
            target = nodes[rng.randrange(len(nodes))]
            if source == target or graph.has_edge(source, target):
                continue
            weight = round(rng.uniform(1.0, 5.0), 3)
            ops.append(("add_edge", source, target, weight))
            graph.add_edge(source, target, weight)
    return ops


def _metric_value(engine: ReverseKRanksEngine, name: str, **labels) -> float:
    """Current value of a counter in ``engine``'s private metrics registry."""
    family = engine.registry.get(name)
    if family is None:
        return 0.0
    child = family.labels(**labels) if labels else family
    return child.value


def _run_mutation_pass(
    workload: Workload,
    result: WorkloadResult,
    mutation_rate: float,
    repetitions: int,
    warmup: int,
    num_hubs: Optional[int],
    workers_axis: List[int],
    worker_context: Optional[str],
) -> None:
    """The mixed update/query pass behind ``--mutation-rate``.

    Runs on a private copy of the workload graph with its own engine.
    Each timed repetition applies a seeded batch of updates through
    :meth:`~repro.core.engine.ReverseKRanksEngine.apply_updates` and then
    the full query batch, so a row's wall-clock is the true mixed cost:
    overlay build + hub-index repair + pool sync + queries.  Three things
    are verified *in-run* (any failure raises
    :class:`~repro.errors.CrossValidationError`):

    * the :class:`UpdateReport` tallies match the :mod:`repro.obs`
      counter deltas (``repro_graph_updates_total``,
      ``repro_csr_recompactions_total``, ``repro_pool_graph_syncs_total``)
      — the rows' counters are real, not self-reported;
    * when the pass has a parallel row and no batch forced a
      recompaction, the worker PIDs are unchanged at the end — updates
      were absorbed by live workers, never by a pool restart;
    * the final overlay-path answers are bit-identical (ranks *and* work
      counters for the dynamic row; rank values for the indexed row,
      whose retained learned entries may legitimately re-order boundary
      ties) to a fresh engine recompiled from scratch over an
      identically-mutated graph — ``mutation_consistent``.
    """
    kinds = (AlgorithmKind.DYNAMIC, AlgorithmKind.INDEXED)
    if workload.partition is not None:
        for kind in kinds:
            key = f"{kind.value}@mut"
            result.algorithms[key] = AlgorithmTiming(
                algorithm=key,
                skipped="mutation pass is monochromatic-only",
            )
        return

    ops_per_batch = max(1, round(mutation_rate * len(workload.queries)))
    shadow = workload.graph.copy()
    graph = workload.graph.copy()
    rng = random.Random(workload.seed * 8191 + 0xD17A)
    queries = workload.queries

    build_kwargs = dict(workload.index_params)
    if num_hubs is not None:
        build_kwargs["num_hubs"] = num_hubs
    capacity = int(build_kwargs.pop("capacity", max(workload.k, 16)))
    parallel_workers = max(
        (value for value in workers_axis if value > 1), default=None
    )

    engine = ReverseKRanksEngine(graph)
    try:
        engine.build_index(capacity=capacity, use_csr=True, **build_kwargs)
        hubs = engine.index.hubs
        pids_before = None
        if parallel_workers is not None:
            pool = engine.prepare_parallel(parallel_workers, worker_context)
            pids_before = sorted(
                process.pid for process in pool._processes
            )

        any_recompacted = False
        mutation_rows: List[AlgorithmTiming] = []
        workers_values = [1] + (
            [parallel_workers] if parallel_workers is not None else []
        )
        for kind in kinds:
            for num_workers in workers_values:
                key = f"{kind.value}@mut" + (
                    "" if num_workers == 1 else f"@w{num_workers}"
                )
                timing = AlgorithmTiming(algorithm=key, workers=num_workers)
                result.algorithms[key] = timing
                mutation_rows.append(timing)
                run_kwargs = dict(use_csr=True)
                if num_workers > 1:
                    run_kwargs.update(
                        workers=num_workers, worker_context=worker_context
                    )

                applied_before = _metric_value(
                    engine, "repro_graph_updates_total", result="applied"
                )
                recompactions_before = _metric_value(
                    engine, "repro_csr_recompactions_total"
                )
                syncs_before = _metric_value(
                    engine, "repro_pool_graph_syncs_total"
                )

                for _ in range(warmup):
                    engine.query_many(
                        queries, workload.k, algorithm=kind, **run_kwargs
                    )
                applied = recompacted = synced = 0
                batch: List[QueryResult] = []
                for _ in range(repetitions):
                    ops = _mutation_ops(rng, shadow, ops_per_batch)
                    started = time.perf_counter()
                    report = engine.apply_updates(ops)
                    batch = engine.query_many(
                        queries, workload.k, algorithm=kind, **run_kwargs
                    )
                    timing.repetitions.append(time.perf_counter() - started)
                    applied += report.applied
                    recompacted += int(report.recompacted)
                    synced += int(report.pool_synced)
                any_recompacted = any_recompacted or recompacted > 0

                recompaction_delta = int(
                    _metric_value(engine, "repro_csr_recompactions_total")
                    - recompactions_before
                )
                sync_delta = int(
                    _metric_value(engine, "repro_pool_graph_syncs_total")
                    - syncs_before
                )
                applied_delta = int(
                    _metric_value(
                        engine, "repro_graph_updates_total", result="applied"
                    )
                    - applied_before
                )
                if (
                    applied_delta != applied
                    or recompaction_delta != recompacted
                    or sync_delta != synced
                ):
                    raise CrossValidationError(
                        f"mutation row {key!r} on workload {workload.name!r}: "
                        f"UpdateReport tallies (applied={applied}, "
                        f"recompacted={recompacted}, synced={synced}) "
                        f"disagree with repro.obs counter deltas "
                        f"(applied={applied_delta}, "
                        f"recompacted={recompaction_delta}, "
                        f"synced={sync_delta})"
                    )
                timing.updates_applied = applied
                timing.csr_recompactions = recompaction_delta
                timing.pool_graph_syncs = sync_delta
                timing.rank_refinements = sum(
                    item.stats.rank_refinements for item in batch
                )

        if (
            pids_before is not None
            and not any_recompacted
            and engine._pool is not None
        ):
            pids_after = sorted(
                process.pid for process in engine._pool._processes
            )
            if pids_after != pids_before:
                raise CrossValidationError(
                    f"mutation pass on workload {workload.name!r} restarted "
                    f"the worker pool without a recompaction: PIDs "
                    f"{pids_before} -> {pids_after}"
                )

        _validate_mutation_pass(
            workload, result, engine, shadow, queries, hubs, capacity,
            build_kwargs.get("explore_limit"),
        )
        # The pass-level recompile validation covers every row that ran
        # (they all answered from the same overlay/repair lineage).
        for timing in mutation_rows:
            timing.validated = True
    finally:
        engine.close_pool()


def _validate_mutation_pass(
    workload: Workload,
    result: WorkloadResult,
    engine: ReverseKRanksEngine,
    shadow,
    queries,
    hubs,
    capacity: int,
    explore_limit,
) -> None:
    """Bit-identity of the overlay path against a from-scratch recompile.

    ``shadow`` received exactly the op sequence the engine absorbed
    through ``apply_updates``, in the same order, so a fresh engine over
    it compiles the CSR a cold restart would produce.  Dynamic answers
    must match with identical ranks *and* identical work counters
    (``QueryStats`` minus wall-clock); the repaired index is rebuilt over
    the same hub set and must produce identical rank values.
    """
    fresh = ReverseKRanksEngine(shadow)
    backend = fresh.compact_graph()
    expected = fresh.query_many(
        queries, workload.k, algorithm=AlgorithmKind.DYNAMIC
    )
    actual = engine.query_many(
        queries, workload.k, algorithm=AlgorithmKind.DYNAMIC
    )
    for want, got in zip(expected, actual):
        want_stats = want.stats.as_dict()
        got_stats = got.stats.as_dict()
        want_stats.pop("elapsed_seconds", None)
        got_stats.pop("elapsed_seconds", None)
        if want.as_pairs() != got.as_pairs() or want_stats != got_stats:
            raise CrossValidationError(
                f"overlay path diverges from a from-scratch recompile on "
                f"workload {workload.name!r} for query={want.query!r}: "
                f"recompiled={want.as_pairs()!r}/{want_stats!r} vs "
                f"overlay={got.as_pairs()!r}/{got_stats!r}"
            )
    rebuilt = HubIndex.build(
        shadow, capacity=capacity, hubs=hubs, explore_limit=explore_limit,
        backend=backend,
    )
    fresh.adopt_index(rebuilt)
    expected_indexed = fresh.query_many(
        queries, workload.k, algorithm=AlgorithmKind.INDEXED
    )
    actual_indexed = engine.query_many(
        queries, workload.k, algorithm=AlgorithmKind.INDEXED
    )
    for want, got in zip(expected_indexed, actual_indexed):
        if not results_equivalent(want, got) or (
            want.rank_values() != got.rank_values()
        ):
            raise CrossValidationError(
                f"repaired hub index diverges from a same-hub rebuild on "
                f"workload {workload.name!r} for query={want.query!r}: "
                f"rebuilt={want.as_pairs()!r} vs repaired={got.as_pairs()!r}"
            )
    result.mutation_consistent = True


def run_suite(
    workloads: List[Workload],
    repetitions: int = 3,
    warmup: int = 1,
    use_csr: bool = True,
    validate: bool = True,
    check_backend: bool = True,
    index_cache: Optional[object] = None,
    workers=1,
    worker_context: Optional[str] = None,
    stats_mode: str = "per-query",
    trace: bool = False,
    trace_dir: Optional[object] = None,
    mutation_rate: float = 0.0,
    progress=None,
) -> List[WorkloadResult]:
    """Run every workload through :func:`run_workload`.

    ``progress`` is an optional ``callable(str)`` invoked with a short
    status line before each workload (the CLI passes ``print``).
    """
    results = []
    for workload in workloads:
        if progress is not None:
            progress(
                f"benchmarking {workload.name} "
                f"(|V|={workload.num_nodes}, |E|={workload.num_edges}, "
                f"{len(workload.queries)} queries, k={workload.k})"
            )
        results.append(
            run_workload(
                workload,
                repetitions=repetitions,
                warmup=warmup,
                use_csr=use_csr,
                validate=validate,
                check_backend=check_backend,
                index_cache=index_cache,
                workers=workers,
                worker_context=worker_context,
                stats_mode=stats_mode,
                trace=trace,
                trace_dir=trace_dir,
                mutation_rate=mutation_rate,
            )
        )
    return results
