"""The benchmark timing harness.

:func:`run_workload` times every applicable
:class:`~repro.core.config.AlgorithmKind` on one
:class:`~repro.bench.workloads.Workload` — warmup rounds first, then timed
repetitions of the whole query batch through
:meth:`~repro.core.engine.ReverseKRanksEngine.query_many` — and
cross-validates every optimised algorithm's results against the naive
baseline *during the run* (a disagreement raises
:class:`~repro.errors.CrossValidationError`, which fails the CI smoke job).

A backend consistency check additionally asserts that the
:class:`~repro.graph.csr.CompactGraph` CSR backend returns results identical
to the dict-backed graph, so the trajectory never silently benchmarks a
backend that diverged.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.workloads import Workload
from repro.core.config import AlgorithmKind
from repro.core.engine import ReverseKRanksEngine
from repro.core.types import QueryResult
from repro.core.validation import results_equivalent
from repro.errors import CrossValidationError

__all__ = ["AlgorithmTiming", "WorkloadResult", "run_workload", "run_suite"]

#: Canonical benchmarking order: the baseline first (its results seed the
#: in-run validation), then by increasing sophistication.
_KIND_ORDER = (
    AlgorithmKind.NAIVE,
    AlgorithmKind.STATIC,
    AlgorithmKind.DYNAMIC,
    AlgorithmKind.INDEXED,
)


@dataclass
class AlgorithmTiming:
    """Wall-clock timings (and work counters) for one algorithm on one workload."""

    algorithm: str
    repetitions: List[float] = field(default_factory=list)
    index_build_seconds: Optional[float] = None
    rank_refinements: int = 0
    validated: Optional[bool] = None
    speedup_vs_naive: Optional[float] = None
    skipped: Optional[str] = None

    @property
    def mean_seconds(self) -> Optional[float]:
        """Mean wall-clock seconds per timed repetition of the batch."""
        if not self.repetitions:
            return None
        return statistics.fmean(self.repetitions)

    @property
    def best_seconds(self) -> Optional[float]:
        """Fastest timed repetition of the batch."""
        return min(self.repetitions) if self.repetitions else None

    def per_query_seconds(self, num_queries: int) -> Optional[float]:
        """Mean wall-clock seconds per individual query."""
        mean = self.mean_seconds
        if mean is None or num_queries <= 0:
            return None
        return mean / num_queries

    def as_dict(self, num_queries: int) -> Dict[str, object]:
        """JSON-ready view."""
        payload: Dict[str, object] = {
            "algorithm": self.algorithm,
            "repetitions_seconds": list(self.repetitions),
            "mean_seconds": self.mean_seconds,
            "best_seconds": self.best_seconds,
            "per_query_seconds": self.per_query_seconds(num_queries),
            "rank_refinements": self.rank_refinements,
            "validated": self.validated,
            "speedup_vs_naive": self.speedup_vs_naive,
        }
        if self.index_build_seconds is not None:
            payload["index_build_seconds"] = self.index_build_seconds
        if self.skipped is not None:
            payload["skipped"] = self.skipped
        return payload


@dataclass
class WorkloadResult:
    """All algorithm timings for one workload, plus its metadata."""

    workload: Workload
    backend: str
    algorithms: Dict[str, AlgorithmTiming] = field(default_factory=dict)
    backend_consistent: Optional[bool] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view."""
        payload = self.workload.describe()
        payload["backend"] = self.backend
        payload["backend_consistent"] = self.backend_consistent
        payload["algorithms"] = {
            name: timing.as_dict(len(self.workload.queries))
            for name, timing in self.algorithms.items()
        }
        return payload


def _validate_batch(
    workload: Workload,
    baseline: List[QueryResult],
    contender: List[QueryResult],
    label: str,
) -> None:
    for expected, actual in zip(baseline, contender):
        if not results_equivalent(expected, actual):
            raise CrossValidationError(
                f"{label} disagrees with naive on workload "
                f"{workload.name!r} for query={expected.query!r}, "
                f"k={workload.k}: naive={expected.as_pairs()!r} vs "
                f"{label}={actual.as_pairs()!r}"
            )


def _check_backend_consistency(
    workload: Workload,
    engine: ReverseKRanksEngine,
    timed_batch: List[QueryResult],
    timed_on_csr: bool,
) -> bool:
    """Assert CSR-backed results are identical to dict-backed results.

    The timed dynamic batch is reused as one side of the comparison; only
    the opposite backend is evaluated here.
    """
    other_batch = engine.query_many(
        workload.queries,
        workload.k,
        algorithm=AlgorithmKind.DYNAMIC,
        use_csr=not timed_on_csr,
    )
    dict_results = other_batch if timed_on_csr else timed_batch
    csr_results = timed_batch if timed_on_csr else other_batch
    for expected, actual in zip(dict_results, csr_results):
        if expected.as_pairs() != actual.as_pairs():
            raise CrossValidationError(
                f"CompactGraph backend diverges from the dict backend on "
                f"workload {workload.name!r} for query={expected.query!r}: "
                f"dict={expected.as_pairs()!r} vs csr={actual.as_pairs()!r}"
            )
    return True


def run_workload(
    workload: Workload,
    repetitions: int = 3,
    warmup: int = 1,
    use_csr: bool = True,
    validate: bool = True,
    check_backend: bool = True,
    num_hubs: Optional[int] = None,
) -> WorkloadResult:
    """Time all four algorithms on ``workload``.

    Parameters
    ----------
    workload:
        The workload to benchmark.
    repetitions:
        Timed repetitions of the full query batch per algorithm.
    warmup:
        Untimed warmup batches per algorithm (also pre-warms the hub index,
        so indexed timings measure the warm steady state the paper reports).
    use_csr:
        Whether non-indexed monochromatic queries run on the CSR backend.
    validate:
        Cross-validate every algorithm's results against naive in-run.
    check_backend:
        Additionally assert CSR results == dict results (monochromatic only).
    num_hubs:
        Hub count for the indexed algorithm; defaults to ``max(1, |V| // 8)``.

    Raises
    ------
    CrossValidationError
        When any algorithm disagrees with the naive baseline, or the CSR
        backend disagrees with the dict backend.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    graph = workload.graph
    result = WorkloadResult(
        workload=workload,
        backend="csr" if use_csr and workload.partition is None else "dict",
    )
    baseline: Optional[List[QueryResult]] = None

    # One engine per workload: its version-keyed CSR cache compiles the
    # CompactGraph exactly once, outside every timed window (with warmup=0
    # a per-kind engine would fold the compile into the first repetition).
    engine = ReverseKRanksEngine(graph, partition=workload.partition)
    if use_csr and workload.partition is None:
        engine.compact_graph()

    for kind in _KIND_ORDER:
        timing = AlgorithmTiming(algorithm=kind.value)
        result.algorithms[kind.value] = timing

        if workload.partition is not None and kind is AlgorithmKind.INDEXED:
            timing.skipped = "indexed algorithm is monochromatic-only"
            continue

        if kind is AlgorithmKind.INDEXED:
            started = time.perf_counter()
            engine.build_index(
                num_hubs=num_hubs,
                capacity=max(workload.k, 16),
            )
            timing.index_build_seconds = time.perf_counter() - started

        for _ in range(warmup):
            engine.query_many(
                workload.queries, workload.k, algorithm=kind, use_csr=use_csr
            )

        batch: List[QueryResult] = []
        for _ in range(repetitions):
            started = time.perf_counter()
            batch = engine.query_many(
                workload.queries, workload.k, algorithm=kind, use_csr=use_csr
            )
            timing.repetitions.append(time.perf_counter() - started)

        timing.rank_refinements = sum(
            item.stats.rank_refinements for item in batch
        )
        if kind is AlgorithmKind.NAIVE:
            baseline = batch
            timing.speedup_vs_naive = 1.0
            timing.validated = True
        else:
            if validate and baseline is not None:
                _validate_batch(workload, baseline, batch, kind.value)
                timing.validated = True
            naive_timing = result.algorithms[AlgorithmKind.NAIVE.value]
            if naive_timing.mean_seconds and timing.mean_seconds:
                timing.speedup_vs_naive = (
                    naive_timing.mean_seconds / timing.mean_seconds
                )

        if (
            check_backend
            and workload.partition is None
            and kind is AlgorithmKind.DYNAMIC
        ):
            result.backend_consistent = _check_backend_consistency(
                workload, engine, batch, timed_on_csr=use_csr
            )

    return result


def run_suite(
    workloads: List[Workload],
    repetitions: int = 3,
    warmup: int = 1,
    use_csr: bool = True,
    validate: bool = True,
    check_backend: bool = True,
    progress=None,
) -> List[WorkloadResult]:
    """Run every workload through :func:`run_workload`.

    ``progress`` is an optional ``callable(str)`` invoked with a short
    status line before each workload (the CLI passes ``print``).
    """
    results = []
    for workload in workloads:
        if progress is not None:
            progress(
                f"benchmarking {workload.name} "
                f"(|V|={workload.num_nodes}, |E|={workload.num_edges}, "
                f"{len(workload.queries)} queries, k={workload.k})"
            )
        results.append(
            run_workload(
                workload,
                repetitions=repetitions,
                warmup=warmup,
                use_csr=use_csr,
                validate=validate,
                check_backend=check_backend,
            )
        )
    return results
