"""``python -m repro.bench`` — the benchmark CLI.

Examples
--------
Run the standard suite and write ``BENCH_core.json`` in the current
directory (run it from the repo root to update the tracked trajectory)::

    python -m repro.bench

The tiny CI smoke run (seconds, all five families, validation on)::

    python -m repro.bench --smoke

Benchmark a subset of families with more repetitions::

    python -m repro.bench --families gnp,powerlaw --repetitions 5

The thousands-of-nodes suite (sampled naive baseline), on top of the
default one, with hub indexes cached on disk between runs::

    python -m repro.bench --scale default,large --index-cache .bench-index-cache

The huge-scale tier — road-network-like lattices in the 10^4–10^5-node
range, sampled naive baseline, ``"auto"`` hub budgets, and (with a
workers axis) shared-memory graph transport into the workers::

    python -m repro.bench --scale huge --workers 1,2

A real dataset file (SNAP/KONECT edge list, DIMACS ``.gr`` or repro
JSON; format auto-detected) instead of the synthetic suite::

    python -m repro.bench --dataset roadNet-PA.txt --workers 1,2

The worker-process scaling axis: time every algorithm in-process *and*
through a 2-worker shard pool (extra rows keyed ``name@w2``, each checked
rank-identical against its sequential reference)::

    python -m repro.bench --workers 1,2

Exit status is non-zero when any algorithm disagrees with the naive
baseline (or, on sampled large-scale workloads, the exact-rank spot
checks) or the CSR backend diverges from the dict backend.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.harness import run_suite
from repro.bench.report import (
    DEFAULT_REPORT_NAME,
    build_report,
    render_table,
    write_report,
)
from repro.bench.workloads import WORKLOAD_FAMILIES, build_suite, dataset_workload
from repro.errors import CrossValidationError, DatasetError, WorkloadError


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Benchmark the four reverse k-ranks algorithms "
            "(naive/static/dynamic/indexed) on seeded synthetic workloads "
            "and write the BENCH_core.json trajectory report."
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI-sized workloads, 1 repetition, no warmup",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help=(
            "workload scale(s): smoke, default, large, huge, or a "
            "comma-separated combination like default,large (default: "
            "default; overrides --smoke when both are given)"
        ),
    )
    parser.add_argument(
        "--dataset",
        default=None,
        metavar="PATH",
        help=(
            "benchmark a real dataset file instead of the synthetic suite: "
            "a SNAP/KONECT edge list, DIMACS .gr or repro JSON document "
            "(format auto-detected; large graphs get a sampled naive "
            "baseline and 'auto' hub budgets)"
        ),
    )
    parser.add_argument(
        "--directed",
        action="store_true",
        help="with --dataset: interpret the dataset's edges as directed",
    )
    parser.add_argument(
        "--index-cache",
        default=None,
        metavar="DIR",
        help=(
            "directory for hub-index save/load: the indexed algorithm "
            "loads a cached index when fresh and builds+saves otherwise"
        ),
    )
    parser.add_argument(
        "--workers",
        default="1",
        metavar="N[,M...]",
        help=(
            "worker-process axis: one value (e.g. 2) times every batch "
            "through that many sharded worker processes; a comma list "
            "(e.g. 1,2) times each value, keying extra rows name@wN "
            "(default: 1, in-process)"
        ),
    )
    parser.add_argument(
        "--worker-context",
        default=None,
        choices=("fork", "spawn", "forkserver"),
        help=(
            "multiprocessing start method for parallel passes "
            "(default: the platform default)"
        ),
    )
    parser.add_argument(
        "--stats",
        default="per-query",
        choices=("per-query", "aggregate", "none"),
        help=(
            "batch stats mode for parallel passes: per-query ships full "
            "QueryStats per query, aggregate one merged QueryStats per "
            "shard, none drops stats entirely — aggregate/none shrink the "
            "per-query IPC bytes the name@wN rows report (default: "
            "per-query)"
        ),
    )
    parser.add_argument(
        "--mutation-rate",
        type=float,
        default=0.0,
        metavar="R",
        help=(
            "mixed update/query axis: each timed repetition of the extra "
            "name@mut rows first applies max(1, round(R * num_queries)) "
            "seeded graph updates through engine.apply_updates (CSR "
            "delta-overlay + in-place hub-index repair + live pool sync) "
            "and then the query batch; the final overlay-path answers are "
            "validated bit-identically against a from-scratch recompile "
            "(default: 0, no mutation pass)"
        ),
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "trace the timed batches: each report row gains a "
            "trace_summary (top spans by inclusive time) from its last "
            "timed batch; adds span bookkeeping to the timed windows, so "
            "use for attribution, not for comparing against untraced runs"
        ),
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help=(
            "write each row's full span tree there as "
            "{workload}-{row}.trace.json (implies --trace)"
        ),
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_REPORT_NAME,
        help=f"report path (default: {DEFAULT_REPORT_NAME})",
    )
    parser.add_argument(
        "--families",
        default=None,
        help=(
            "comma-separated workload families to run "
            f"(default: all of {','.join(WORKLOAD_FAMILIES)})"
        ),
    )
    parser.add_argument(
        "--repetitions", type=int, default=None,
        help="timed repetitions per algorithm (default: 3, smoke: 1)",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="untimed warmup batches per algorithm (default: 1, smoke: 0)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload generator seed (default: 0)"
    )
    parser.add_argument(
        "--no-csr",
        action="store_true",
        help="run non-indexed queries on the dict backend instead of CSR",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip in-run cross-validation against naive (not recommended)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress and table output"
    )
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _parse_args(argv)
    if args.scale is not None:
        scale = args.scale
    else:
        scale = "smoke" if args.smoke else "default"
    # Repetition/warmup defaults follow the *resolved* scale: --scale
    # overrides --smoke wholesale, so `--smoke --scale default` must not
    # inherit smoke's cold single-repetition timings (warmup pre-warms the
    # hub index; without it the indexed rows time the cold build path).
    smoke_only = [part.strip() for part in scale.split(",") if part.strip()] == [
        "smoke"
    ]
    repetitions = args.repetitions if args.repetitions is not None else (
        1 if smoke_only else 3
    )
    warmup = args.warmup if args.warmup is not None else (0 if smoke_only else 1)
    families = (
        [name.strip() for name in args.families.split(",") if name.strip()]
        if args.families
        else None
    )
    try:
        workers = [
            int(part) for part in args.workers.split(",") if part.strip()
        ]
    except ValueError:
        print(
            f"error: --workers expects integers, got {args.workers!r}",
            file=sys.stderr,
        )
        return 2
    progress = None if args.quiet else (lambda line: print(line, flush=True))

    try:
        if args.dataset is not None:
            workloads = [
                dataset_workload(
                    args.dataset, directed=args.directed, seed=args.seed
                )
            ]
        else:
            workloads = build_suite(
                families=families, scale=scale, seed=args.seed
            )
        results = run_suite(
            workloads,
            repetitions=repetitions,
            warmup=warmup,
            use_csr=not args.no_csr,
            validate=not args.no_validate,
            index_cache=args.index_cache,
            workers=workers,
            worker_context=args.worker_context,
            stats_mode=args.stats,
            trace=args.trace or args.trace_dir is not None,
            trace_dir=args.trace_dir,
            mutation_rate=args.mutation_rate,
            progress=progress,
        )
    except (WorkloadError, DatasetError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CrossValidationError as exc:
        print(f"CROSS-VALIDATION FAILURE: {exc}", file=sys.stderr)
        return 1

    config_extra = (
        {"dataset": args.dataset, "directed": args.directed}
        if args.dataset is not None
        else {}
    )
    report = build_report(
        results,
        config={
            "scale": scale if args.dataset is None else "dataset",
            **config_extra,
            "repetitions": repetitions,
            "warmup": warmup,
            "seed": args.seed,
            "use_csr": not args.no_csr,
            "validate": not args.no_validate,
            "workers": workers,
            "worker_context": args.worker_context,
            "stats": args.stats,
            "trace": args.trace or args.trace_dir is not None,
            "mutation_rate": args.mutation_rate,
            "families": [workload.family for workload in workloads],
        },
    )
    path = write_report(report, args.output)
    if not args.quiet:
        print()
        print(render_table(report))
        print(f"\nreport written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
