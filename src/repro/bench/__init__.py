"""Benchmark subsystem: seeded workloads, timing harness, trajectory report.

The paper's central claim is performance, so this package supplies the
measurement infrastructure the reproduction is judged against:

* :mod:`repro.bench.workloads` — seeded, parametric workload generators
  (path / grid / G(n,p) / power-law / bichromatic / road-like lattice)
  plus :func:`~repro.bench.workloads.dataset_workload` for real
  SNAP/DIMACS files;
* :mod:`repro.bench.harness` — warmup-and-repetition timing of all four
  :class:`~repro.core.config.AlgorithmKind`\\ s with in-run cross-validation
  against the naive baseline and a CSR-vs-dict backend consistency check;
* :mod:`repro.bench.report` — the ``BENCH_core.json`` schema and writer;
* :mod:`repro.bench.diff` — ``python -m repro.bench.diff OLD NEW``, the
  report comparator CI uses as its speed-regression gate;
* ``python -m repro.bench`` — the CLI (see :mod:`repro.bench.__main__`),
  with ``--smoke`` for the CI-sized run, ``--scale default,large,huge``
  up to the shared-memory-worker lattice tier (sampled naive baseline),
  ``--dataset`` for real edge-list/DIMACS files and ``--index-cache``
  for hub-index warm restarts.
"""

from repro.bench.harness import AlgorithmTiming, WorkloadResult, run_suite, run_workload
from repro.bench.report import build_report, render_table, write_report
from repro.bench.workloads import (
    WORKLOAD_FAMILIES,
    Workload,
    bichromatic_workload,
    build_suite,
    dataset_workload,
    default_suite,
    gnp_workload,
    grid_workload,
    huge_suite,
    large_suite,
    lattice_workload,
    path_workload,
    powerlaw_workload,
    smoke_suite,
)

__all__ = [
    "AlgorithmTiming",
    "WorkloadResult",
    "run_workload",
    "run_suite",
    "build_report",
    "write_report",
    "render_table",
    "Workload",
    "WORKLOAD_FAMILIES",
    "path_workload",
    "grid_workload",
    "gnp_workload",
    "powerlaw_workload",
    "bichromatic_workload",
    "lattice_workload",
    "dataset_workload",
    "build_suite",
    "smoke_suite",
    "default_suite",
    "large_suite",
    "huge_suite",
]
