"""``python -m repro.bench.diff`` — compare two benchmark trajectory reports.

Reads two ``BENCH_core.json``-style reports, matches workloads by name and
algorithms within them, and prints a per-workload/per-algorithm table of
old vs new timings.  The exit status is non-zero when

* any algorithm in the *new* report slowed down beyond the noise tolerance
  relative to the *old* report (``--tolerance``, default 0.25 = fail above
  a 1.25x slowdown; use ``--tolerance 1.0`` to fail only above 2x), or
* any non-skipped algorithm in the *new* report is **not validated**, any
  workload carries ``backend_consistent: false``,
  ``parallel_consistent: false``, ``parallel_index_consistent: false`` or
  ``mutation_consistent: false``,
  or an algorithm the old
  report validated is *skipped* in the new one — a correctness
  disagreement (or the harness silently ceasing to run a gated
  algorithm) must never look like a pass.  The harness aborts (exit
  non-zero, no report) when validation actually disagrees, so a report can
  only lack ``validated: true`` when it was generated with
  ``--no-validate``; such timing-only reports deliberately fail this gate.

Workloads or algorithms present in only one report are treated as
*explicit* additions and removals: their rows carry status ``new`` /
``removed``, :func:`summarize_membership` names every one, and the CLI
prints them as a dedicated "suite changes" section — but they never fail
the diff (suites legitimately grow and shrink; a ``--mutation-rate`` run
diffed against a baseline without ``@mut`` rows is additions, not a
regression).  Wall-clock noise on
shared rows is what the tolerance is for.  Only the chosen ``--metric``
and the correctness flags are ever read from a row — fields one side
lacks (``trace_summary`` from a ``--trace`` run, future additions) are
simply ignored, so observability-annotated reports diff cleanly against
plain ones.

Absolute seconds only compare meaningfully between runs on the same
machine, and the default metric is ``best_seconds`` (best of the timed
repetitions): with the suite's 1–3 repetitions a single scheduler hiccup
dominates the mean, and back-to-back runs of identical code can differ by
well over 25% on sub-millisecond ``mean_seconds`` rows while their best
repetitions stay stable.  Single-repetition reports (``--smoke``) have no
best-of to lean on, so diffing them needs a wider ``--tolerance``.  For
cross-machine gates (CI judging a fresh run against a committed
trajectory generated elsewhere) use
``--metric speedup_vs_naive``: each algorithm's speedup over the naive
baseline *of the same run* cancels the hardware out, and a regression is
a speedup *drop* beyond the tolerance.

Examples
--------
Fail CI on a >2x speedup regression against the committed trajectory::

    python -m repro.bench --output BENCH_new.json
    python -m repro.bench.diff BENCH_core.json BENCH_new.json \
        --metric speedup_vs_naive --tolerance 1.0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bench.report import _format_seconds

__all__ = [
    "compare_reports",
    "render_diff_table",
    "summarize_membership",
    "main",
]

#: Timing metric compared between reports (per whole-batch repetition).
#: Best-of-repetitions, not the mean: at 1-3 repetitions one scheduler
#: hiccup dominates a mean and same-machine diffs of identical code fail.
_DEFAULT_METRIC = "best_seconds"

#: Metrics where larger values are better (regression = value drop).
_HIGHER_IS_BETTER = frozenset({"speedup_vs_naive"})


def _load_report(path: str) -> Dict[str, object]:
    try:
        with open(Path(path)) as handle:
            report = json.load(handle)
    except OSError as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")
    if not isinstance(report, dict) or "workloads" not in report:
        raise SystemExit(f"error: {path} is not a repro.bench report")
    return report


def _workloads_by_name(report: Dict[str, object]) -> "Dict[str, dict]":
    return {workload["name"]: workload for workload in report["workloads"]}


def compare_reports(
    old: Dict[str, object],
    new: Dict[str, object],
    tolerance: float = 0.25,
    metric: str = _DEFAULT_METRIC,
    min_speedup: float = 0.0,
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Compare two reports; returns ``(rows, failures)``.

    Each row describes one ``(workload, algorithm)`` pair with keys
    ``workload``, ``algorithm``, ``old``/``new`` (metric values or
    ``None``), ``ratio`` (the slowdown factor, oriented so that > 1 is
    always worse regardless of the metric's direction) and ``status``
    (``ok`` / ``faster`` / ``SLOWER`` / ``new`` / ``removed`` /
    ``skipped`` / ``ignored`` / ``INVALID``).  ``failures`` holds one
    human-readable line per failing row.

    ``min_speedup`` only applies to higher-is-better metrics: rows whose
    *baseline* value sits below it are compared and shown (status
    ``ignored``) but can never fail.  A row whose committed speedup is
    ~1x has no algorithmic advantage to defend, and its ratio can be
    halved by a single scheduler stall in a 3-repetition mean — on a
    shared CI runner that is pure flake, not regression.
    """
    worse_is_larger = metric not in _HIGHER_IS_BETTER
    old_workloads = _workloads_by_name(old)
    new_workloads = _workloads_by_name(new)
    rows: List[Dict[str, object]] = []
    failures: List[str] = []

    for name in sorted(set(old_workloads) | set(new_workloads)):
        old_algorithms = old_workloads.get(name, {}).get("algorithms", {})
        new_algorithms = new_workloads.get(name, {}).get("algorithms", {})
        if name in new_workloads:
            consistent = new_workloads[name].get("backend_consistent")
            if consistent is False:
                failures.append(
                    f"{name}: backend_consistent is false in the new report"
                )
            parallel = new_workloads[name].get("parallel_consistent")
            if parallel is False:
                failures.append(
                    f"{name}: parallel_consistent is false in the new report"
                )
            parallel_index = new_workloads[name].get("parallel_index_consistent")
            if parallel_index is False:
                failures.append(
                    f"{name}: parallel_index_consistent is false in the "
                    "new report"
                )
            mutation = new_workloads[name].get("mutation_consistent")
            if mutation is False:
                failures.append(
                    f"{name}: mutation_consistent is false in the new report"
                )

        for algorithm in list(old_algorithms) + [
            a for a in new_algorithms if a not in old_algorithms
        ]:
            old_timing = old_algorithms.get(algorithm)
            new_timing = new_algorithms.get(algorithm)
            row = {
                "workload": name,
                "algorithm": algorithm,
                "old": (old_timing or {}).get(metric),
                "new": (new_timing or {}).get(metric),
                "ratio": None,
            }
            if (
                new_timing is not None
                and not new_timing.get("skipped")
                and new_timing.get("validated") is not True
            ):
                row["status"] = "INVALID"
                failures.append(
                    f"{name}/{algorithm}: validated is false in the new report"
                    if new_timing.get("validated") is False
                    else f"{name}/{algorithm}: not validated in the new "
                    "report (generated with --no-validate?)"
                )
            elif new_timing is None:
                row["status"] = "removed"
            elif old_timing is None:
                row["status"] = "new"
            elif new_timing.get("skipped") or old_timing.get("skipped"):
                row["status"] = "skipped"
                # A row the baseline validated but the new run skipped is
                # not suite shrinkage — it is the harness silently ceasing
                # to run an algorithm it used to gate.
                if (
                    new_timing.get("skipped")
                    and not old_timing.get("skipped")
                    and old_timing.get("validated") is True
                ):
                    row["status"] = "INVALID"
                    failures.append(
                        f"{name}/{algorithm}: validated in the old report "
                        f"but skipped in the new one "
                        f"({new_timing.get('skipped')!r})"
                    )
            elif not row["old"] or not row["new"]:
                row["status"] = "skipped"
            else:
                if worse_is_larger:
                    ratio = row["new"] / row["old"]
                else:
                    ratio = row["old"] / row["new"]
                row["ratio"] = ratio
                if (
                    not worse_is_larger
                    and min_speedup
                    and row["old"] < min_speedup
                ):
                    row["status"] = "ignored"
                elif ratio > 1.0 + tolerance:
                    row["status"] = "SLOWER"
                    failures.append(
                        f"{name}/{algorithm}: {ratio:.2f}x worse on {metric} "
                        f"({row['old']:.6g} -> {row['new']:.6g}, "
                        f"tolerance {1.0 + tolerance:.2f}x)"
                    )
                elif ratio < 1.0 - tolerance:
                    row["status"] = "faster"
                else:
                    row["status"] = "ok"
            rows.append(row)
    return rows, failures


def summarize_membership(
    old: Dict[str, object], new: Dict[str, object]
) -> Dict[str, List[str]]:
    """Explicit workload/row additions and removals between two reports.

    Returns ``{"added_workloads", "removed_workloads", "added_rows",
    "removed_rows"}`` — the last two are ``workload/algorithm`` pairs for
    workloads both reports share (rows a whole added/removed workload
    brings along are covered by the workload entry, not repeated).  None
    of these ever fail a diff; they exist so suite growth and shrinkage
    are reported as deliberate changes instead of hiding inside the
    per-row table.
    """
    old_workloads = _workloads_by_name(old)
    new_workloads = _workloads_by_name(new)
    added_rows: List[str] = []
    removed_rows: List[str] = []
    for name in sorted(set(old_workloads) & set(new_workloads)):
        old_algorithms = old_workloads[name].get("algorithms", {})
        new_algorithms = new_workloads[name].get("algorithms", {})
        added_rows.extend(
            f"{name}/{algorithm}"
            for algorithm in new_algorithms
            if algorithm not in old_algorithms
        )
        removed_rows.extend(
            f"{name}/{algorithm}"
            for algorithm in old_algorithms
            if algorithm not in new_algorithms
        )
    return {
        "added_workloads": sorted(set(new_workloads) - set(old_workloads)),
        "removed_workloads": sorted(set(old_workloads) - set(new_workloads)),
        "added_rows": sorted(added_rows),
        "removed_rows": sorted(removed_rows),
    }


def _format_value(value: Optional[float], metric: str) -> str:
    if value is None:
        return "-"
    if metric in _HIGHER_IS_BETTER:
        return f"{value:.1f}x"
    return _format_seconds(value)


def render_diff_table(
    rows: List[Dict[str, object]], metric: str = _DEFAULT_METRIC
) -> str:
    """The per-workload/per-algorithm comparison table."""
    header = (
        f"{'workload':<24} {'algo':<8} {'old':>10} {'new':>10} "
        f"{'ratio':>7} {'status':<8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        ratio = row["ratio"]
        lines.append(
            f"{row['workload']:<24} {row['algorithm']:<8} "
            f"{_format_value(row['old'], metric):>10} "
            f"{_format_value(row['new'], metric):>10} "
            f"{(f'{ratio:.2f}x' if ratio is not None else '-'):>7} "
            f"{row['status']:<8}"
        )
    return "\n".join(lines)


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.diff",
        description=(
            "Compare two repro.bench reports and exit non-zero on slowdowns "
            "beyond a noise tolerance or on correctness-flag regressions."
        ),
    )
    parser.add_argument("old", help="baseline report (e.g. committed BENCH_core.json)")
    parser.add_argument("new", help="candidate report to judge")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help=(
            "allowed fractional slowdown before failing; 0.25 fails above "
            "1.25x, 1.0 fails above 2x (default: 0.25)"
        ),
    )
    parser.add_argument(
        "--metric",
        default=_DEFAULT_METRIC,
        choices=(
            "mean_seconds",
            "best_seconds",
            "per_query_seconds",
            "speedup_vs_naive",
        ),
        help=(
            f"field to compare (default: {_DEFAULT_METRIC}); "
            "speedup_vs_naive is machine-independent and the right choice "
            "for cross-machine gates"
        ),
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        metavar="X",
        help=(
            "with --metric speedup_vs_naive: rows whose baseline speedup "
            "is below X are shown but never fail — a near-1x row has no "
            "advantage to defend and its mean-based ratio is dominated by "
            "scheduler noise (default: 0, off)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only failures, not the table"
    )
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _parse_args(argv)
    if args.tolerance < 0:
        print("error: --tolerance must be non-negative", file=sys.stderr)
        return 2
    old = _load_report(args.old)
    new = _load_report(args.new)
    rows, failures = compare_reports(
        old,
        new,
        tolerance=args.tolerance,
        metric=args.metric,
        min_speedup=args.min_speedup,
    )
    if not args.quiet:
        print(render_diff_table(rows, metric=args.metric))
        compared = sum(1 for row in rows if row["ratio"] is not None)
        print(
            f"\ncompared {compared} timings across "
            f"{len({row['workload'] for row in rows})} workloads "
            f"(metric: {args.metric}, tolerance: {args.tolerance:.2f})"
        )
        membership = summarize_membership(old, new)
        if any(membership.values()):
            print("\nsuite changes (never fail the diff):")
            for label, key in (
                ("added workloads", "added_workloads"),
                ("removed workloads", "removed_workloads"),
                ("added rows", "added_rows"),
                ("removed rows", "removed_rows"),
            ):
                if membership[key]:
                    print(f"  {label}: {', '.join(membership[key])}")
    if failures:
        print(
            f"\nREGRESSIONS ({len(failures)}):" , file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    if not args.quiet:
        print("no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
