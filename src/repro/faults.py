"""Deterministic, seeded fault injection (failpoints).

A *failpoint* is a named hook compiled into a hot path —
``faults.fire("worker.before_task")`` — that does nothing until a test
or a chaos harness arms it with an *action*.  Armed failpoints turn the
recovery paths this package promises (worker respawn, batch deadlines,
journal fault handling, graceful degradation) from theory into things CI
actually executes, the discipline Jepsen-class storage testing
popularised.

Activation
----------
Programmatic (tests)::

    from repro import faults
    faults.configure("worker.before_task=crash@0.3", seed=7)
    ...
    faults.clear()

Environment (subprocess harnesses; read automatically at import)::

    REPRO_FAILPOINTS="worker.before_task=crash@0.3;journal.fsync=error"
    REPRO_FAILPOINTS_SEED=7

:class:`~repro.parallel.pool.WorkerPool` exports both variables around
``Process.start()`` so spawned workers inherit the configuration, and
every worker re-derives its RNG streams with a ``(worker_id,
generation)`` salt (:func:`on_worker_start`) — two workers, or the same
worker before and after a respawn, fire on *different* deterministic
schedules instead of in lockstep.

Spec grammar
------------
``spec := point (";" point)*`` and ``point := name "=" action`` where::

    action := kind [ "(" arg ")" ] [ "@" probability ] [ "#" from_hit ] [ "*" limit ]

    kind        crash  — die instantly (SIGKILL; the "worker vanished" case)
                error  — raise FailpointError (an OSError; the I/O-fault case)
                sleep  — block for ``arg`` seconds (the hung-worker case)
    arg         sleep's duration in seconds, e.g. ``sleep(2.5)``
    @p          trigger with probability ``p`` per evaluation (seeded RNG;
                default 1.0 = always)
    #n          stay dormant for the first ``n - 1`` evaluations
    *m          disarm after ``m`` triggers (default: unlimited)

Examples: ``worker.before_task=crash@0.25#2`` (from the second task on,
25% chance per task of dying), ``journal.fsync=error*1`` (exactly one
injected fsync failure), ``worker.before_result=sleep(8)#3*1`` (hang
once, on the third result).

Compiled-in failpoints
----------------------
=========================  ====================================================
``worker.start``           in :func:`~repro.parallel.worker.worker_main`,
                           after the engine is rebuilt, before ``ready``
``worker.before_task``     before executing each task a worker dequeues
``worker.before_result``   after computing a task's payload, before
                           enqueueing it to the parent
``journal.write``          before a journal record's bytes are written
                           (the ENOSPC-style fault site)
``journal.fsync``          before the journal's batch-boundary fsync
=========================  ====================================================

Determinism: every probabilistic decision comes from a per-failpoint
``random.Random`` seeded with ``crc32(name) ^ seed ^ salt`` — same spec,
seed and salt, same trigger schedule, run after run.  ``#``/``*``
counters are plain per-process counts.
"""

from __future__ import annotations

import os
import random
import re
import signal
import time
import zlib
from typing import Dict, Optional

from repro.errors import FailpointError, ReproError

__all__ = [
    "ENV_SPEC",
    "ENV_SEED",
    "FailpointError",
    "FaultRegistry",
    "FaultSpecError",
    "active",
    "clear",
    "configure",
    "configure_from_env",
    "describe",
    "env_exports",
    "fire",
    "on_worker_start",
]

#: Environment variable carrying the failpoint spec.
ENV_SPEC = "REPRO_FAILPOINTS"
#: Environment variable carrying the registry seed (int; default 0).
ENV_SEED = "REPRO_FAILPOINTS_SEED"

_ACTION_RE = re.compile(
    r"^(?P<kind>crash|error|sleep)"
    r"(?:\((?P<arg>[^)]*)\))?"
    r"(?:@(?P<probability>[0-9.]+))?"
    r"(?:#(?P<from_hit>[0-9]+))?"
    r"(?:\*(?P<limit>[0-9]+))?$"
)


class FaultSpecError(ReproError, ValueError):
    """Raised when a failpoint spec string cannot be parsed."""


class _Failpoint:
    """One armed failpoint: its action, trigger window, and RNG stream."""

    __slots__ = (
        "name", "kind", "arg", "probability", "from_hit", "limit",
        "rng", "hits", "triggers",
    )

    def __init__(self, name, kind, arg, probability, from_hit, limit):
        self.name = name
        self.kind = kind
        self.arg = arg
        self.probability = probability
        self.from_hit = from_hit
        self.limit = limit
        self.rng: Optional[random.Random] = None
        self.hits = 0
        self.triggers = 0

    def reseed(self, seed: int, salt: int) -> None:
        self.rng = random.Random(zlib.crc32(self.name.encode()) ^ seed ^ salt)
        self.hits = 0
        self.triggers = 0


def _parse_point(name: str, action: str) -> _Failpoint:
    match = _ACTION_RE.match(action)
    if match is None:
        raise FaultSpecError(
            f"failpoint {name!r}: cannot parse action {action!r} "
            "(expected kind[(arg)][@p][#n][*m] with kind in "
            "crash/error/sleep)"
        )
    kind = match.group("kind")
    arg_text = match.group("arg")
    arg = 0.0
    if kind == "sleep":
        if not arg_text:
            raise FaultSpecError(
                f"failpoint {name!r}: sleep needs a duration, e.g. sleep(0.5)"
            )
        try:
            arg = float(arg_text)
        except ValueError:
            raise FaultSpecError(
                f"failpoint {name!r}: bad sleep duration {arg_text!r}"
            ) from None
        if arg < 0:
            raise FaultSpecError(
                f"failpoint {name!r}: sleep duration must be >= 0"
            )
    elif arg_text:
        raise FaultSpecError(
            f"failpoint {name!r}: action {kind!r} takes no argument"
        )
    probability = 1.0
    if match.group("probability") is not None:
        try:
            probability = float(match.group("probability"))
        except ValueError:
            raise FaultSpecError(
                f"failpoint {name!r}: bad probability "
                f"{match.group('probability')!r}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise FaultSpecError(
                f"failpoint {name!r}: probability must be in [0, 1], "
                f"got {probability}"
            )
    from_hit = int(match.group("from_hit") or 1)
    if from_hit < 1:
        raise FaultSpecError(f"failpoint {name!r}: #n must be >= 1")
    limit = match.group("limit")
    limit = None if limit is None else int(limit)
    if limit is not None and limit < 1:
        raise FaultSpecError(f"failpoint {name!r}: *m must be >= 1")
    return _Failpoint(name, kind, arg, probability, from_hit, limit)


class FaultRegistry:
    """The set of armed failpoints for this process.

    One module-level instance (behind the module-level functions) is the
    process's registry; the class is separate so tests can exercise
    parsing and trigger logic in isolation.
    """

    def __init__(self) -> None:
        self._points: Dict[str, _Failpoint] = {}
        self._spec = ""
        self._seed = 0
        self._salt = 0

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether any failpoint is armed."""
        return bool(self._points)

    @property
    def spec(self) -> str:
        """The spec string the registry was configured with."""
        return self._spec

    @property
    def seed(self) -> int:
        return self._seed

    def configure(self, spec: str, seed: int = 0, salt: int = 0) -> None:
        """Arm the failpoints named by ``spec`` (replacing any prior set)."""
        points: Dict[str, _Failpoint] = {}
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            name, separator, action = part.partition("=")
            name = name.strip()
            if not separator or not name:
                raise FaultSpecError(
                    f"failpoint entry {part!r} is not of the form name=action"
                )
            if name in points:
                raise FaultSpecError(f"failpoint {name!r} specified twice")
            points[name] = _parse_point(name, action.strip())
        self._points = points
        self._spec = spec
        self._seed = seed
        self._salt = salt
        for point in points.values():
            point.reseed(seed, salt)

    def configure_from_env(self, environ=os.environ) -> bool:
        """Arm from ``REPRO_FAILPOINTS``; ``False`` when the variable is unset."""
        spec = environ.get(ENV_SPEC)
        if not spec:
            return False
        seed_text = environ.get(ENV_SEED, "0")
        try:
            seed = int(seed_text)
        except ValueError:
            raise FaultSpecError(
                f"{ENV_SEED}={seed_text!r} is not an integer"
            ) from None
        self.configure(spec, seed=seed)
        return True

    def clear(self) -> None:
        """Disarm every failpoint."""
        self._points = {}
        self._spec = ""

    def reseed(self, salt: int) -> None:
        """Re-derive every RNG stream with ``salt`` mixed in, resetting counters.

        Called at worker startup so each worker process — and each
        *generation* of a respawned worker — walks its own deterministic
        trigger schedule instead of replaying the parent's.
        """
        self._salt = salt
        for point in self._points.values():
            point.reseed(self._seed, salt)

    def env_exports(self) -> Dict[str, str]:
        """Env vars that reproduce this configuration in a child process."""
        if not self.active:
            return {}
        return {ENV_SPEC: self._spec, ENV_SEED: str(self._seed)}

    def describe(self) -> Dict[str, Dict[str, object]]:
        """Per-failpoint hit/trigger counters (health and debugging)."""
        return {
            name: {
                "kind": point.kind,
                "hits": point.hits,
                "triggers": point.triggers,
            }
            for name, point in self._points.items()
        }

    # ------------------------------------------------------------------
    def fire(self, name: str) -> None:
        """Evaluate the failpoint ``name``; no-op unless armed and triggered."""
        point = self._points.get(name)
        if point is None:
            return
        point.hits += 1
        if point.limit is not None and point.triggers >= point.limit:
            return
        if point.hits < point.from_hit:
            return
        if point.probability < 1.0 and point.rng.random() >= point.probability:
            return
        point.triggers += 1
        if point.kind == "sleep":
            time.sleep(point.arg)
            return
        if point.kind == "error":
            raise FailpointError(name)
        # crash: die the way a SIGKILLed / OOM-reaped process dies — no
        # atexit hooks, no finally blocks, nothing flushed.
        if hasattr(signal, "SIGKILL"):
            os.kill(os.getpid(), signal.SIGKILL)
        os._exit(137)  # pragma: no cover - non-posix fallback


_REGISTRY = FaultRegistry()


def fire(name: str) -> None:
    """Evaluate failpoint ``name`` on the process registry (hot-path cheap).

    When nothing is armed this is one dict lookup on an empty dict —
    safe to compile into per-task and per-append paths.
    """
    if _REGISTRY._points:
        _REGISTRY.fire(name)


def configure(spec: str, seed: int = 0) -> None:
    """Arm the process registry from ``spec`` (see the module docstring)."""
    _REGISTRY.configure(spec, seed=seed)


def configure_from_env(environ=os.environ) -> bool:
    """Arm the process registry from ``REPRO_FAILPOINTS``, if set."""
    return _REGISTRY.configure_from_env(environ)


def clear() -> None:
    """Disarm the process registry."""
    _REGISTRY.clear()


def active() -> bool:
    """Whether the process registry has any armed failpoint."""
    return _REGISTRY.active


def env_exports() -> Dict[str, str]:
    """Env vars that propagate the process registry to a child process."""
    return _REGISTRY.env_exports()


def describe() -> Dict[str, Dict[str, object]]:
    """The process registry's per-failpoint counters."""
    return _REGISTRY.describe()


def on_worker_start(worker_id: int, generation: int = 0) -> None:
    """Worker-process entry hook: inherit configuration, personalise RNGs.

    Under ``spawn``/``forkserver`` the fresh interpreter reads the env
    vars the pool exported; under ``fork`` the registry state was
    inherited directly.  Either way the RNG streams are re-derived with
    a ``(worker_id, generation)`` salt so workers — and respawned
    generations of the same worker — trigger on distinct schedules.
    """
    if not _REGISTRY.active:
        _REGISTRY.configure_from_env()
    if _REGISTRY.active:
        _REGISTRY.reseed(worker_id * 1_000_003 + generation)


# Subprocess harnesses set REPRO_FAILPOINTS before exec; arming at import
# means every entry point (the serve CLI, bench, pytest) honours it
# without explicit plumbing.  A malformed spec fails loudly here rather
# than silently running a chaos job with no chaos.
if os.environ.get(ENV_SPEC):
    _REGISTRY.configure_from_env()
