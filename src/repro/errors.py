"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by the package with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Base class for errors related to graph construction or access."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when a node identifier is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an edge is not present in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class DuplicateNodeError(GraphError, ValueError):
    """Raised when adding a node identifier that already exists."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} already exists in the graph")
        self.node = node


class InvalidWeightError(GraphError, ValueError):
    """Raised when an edge weight is negative, NaN, or not a number."""

    def __init__(self, weight: object) -> None:
        super().__init__(
            f"edge weight {weight!r} is invalid: weights must be finite and >= 0"
        )
        self.weight = weight


class GraphValidationError(GraphError, ValueError):
    """Raised when a graph fails a structural validation check."""


class QueryError(ReproError):
    """Base class for errors raised while evaluating queries."""


class InvalidQueryNodeError(QueryError, KeyError):
    """Raised when the query node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"query node {node!r} is not in the graph")
        self.node = node


class InvalidKError(QueryError, ValueError):
    """Raised when the requested result size ``k`` is invalid.

    Either ``k`` is not a positive integer, or (at the engine level) it
    exceeds the number of candidate nodes that could possibly be returned.
    """

    def __init__(self, k: object, reason: str = "") -> None:
        super().__init__(reason or f"k must be a positive integer, got {k!r}")
        self.k = k


def check_positive_k(k: object) -> None:
    """Raise :class:`InvalidKError` unless ``k`` is a positive ``int``.

    ``bool`` is rejected explicitly (it subclasses ``int``).  Shared by the
    engine facade and the low-level algorithm entry points so the layers
    cannot drift apart on what a legal ``k`` is.
    """
    if not is_positive_int(k):
        raise InvalidKError(k)


def is_positive_int(value: object) -> bool:
    """Whether ``value`` is a positive ``int`` (``bool`` excluded).

    The shared predicate behind every "must be a positive integer"
    validation — ``k`` values, worker counts, shard counts — so the
    definition cannot drift between layers.
    """
    return isinstance(value, int) and not isinstance(value, bool) and value >= 1


class IndexError_(ReproError):
    """Base class for hub-index related errors.

    The trailing underscore avoids shadowing the builtin :class:`IndexError`.
    """


class IndexParameterError(IndexError_, ValueError):
    """Raised when hub-index parameters (H, M, K) are inconsistent."""


class IndexCapacityError(IndexError_, ValueError):
    """Raised when a query requests ``k`` larger than the index capacity ``K``."""

    def __init__(self, k: int, capacity: int) -> None:
        super().__init__(
            f"requested k={k} exceeds the index capacity K={capacity}; "
            "rebuild the index with a larger K or query without the index"
        )
        self.k = k
        self.capacity = capacity


class BichromaticError(QueryError, ValueError):
    """Raised when bichromatic query constraints are violated."""


class CrossValidationError(ReproError, AssertionError):
    """Raised when an optimised algorithm disagrees with the naive baseline."""


class ParallelExecutionError(ReproError, RuntimeError):
    """Raised when sharded multiprocess query execution fails.

    Covers pool misuse (bad ``workers`` values, dispatch after shutdown,
    incompatible backends) and failures *reported* by a worker process
    (an exception escaped a shard; the original traceback is embedded in
    the message).  A worker that dies without reporting anything raises
    the :class:`WorkerCrashError` subclass instead.
    """


class WorkerCrashError(ParallelExecutionError):
    """Raised when a worker process died without reporting a result.

    The pool distinguishes a worker that *raised* (surfaced as
    :class:`ParallelExecutionError` with the remote traceback) from one
    that vanished — killed by a signal, the OOM reaper, or an interpreter
    abort.  ``worker_id`` and ``exitcode`` identify the casualty;
    ``positions`` (when the crash happened mid-batch) names the batch
    positions whose shards the dead worker was still holding, so callers
    know exactly which queries went unanswered.
    """

    def __init__(
        self,
        worker_id: int,
        exitcode: object,
        detail: str = "",
        positions=None,
    ) -> None:
        message = (
            f"worker {worker_id} crashed (exitcode {exitcode!r}) "
            "before returning its shard"
        )
        if positions is not None:
            message = (
                f"{message} (batch positions {sorted(positions)!r} were "
                "still assigned to it)"
            )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.worker_id = worker_id
        self.exitcode = exitcode
        self.positions = None if positions is None else tuple(positions)


class WorkerTimeoutError(ParallelExecutionError):
    """Raised when a batch blew its deadline with workers still holding shards.

    ``run_batch(timeout=...)`` polls the result queue against a
    monotonic deadline instead of forever; when the deadline passes, the
    pool kills the live-but-stuck workers (a hung worker would otherwise
    pin its shard until process exit), respawns them best-effort so the
    pool stays usable, and raises this.  ``worker_ids`` names the
    workers that were killed; ``positions`` the batch positions whose
    shards never came back.
    """

    def __init__(
        self,
        timeout: float,
        worker_ids=(),
        positions=None,
        detail: str = "",
    ) -> None:
        message = (
            f"parallel batch missed its {timeout:.3f}s deadline; workers "
            f"{sorted(worker_ids)!r} were still holding shards and were killed"
        )
        if positions is not None:
            message = (
                f"{message} (batch positions {sorted(positions)!r} went "
                "unanswered)"
            )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.timeout = timeout
        self.worker_ids = tuple(worker_ids)
        self.positions = None if positions is None else tuple(positions)


class FailpointError(ReproError, OSError):
    """Raised by an armed ``error``-action failpoint (:mod:`repro.faults`).

    Subclasses :class:`OSError` so injected I/O faults (journal fsync
    failures, ENOSPC-style write errors) travel through code paths
    exactly the way the real errno-carrying exceptions would.
    """

    def __init__(self, name: str, detail: str = "") -> None:
        message = f"failpoint {name!r} injected a fault"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.failpoint = name


class ServeError(ReproError):
    """Base class for errors raised by the :mod:`repro.serve` layer."""


class ServeConnectionError(ServeError, ConnectionError):
    """Raised client-side when the connection failed mid-request.

    Wraps the bare :class:`OSError` a dead socket produces into the
    repro hierarchy (it still *is* a :class:`ConnectionError`, so
    existing ``except OSError`` call sites keep working).  The request
    may or may not have reached the server — queries are idempotent
    reads, so :class:`~repro.serve.client.ServeClient`'s opt-in
    ``retries=`` knob reconnects and retries on it.
    """


class JournalCorruptionError(ServeError, ValueError):
    """Raised when a learned-index journal is corrupted beyond its tail.

    A *torn tail* — the one partially-written record a kill -9 mid-append
    can leave — is healed silently (the journal truncates back to its
    last complete record).  This error means something worse: a bad
    header, a CRC-mismatched record *followed by more data*, or an
    undecodable payload behind a valid CRC — corruption that replaying
    past would silently drop durable learning.
    """


class ProtocolError(ServeError, ValueError):
    """Raised when a serve-protocol frame is malformed or oversized."""


class ServerOverloadedError(ServeError, RuntimeError):
    """Raised client-side when the server sheds the request (backpressure).

    The server's admission queue was full; the request was rejected
    *before* any work was done, so retrying after a backoff is safe.
    """


class DatasetError(ReproError):
    """Raised when a synthetic dataset cannot be generated or loaded."""


class WorkloadError(ReproError):
    """Raised when an experiment workload cannot be constructed."""
