"""Reproduction of reverse k-ranks query processing on graphs.

The package is organised bottom-up:

* :mod:`repro.graph` — weighted graph substrate, builders, partitions;
* :mod:`repro.traversal` — Dijkstra variants, graph k-NN, exact ranks;
* :mod:`repro.centrality` — degree / closeness measures for hub selection;
* :mod:`repro.core` — the paper's query algorithms and the engine facade.
"""

from repro._version import __version__

__all__ = ["__version__"]
