"""Addressable binary min-heap with decrease-key.

The paper's pseudo-code keeps a priority queue ``Q`` of nodes keyed by their
tentative distance, and *updates* the key of a node already in the queue when
a shorter path is found (``if t ∈ Q and t.dis > dis then t.dis ← dis``).
Python's :mod:`heapq` does not support decrease-key directly, so this module
implements a classic index-tracked binary heap.

The implementation favours clarity over micro-optimisation but is still
O(log n) per operation, which is what the asymptotic analysis of the paper
assumes.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["AddressableHeap"]

K = TypeVar("K", bound=Hashable)


class AddressableHeap(Generic[K]):
    """Binary min-heap over ``(priority, item)`` pairs with decrease-key.

    Items must be hashable and unique within the heap.  Ties on priority are
    broken by insertion order, which makes traversal order deterministic for
    a fixed input graph — important for reproducible experiments.

    Examples
    --------
    >>> heap = AddressableHeap()
    >>> heap.push("a", 3.0)
    >>> heap.push("b", 1.0)
    >>> heap.decrease_key("a", 0.5)
    True
    >>> heap.pop()
    ('a', 0.5)
    >>> heap.pop()
    ('b', 1.0)
    """

    __slots__ = ("_entries", "_positions", "_counter")

    def __init__(self) -> None:
        # Each entry is [priority, tie_breaker, item].
        self._entries: List[List] = []
        self._positions: Dict[K, int] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: K) -> bool:
        return item in self._positions

    def __iter__(self) -> Iterator[K]:
        """Iterate over items currently in the heap (unspecified order)."""
        return iter(self._positions)

    # ------------------------------------------------------------------
    def push(self, item: K, priority: float) -> None:
        """Insert ``item`` with ``priority``.

        Raises
        ------
        ValueError
            If the item is already in the heap (use :meth:`decrease_key` or
            :meth:`push_or_decrease` instead).
        """
        if item in self._positions:
            raise ValueError(f"item {item!r} is already in the heap")
        entry = [priority, self._counter, item]
        self._counter += 1
        self._entries.append(entry)
        index = len(self._entries) - 1
        self._positions[item] = index
        self._sift_up(index)

    def pop(self) -> Tuple[K, float]:
        """Remove and return the ``(item, priority)`` pair with smallest priority."""
        if not self._entries:
            raise IndexError("pop from an empty heap")
        top = self._entries[0]
        last = self._entries.pop()
        del self._positions[top[2]]
        if self._entries:
            self._entries[0] = last
            self._positions[last[2]] = 0
            self._sift_down(0)
        return top[2], top[0]

    def peek(self) -> Tuple[K, float]:
        """Return (without removing) the smallest ``(item, priority)`` pair."""
        if not self._entries:
            raise IndexError("peek into an empty heap")
        top = self._entries[0]
        return top[2], top[0]

    def priority(self, item: K) -> float:
        """Current priority of ``item``; raises ``KeyError`` if absent."""
        index = self._positions[item]
        return self._entries[index][0]

    def get_priority(self, item: K) -> Optional[float]:
        """Current priority of ``item`` or ``None`` if absent."""
        index = self._positions.get(item)
        if index is None:
            return None
        return self._entries[index][0]

    def decrease_key(self, item: K, priority: float) -> bool:
        """Lower the priority of ``item`` to ``priority``.

        Returns ``True`` if the priority was lowered, ``False`` if the new
        priority is not smaller than the current one (no change is made).
        """
        index = self._positions[item]
        if priority >= self._entries[index][0]:
            return False
        self._entries[index][0] = priority
        self._sift_up(index)
        return True

    def push_or_decrease(self, item: K, priority: float) -> bool:
        """Insert ``item`` or lower its priority, whichever applies.

        Returns ``True`` if the heap changed (new item, or key decreased).
        This is the exact operation the paper's pseudo-code performs on ``Q``.
        """
        if item in self._positions:
            return self.decrease_key(item, priority)
        self.push(item, priority)
        return True

    def remove(self, item: K) -> float:
        """Remove ``item`` from the heap, returning its priority."""
        index = self._positions.pop(item)
        entry = self._entries[index]
        last = self._entries.pop()
        if index < len(self._entries):
            self._entries[index] = last
            self._positions[last[2]] = index
            self._sift_down(index)
            self._sift_up(index)
        return entry[0]

    def clear(self) -> None:
        """Remove every item."""
        self._entries.clear()
        self._positions.clear()

    # ------------------------------------------------------------------
    # Heap maintenance
    # ------------------------------------------------------------------
    def _less(self, i: int, j: int) -> bool:
        return self._entries[i][:2] < self._entries[j][:2]

    def _swap(self, i: int, j: int) -> None:
        self._entries[i], self._entries[j] = self._entries[j], self._entries[i]
        self._positions[self._entries[i][2]] = i
        self._positions[self._entries[j][2]] = j

    def _sift_up(self, index: int) -> None:
        while index > 0:
            parent = (index - 1) // 2
            if self._less(index, parent):
                self._swap(index, parent)
                index = parent
            else:
                break

    def _sift_down(self, index: int) -> None:
        size = len(self._entries)
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            if left < size and self._less(left, smallest):
                smallest = left
            if right < size and self._less(right, smallest):
                smallest = right
            if smallest == index:
                break
            self._swap(index, smallest)
            index = smallest

    # ------------------------------------------------------------------
    def check_invariant(self) -> bool:
        """Verify the heap property (used by the property-based tests)."""
        size = len(self._entries)
        for index in range(size):
            left = 2 * index + 1
            right = left + 1
            if left < size and self._less(left, index):
                return False
            if right < size and self._less(right, index):
                return False
        for item, position in self._positions.items():
            if self._entries[position][2] != item:
                return False
        return True
