"""Shortest-path traversal substrate.

Everything the reverse k-ranks algorithms need from "Dijkstra's algorithm"
lives here:

* :class:`~repro.traversal.heap.AddressableHeap` — a binary min-heap with
  decrease-key, the priority queue ``Q`` of the paper's pseudo-code;
* :class:`~repro.traversal.int_heap.IntHeap` — its array-backed twin over
  dense int keys, used by the CSR-specialised loops;
* :class:`~repro.traversal.arena.ScratchArena` — epoch-stamped reusable
  scratch memory (heaps, settled sets, dense bound lists) the engines
  thread through every query instead of reallocating per query;
* :mod:`~repro.traversal.csr_sds` — the CSR index-space SDS-tree +
  refinement pipeline (dispatched to by :mod:`repro.core.framework`);
* :mod:`~repro.traversal.dijkstra` — full, bounded and *lazy* (incremental)
  single-source shortest path searches;
* :mod:`~repro.traversal.knn` — top-k nearest nodes (graph k-NN);
* :mod:`~repro.traversal.rank` — the exact ``Rank(s, t)`` definition used as
  ground truth by the tests and the naive baseline.
"""

from repro.traversal.arena import EpochStamps, ScratchArena
from repro.traversal.heap import AddressableHeap
from repro.traversal.int_heap import IntHeap
from repro.traversal.dijkstra import (
    DijkstraSearch,
    shortest_path_distances,
    shortest_path_tree,
    distance_between,
)
from repro.traversal.sssp import ShortestPathTree
from repro.traversal.knn import k_nearest_nodes
from repro.traversal.rank import exact_rank, rank_row, rank_stream, rank_matrix
from repro.traversal.csr_ops import (
    compact_distance_map,
    compact_exact_rank,
    compact_rank_stream,
    compact_shortest_path_tree,
)

__all__ = [
    "AddressableHeap",
    "EpochStamps",
    "IntHeap",
    "ScratchArena",
    "DijkstraSearch",
    "ShortestPathTree",
    "shortest_path_distances",
    "shortest_path_tree",
    "distance_between",
    "k_nearest_nodes",
    "exact_rank",
    "rank_row",
    "rank_stream",
    "rank_matrix",
    "compact_distance_map",
    "compact_exact_rank",
    "compact_rank_stream",
    "compact_shortest_path_tree",
]
