"""CSR index-space specialisation of the SDS-tree filter-and-refine pipeline.

This is the hot-loop twin of :class:`repro.core.framework.SDSTreeSearch`
plus :func:`repro.core.refinement.refine_rank`: the same traversal, bound
checks and bounded refinements, but running over the flat
:class:`~repro.graph.csr.CompactGraph` adjacency buffers with integer node
indexes and an :class:`~repro.traversal.int_heap.IntHeap` frontier — no
node-id hashing, no per-neighbour generator frames, no dict-of-dict
adjacency walks.  :meth:`SDSTreeSearch.run` dispatches here automatically
when the traversed graph is compact (or a compact ``backend`` compilation
of it is supplied); node identifiers are translated to CSR indexes once at
query entry and back only at the few boundaries that leave index space
(result-set offers and hub-index reads/writes).

All working memory is drawn from an epoch-stamped
:class:`~repro.traversal.arena.ScratchArena` (the caller's — normally the
engine's, reused across every query it answers — or a private one when
none is supplied): the frontier heaps, the settled/notified sets and the
three dense Theorem-2 bound lists live in the arena, and a new query or
refinement claims them with an O(1) epoch bump instead of O(n)
reallocation.  Values written in an earlier epoch are invisible — reads
fall back to exactly the defaults a fresh allocation would hold — so
arena reuse is behaviour-preserving by construction.

Exactness
---------
The traversal is a *transcription*, not a re-derivation: every decision the
dict-backed framework makes is made here in the same order on the same IEEE
doubles.  Three properties guarantee that:

* :class:`IntHeap` breaks priority ties by insertion order and preserves a
  key's insertion counter across ``decrease_key``, exactly like
  :class:`~repro.traversal.heap.AddressableHeap`, so nodes pop in the same
  order (reused heaps keep counting, which preserves relative insertion
  order within a search — the only thing ties compare);
* :class:`CompactGraph` compiles adjacency rows in the source graph's
  iteration order, so neighbours relax in the same order and tentative
  distances are produced by the same float additions;
* the bound bookkeeping (parent rank, tree height, ``lcount``) and the
  refinement's tie-group arithmetic mirror the originals statement by
  statement, with epoch-guarded reads supplying the originals' defaults.

Consequently ranks, refinement counts and every other
:class:`~repro.core.types.QueryStats` counter are bit-identical between the
two backends — the parity suite asserts exactly this, and the scratch-arena
suite additionally asserts reuse-vs-fresh identity.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from repro.traversal.arena import ScratchArena

NodeId = Hashable
Predicate = Callable[[NodeId], bool]

__all__ = ["CompactSDSTreeSearch"]

#: Mirrors :data:`repro.core.types.PRUNED` without importing the core layer
#: at module scope (traversal sits below core in the layering).
_PRUNED = -1


class CompactSDSTreeSearch:
    """One reverse k-ranks query evaluated on CSR buffers.

    Constructed by :meth:`repro.core.framework.SDSTreeSearch.run`; mutates
    the caller's collector and stats in place so result assembly and
    labelling stay in one place.  All parameters are pre-resolved by the
    caller (bound activation flags instead of a ``BoundSet``, the query as
    a node id, predicates over node ids).  ``arena`` supplies the reusable
    scratch memory; omit it to allocate a private arena for this query.
    """

    __slots__ = (
        "_csr",
        "_query_node",
        "_query_index",
        "_collector",
        "_stats",
        "_index",
        "_use_parent",
        "_height_active",
        "_count_active",
        "_candidate_mask",
        "_counted_mask",
        "_rev_offsets",
        "_rev_endpoints",
        "_rev_weights",
        "_rev_rows",
        "_fwd_offsets",
        "_fwd_endpoints",
        "_fwd_weights",
        "_fwd_rows",
        "_arena",
        "_parent_bound",
        "_height_bound",
        "_lcount",
        "_bound_stamps",
        "_bound_epoch",
        "_lcount_stamps",
        "_lcount_epoch",
    )

    def __init__(
        self,
        csr,
        query: NodeId,
        collector,
        stats,
        index=None,
        use_parent: bool = False,
        height_active: bool = False,
        count_active: bool = False,
        candidate: Optional[Predicate] = None,
        counted: Optional[Predicate] = None,
        candidate_mask: Optional[bytearray] = None,
        counted_mask: Optional[bytearray] = None,
        arena: Optional[ScratchArena] = None,
    ) -> None:
        self._csr = csr
        self._query_node = query
        self._query_index = csr.index_of(query)
        self._collector = collector
        self._stats = stats
        self._index = index
        self._use_parent = use_parent
        self._height_active = height_active
        self._count_active = count_active

        # Predicates are evaluated once per node into flat masks; they are
        # pure membership tests (bichromatic partitions), so eager
        # evaluation cannot change their answers.  Callers that answer many
        # queries against one compilation (the engine) pass the masks in
        # pre-built instead — the predicates then serve only as the
        # fallback, and the O(n) evaluation is paid once per graph version
        # rather than once per query.  Masks are read-only here, so
        # sharing them across queries is safe.
        nodes = csr.node_ids
        if candidate_mask is not None:
            if len(candidate_mask) != len(nodes):
                raise ValueError(
                    "candidate mask length does not match the compilation "
                    f"({len(candidate_mask)} vs {len(nodes)} nodes)"
                )
            self._candidate_mask = candidate_mask
        else:
            self._candidate_mask = (
                None
                if candidate is None
                else bytearray(1 if candidate(node) else 0 for node in nodes)
            )
        if counted_mask is not None:
            if len(counted_mask) != len(nodes):
                raise ValueError(
                    "counted mask length does not match the compilation "
                    f"({len(counted_mask)} vs {len(nodes)} nodes)"
                )
            self._counted_mask = counted_mask
        else:
            self._counted_mask = (
                None
                if counted is None
                else bytearray(1 if counted(node) else 0 for node in nodes)
            )

        # The SDS-tree grows towards q, i.e. over in-adjacency; refinements
        # run outwards from each candidate, i.e. over out-adjacency.
        self._rev_offsets, self._rev_endpoints, self._rev_weights = csr.in_csr()
        self._fwd_offsets, self._fwd_endpoints, self._fwd_weights = csr.out_csr()
        # Delta-overlay side-tables (None on plain compilations): full
        # replacement rows keyed by node index, consulted before the frozen
        # buffers.  Rows enumerate neighbours in the same order a recompile
        # would, so the overlay path stays bit-identical to it.
        self._rev_rows = csr.overlay_in
        self._fwd_rows = csr.overlay_out

        num_nodes = csr.num_nodes
        if arena is None:
            arena = ScratchArena(num_nodes)
        else:
            arena.ensure_capacity(num_nodes)
        arena.queries_served += 1
        self._arena = arena
        # Epoch-guarded twins of the framework's per-node dicts: a read
        # whose stamp is not this query's epoch yields the default the
        # framework's .get() calls fall back to (0.0 / 1 / 0).  Parent and
        # height are always written together, so they share one stamp
        # table; lcount is written on a different schedule (inside
        # refinements) and gets its own.
        self._bound_epoch = arena.bound_stamps.advance()
        self._bound_stamps = arena.bound_stamps.stamps
        self._lcount_epoch = arena.lcount_stamps.advance()
        self._lcount_stamps = arena.lcount_stamps.stamps
        self._parent_bound = arena.parent_bound
        self._height_bound = arena.height_bound
        self._lcount = arena.lcount

    # ------------------------------------------------------------------
    # SDS-tree traversal (Dijkstra towards q over the in-adjacency rows)
    # ------------------------------------------------------------------
    def traverse(self) -> None:
        """Run the traversal, mutating the shared collector and stats."""
        query_index = self._query_index
        rev_offsets = self._rev_offsets
        rev_endpoints = self._rev_endpoints
        rev_weights = self._rev_weights
        rev_rows = self._rev_rows
        parent_bound = self._parent_bound
        height_bound = self._height_bound
        bound_stamps = self._bound_stamps
        bound_epoch = self._bound_epoch
        counted_mask = self._counted_mask
        stats = self._stats

        arena = self._arena
        heap = arena.acquire_tree_heap()
        settled_epoch = arena.tree_settled.advance()
        settled = arena.tree_settled.stamps
        heap.push(query_index, 0.0)
        heap_pop = heap.pop
        heap_push_or_decrease = heap.push_or_decrease
        process_candidate = self._process_candidate
        tree_pops = 0
        tree_pushes = 0

        while heap:
            node, distance = heap_pop()
            settled[node] = settled_epoch
            tree_pops += 1

            if node == query_index:
                child_height = 1
                child_parent_bound = 0.0
            else:
                expand_bound = process_candidate(node, distance)
                if expand_bound is None:
                    continue
                base_height = (
                    height_bound[node]
                    if bound_stamps[node] == bound_epoch
                    else 1
                )
                child_height = base_height + (
                    1 if counted_mask is None or counted_mask[node] else 0
                )
                child_parent_bound = expand_bound

            row = rev_rows.get(node) if rev_rows is not None else None
            if row is None:
                endpoints, edge_weights = rev_endpoints, rev_weights
                start, stop = rev_offsets[node], rev_offsets[node + 1]
            else:
                endpoints, edge_weights = row
                start, stop = 0, len(endpoints)
            for position in range(start, stop):
                neighbor = endpoints[position]
                if settled[neighbor] == settled_epoch:
                    continue
                if heap_push_or_decrease(
                    neighbor, distance + edge_weights[position]
                ):
                    tree_pushes += 1
                    height_bound[neighbor] = child_height
                    parent_bound[neighbor] = child_parent_bound
                    bound_stamps[neighbor] = bound_epoch

        stats.tree_pops += tree_pops
        stats.tree_pushes += tree_pushes

    # ------------------------------------------------------------------
    # Candidate processing (mirror of SDSTreeSearch._process_candidate)
    # ------------------------------------------------------------------
    def _process_candidate(self, node: int, distance: float) -> Optional[float]:
        candidate_mask = self._candidate_mask
        is_candidate = candidate_mask is None or bool(candidate_mask[node])
        collector = self._collector
        stats = self._stats
        index = self._index
        k_rank = collector.k_rank

        node_id = None
        if is_candidate and index is not None:
            node_id = self._csr.node_at(node)
            known = index.known_rank(node_id, self._query_node)
            if known is not None:
                stats.answered_by_index += 1
                collector.offer(node_id, known)
                if known <= collector.k_rank:
                    return float(known)
                return None

        lower_bound, winner = self._lower_bound(node, node_id)
        if winner is not None:
            stats.record_bound_win(winner)

        if not is_candidate:
            if lower_bound >= k_rank:
                stats.pruned_by_bound += 1
                return None
            parent = (
                self._parent_bound[node]
                if self._bound_stamps[node] == self._bound_epoch
                else 0.0
            )
            return parent if parent > lower_bound else lower_bound

        if lower_bound >= k_rank:
            if winner == "index":
                stats.pruned_by_check_dictionary += 1
            else:
                stats.pruned_by_bound += 1
            return None

        rank = self._refine(node, distance, k_rank)
        if rank is None:
            return None
        collector.offer(self._csr.node_at(node), rank)
        return float(rank)

    def _lower_bound(self, node: int, node_id) -> "tuple[float, Optional[str]]":
        """Theorem-2 lower bound with the framework's winner attribution.

        ``node_id`` is the already-translated identifier when the caller
        has one (indexed mode), else ``None`` and translated on demand.
        """
        best = None
        winner = None
        bound_current = self._bound_stamps[node] == self._bound_epoch
        if self._use_parent:
            best = self._parent_bound[node] if bound_current else 0.0
            winner = "parent"
        if self._height_active:
            value = float(self._height_bound[node] if bound_current else 1)
            if best is None or value > best:
                best = value
                winner = "height"
        if self._count_active:
            value = float(
                self._lcount[node]
                if self._lcount_stamps[node] == self._lcount_epoch
                else 0
            )
            if best is None or value > best:
                best = value
                winner = "count"
        if self._index is not None:
            if node_id is None:
                node_id = self._csr.node_at(node)
            check_value = self._index.check_value(node_id)
            if check_value is not None:
                value = float(check_value)
                if best is None or value > best:
                    best = value
                    winner = "index"
        if best is None:
            return 0.0, None
        return best, winner

    # ------------------------------------------------------------------
    # Bounded rank refinement (mirror of refinement.refine_rank plus the
    # framework's _refine wiring, fused into one index-space loop)
    # ------------------------------------------------------------------
    def _refine(self, source: int, radius: float, k_rank: float) -> Optional[int]:
        stats = self._stats
        stats.rank_refinements += 1
        csr = self._csr
        index = self._index
        fwd_offsets = self._fwd_offsets
        fwd_endpoints = self._fwd_endpoints
        fwd_weights = self._fwd_weights
        fwd_rows = self._fwd_rows
        counted_mask = self._counted_mask
        lcount = self._lcount
        lcount_stamps = self._lcount_stamps
        lcount_epoch = self._lcount_epoch
        query_index = self._query_index
        node_at = csr.node_at
        source_id = node_at(source) if index is not None else None

        arena = self._arena
        heap = arena.acquire_refine_heap()
        heap.push(source, 0.0)
        heap_pop = heap.pop
        heap_push_or_decrease = heap.push_or_decrease
        settled_epoch = arena.refine_settled.advance()
        settled = arena.refine_settled.stamps
        settled_count = 0
        # Nodes already counted into lcount; a node may only cross below
        # the radius via a later decrease-key and must count exactly once.
        if self._count_active:
            notified_epoch = arena.refine_notified.advance()
            notified = arena.refine_notified.stamps
        else:
            notified = None

        closer_counted = 0
        tie_counted = 0
        previous_distance: Optional[float] = None
        rank = _PRUNED

        while heap:
            node, distance = heap_pop()
            settled[node] = settled_epoch
            settled_count += 1

            if node != source:
                if previous_distance is None or distance > previous_distance:
                    closer_counted += tie_counted
                    tie_counted = 0
                    previous_distance = distance
                    if closer_counted + 1 > k_rank:
                        break
                node_rank = closer_counted + 1
                if index is not None:
                    index.record_rank(source_id, node_at(node), node_rank)
                if node == query_index:
                    rank = node_rank
                    break
                if counted_mask is None or counted_mask[node]:
                    tie_counted += 1

            row = fwd_rows.get(node) if fwd_rows is not None else None
            if row is None:
                endpoints, edge_weights = fwd_endpoints, fwd_weights
                start, stop = fwd_offsets[node], fwd_offsets[node + 1]
            else:
                endpoints, edge_weights = row
                start, stop = 0, len(endpoints)
            if notified is None:
                for position in range(start, stop):
                    neighbor = endpoints[position]
                    if settled[neighbor] != settled_epoch:
                        heap_push_or_decrease(
                            neighbor, distance + edge_weights[position]
                        )
            else:
                for position in range(start, stop):
                    neighbor = endpoints[position]
                    if settled[neighbor] == settled_epoch:
                        continue
                    candidate = distance + edge_weights[position]
                    heap_push_or_decrease(neighbor, candidate)
                    if candidate < radius and notified[neighbor] != notified_epoch:
                        notified[neighbor] = notified_epoch
                        if lcount_stamps[neighbor] == lcount_epoch:
                            lcount[neighbor] += 1
                        else:
                            lcount[neighbor] = 1
                            lcount_stamps[neighbor] = lcount_epoch

        settled_excluding_source = settled_count - 1
        stats.refinement_nodes_settled += settled_excluding_source
        if index is not None:
            index.record_exploration(source_id, settled_excluding_source)
        if rank == _PRUNED:
            stats.refinements_pruned += 1
            return None
        return rank
