"""Dijkstra's algorithm in the three flavours the framework needs.

* :func:`shortest_path_tree` / :func:`shortest_path_distances` — the classic
  full single-source search (used by the naive baseline, the exact rank
  matrix, and exact closeness centrality);
* :class:`DijkstraSearch` — a *lazy*, resumable search that settles one node
  per call.  The SDS-tree construction, the hub-index construction (``M``
  steps from each hub) and the bounded rank refinements are all expressed on
  top of this primitive;
* :func:`distance_between` — an early-terminating point-to-point distance.

All variants accept any object exposing ``neighbor_items(node)`` and
``has_node(node)`` — i.e. both :class:`~repro.graph.Graph` and
:class:`~repro.graph.views.TransposeView`.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, Optional, Tuple

from repro.errors import NodeNotFoundError
from repro.traversal.csr_ops import (
    compact_distance_between,
    compact_distance_map,
    compact_shortest_path_tree,
)
from repro.traversal.heap import AddressableHeap
from repro.traversal.sssp import ShortestPathTree

NodeId = Hashable
AdjacencyFn = Callable[[NodeId], Iterable[Tuple[NodeId, float]]]

__all__ = [
    "DijkstraSearch",
    "shortest_path_tree",
    "shortest_path_distances",
    "distance_between",
]


class DijkstraSearch:
    """A resumable Dijkstra search that settles one node per :meth:`step`.

    The search maintains the standard Dijkstra state: a priority queue of
    frontier nodes keyed by tentative distance, a settled set with exact
    distances, and predecessor links.  Each call to :meth:`step` settles and
    returns the next-closest node.

    Parameters
    ----------
    graph:
        Any adjacency provider with ``neighbor_items(node)`` and
        ``has_node(node)``.
    source:
        The search source.
    radius:
        Optional exclusive distance bound: nodes whose tentative distance is
        ``>= radius`` are never pushed onto the frontier.  The rank
        refinement of the paper (Algorithm 2) uses ``radius = d(p, q)``.

    Notes
    -----
    ``heap_pushes`` / ``settled_count`` counters are exposed because the
    experimental section of the paper reports work in terms of such
    operation counts rather than wall-clock time alone.
    """

    __slots__ = (
        "_graph",
        "source",
        "_radius",
        "_heap",
        "_distances",
        "_predecessors",
        "_settled_order",
        "heap_pushes",
        "_exhausted",
    )

    def __init__(self, graph, source: NodeId, radius: Optional[float] = None) -> None:
        if not graph.has_node(source):
            raise NodeNotFoundError(source)
        self._graph = graph
        self.source = source
        self._radius = radius
        self._heap: AddressableHeap = AddressableHeap()
        self._distances: Dict[NodeId, float] = {}
        self._predecessors: Dict[NodeId, Optional[NodeId]] = {source: None}
        self._settled_order: list = []
        self.heap_pushes = 0
        self._exhausted = False
        self._heap.push(source, 0.0)

    # ------------------------------------------------------------------
    @property
    def settled_count(self) -> int:
        """Number of nodes settled so far."""
        return len(self._settled_order)

    @property
    def exhausted(self) -> bool:
        """Whether the search has no frontier left."""
        return self._exhausted or not self._heap

    def is_settled(self, node: NodeId) -> bool:
        """Whether ``node`` already has an exact distance."""
        return node in self._distances

    def distance(self, node: NodeId) -> float:
        """Exact distance of a settled node (``inf`` if not settled)."""
        return self._distances.get(node, float("inf"))

    def predecessor(self, node: NodeId) -> Optional[NodeId]:
        """Predecessor of ``node`` on its shortest path (``None`` for the source)."""
        return self._predecessors.get(node)

    def frontier_size(self) -> int:
        """Number of nodes currently on the frontier."""
        return len(self._heap)

    # ------------------------------------------------------------------
    def step(self) -> Optional[Tuple[NodeId, float]]:
        """Settle and return the next ``(node, distance)`` pair.

        Returns ``None`` when the search is exhausted (all reachable nodes
        within the radius have been settled).
        """
        if not self._heap:
            self._exhausted = True
            return None
        node, distance = self._heap.pop()
        self._distances[node] = distance
        self._settled_order.append(node)
        self._relax(node, distance)
        return node, distance

    def _relax(self, node: NodeId, distance: float) -> None:
        for neighbor, weight in self._graph.neighbor_items(node):
            if neighbor in self._distances:
                continue
            candidate = distance + weight
            if self._radius is not None and candidate >= self._radius:
                continue
            if self._heap.push_or_decrease(neighbor, candidate):
                self.heap_pushes += 1
                current = self._heap.get_priority(neighbor)
                if current == candidate:
                    self._predecessors[neighbor] = node

    # ------------------------------------------------------------------
    def run(self, max_settled: Optional[int] = None) -> ShortestPathTree:
        """Run the search (optionally up to ``max_settled`` settled nodes).

        Returns the accumulated :class:`ShortestPathTree`; the search can be
        resumed afterwards with further :meth:`step` / :meth:`run` calls as
        long as it is not exhausted.
        """
        while max_settled is None or self.settled_count < max_settled:
            if self.step() is None:
                break
        return self.as_tree()

    def run_until(self, target: NodeId) -> Optional[float]:
        """Run until ``target`` is settled; return its distance (or ``None``)."""
        if target in self._distances:
            return self._distances[target]
        while True:
            result = self.step()
            if result is None:
                return None
            node, distance = result
            if node == target:
                return distance

    def iter_settle(self) -> Iterator[Tuple[NodeId, float]]:
        """Iterate ``(node, distance)`` pairs in settling order until exhausted."""
        while True:
            result = self.step()
            if result is None:
                return
            yield result

    def as_tree(self) -> ShortestPathTree:
        """Snapshot the current state as a :class:`ShortestPathTree`."""
        return ShortestPathTree(
            source=self.source,
            distances=dict(self._distances),
            predecessors={
                node: self._predecessors.get(node) for node in self._distances
            },
            settled_order=list(self._settled_order),
            complete=self.exhausted,
        )


def shortest_path_tree(graph, source: NodeId) -> ShortestPathTree:
    """Full single-source shortest-path tree from ``source``.

    :class:`~repro.graph.csr.CompactGraph` inputs take the array-specialised
    fast path; distances (and therefore ranks) are identical either way.
    """
    if getattr(graph, "is_compact", False):
        return compact_shortest_path_tree(graph, source)
    search = DijkstraSearch(graph, source)
    return search.run()


def shortest_path_distances(graph, source: NodeId) -> Dict[NodeId, float]:
    """Exact distances from ``source`` to every reachable node."""
    if getattr(graph, "is_compact", False):
        return compact_distance_map(graph, source)
    return shortest_path_tree(graph, source).distances


def distance_between(graph, source: NodeId, target: NodeId) -> float:
    """Point-to-point shortest distance (``inf`` when unreachable).

    The search terminates as soon as ``target`` is settled.
    """
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if getattr(graph, "is_compact", False):
        return compact_distance_between(graph, source, target)
    search = DijkstraSearch(graph, source)
    result = search.run_until(target)
    return float("inf") if result is None else result
