"""Graph k-nearest-neighbour queries (top-k proximity sets).

``topk[p]`` — the set of the ``k`` nodes closest to ``p`` by shortest-path
distance — is the building block of both the top-k query analysis (Table 4,
agreement rate) and the reverse top-k query (Table 3).  The paper evaluates
these with a single-source shortest-path search truncated after ``k``
settled nodes, which is exactly what :func:`k_nearest_nodes` does.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.errors import InvalidKError, NodeNotFoundError
from repro.traversal.dijkstra import DijkstraSearch

NodeId = Hashable

__all__ = ["k_nearest_nodes", "k_nearest_sets"]


def k_nearest_nodes(graph, source: NodeId, k: int) -> List[Tuple[NodeId, float]]:
    """The ``k`` nodes nearest to ``source`` (excluding the source itself).

    Parameters
    ----------
    graph:
        Adjacency provider (``Graph`` or ``TransposeView``).
    source:
        Query node.
    k:
        Number of neighbours to return.  Fewer are returned when fewer than
        ``k`` nodes are reachable.

    Returns
    -------
    list of (node, distance)
        Sorted by increasing distance (ties broken by settling order).
    """
    if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
        raise InvalidKError(k)
    if not graph.has_node(source):
        raise NodeNotFoundError(source)

    search = DijkstraSearch(graph, source)
    result: List[Tuple[NodeId, float]] = []
    for node, distance in search.iter_settle():
        if node == source:
            continue
        result.append((node, distance))
        if len(result) >= k:
            break
    return result


def k_nearest_sets(graph, k: int) -> Dict[NodeId, List[Tuple[NodeId, float]]]:
    """``topk[p]`` for every node ``p`` of the graph.

    This is the all-nodes batch used by the agreement-rate analysis
    (Table 4) and by the reverse top-k query (Table 3).  The cost is
    O(|V|) truncated Dijkstra runs.
    """
    return {node: k_nearest_nodes(graph, node, k) for node in graph.nodes()}
