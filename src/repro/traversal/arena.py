"""Epoch-stamped scratch arena for the query hot loops.

Every reverse k-ranks query used to allocate its working memory from
scratch: one :class:`~repro.traversal.int_heap.IntHeap` and one settled
``bytearray`` for the SDS-tree traversal, another heap/``bytearray`` pair
*per rank refinement* (of which a query runs many), plus three dense
bound lists sized to ``n`` (parent rank, tree height, ``lcount``).  At
n ≫ 10⁴ that allocation traffic is a measurable fraction of query time —
exactly the "refinement scratch reuse" lever ROADMAP ranks next to result
batching.

:class:`ScratchArena` keeps all of that storage alive across queries and
replaces the per-query zeroing with *epoch stamps*:

* membership structures (settled sets, notified sets, bound validity)
  are ``bytearray`` stamp tables managed by :class:`EpochStamps` — an
  entry is "set" iff its stamp equals the current epoch, so starting a
  new query or refinement is a counter increment, not an O(n) clear.
  Stamps are one byte wide; the epoch wraps at 256, paying one amortised
  O(n) zeroing every 255 epochs instead of 8x the memory of a wider
  stamp;
* the dense bound lists keep their storage and are guarded by stamp
  tables: a value written in epoch ``e`` is invisible (reads fall back
  to the framework's defaults) from epoch ``e + 1`` on;
* the heaps (:class:`IntHeap` for the CSR loops,
  :class:`~repro.traversal.heap.AddressableHeap` plus a settled ``dict``
  for the generic dict-backed loops) are reused via their ``clear()``
  methods, which reset only the slots that were actually touched.
  Insertion counters deliberately keep counting across reuses — heap
  tie-breaking only ever compares entries of the *same* search, and
  there relative insertion order is unchanged, so results stay
  bit-identical to fresh-allocation runs.

One arena is owned per engine (and therefore per worker process, whose
private engine owns its own) and threaded through
:class:`~repro.traversal.csr_sds.CompactSDSTreeSearch` and
:func:`~repro.core.refinement.refine_rank`.  The arena grows (never
shrinks) when a larger graph arrives: stale stamps from the smaller
graph are invisible by construction, because new entries start at stamp
0 and valid epochs start at 1.

Arenas are *not* thread- or process-safe: they assume the engine's
existing one-query-at-a-time discipline (refinements nest inside a
traversal, which is why tree and refinement scratch are separate
members).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.traversal.heap import AddressableHeap
from repro.traversal.int_heap import IntHeap

__all__ = ["EpochStamps", "ScratchArena"]

#: One-byte stamps wrap here; ``advance`` zeroes the table and restarts at 1.
_EPOCH_LIMIT = 256


class EpochStamps:
    """A reusable membership set over dense int keys with O(1) epoch reset.

    ``stamps[key] == epoch`` means "key is in the set for the current
    epoch"; every other stamp value (older epochs, or 0 for never
    touched) means absent.  :meth:`advance` starts a new, empty epoch in
    O(1) — except once every 255 epochs, when the one-byte stamps wrap
    and the table is zeroed (amortised O(1) per epoch).

    Examples
    --------
    >>> stamps = EpochStamps(4)
    >>> epoch = stamps.advance()
    >>> stamps.stamps[2] = epoch
    >>> stamps.is_current(2)
    True
    >>> _ = stamps.advance()   # stale entries from the old epoch vanish
    >>> stamps.is_current(2)
    False
    """

    __slots__ = ("stamps", "epoch")

    def __init__(self, capacity: int = 0) -> None:
        self.stamps = bytearray(capacity)
        self.epoch = 0  # valid epochs are 1..255; stamp 0 = never touched

    @property
    def capacity(self) -> int:
        """Number of keys the stamp table covers."""
        return len(self.stamps)

    def grow(self, capacity: int) -> None:
        """Extend the table; new keys start unstamped (absent in any epoch)."""
        if capacity > len(self.stamps):
            self.stamps.extend(bytes(capacity - len(self.stamps)))

    def advance(self) -> int:
        """Start a new, empty epoch; returns the stamp value that marks
        membership in it.

        The table object is zeroed *in place* on wraparound, so callers
        may keep a local reference to :attr:`stamps` across epochs — but
        must call :meth:`advance` before caching it for a new epoch.
        """
        self.epoch += 1
        if self.epoch == _EPOCH_LIMIT:
            self.stamps[:] = bytes(len(self.stamps))
            self.epoch = 1
        return self.epoch

    def is_current(self, key: int) -> bool:
        """Whether ``key`` is stamped in the current epoch (test helper)."""
        return self.stamps[key] == self.epoch


class ScratchArena:
    """Reusable per-engine scratch memory for SDS-tree queries.

    Members are deliberately public: the hot loops bind them to locals
    once per query/refinement and index them directly.  Use the
    ``acquire_*`` methods to obtain a structure ready for a new search
    and :meth:`ensure_capacity` before binding anything for a graph.

    Attributes
    ----------
    tree_heap / refine_heap:
        :class:`IntHeap` frontiers for the SDS-tree traversal and the
        (nested) rank refinements.  Distinct objects because refinements
        run while the tree heap is live.
    tree_settled / refine_settled / refine_notified:
        :class:`EpochStamps` membership sets (settled nodes of either
        search; nodes already counted into ``lcount``).
    parent_bound / height_bound / lcount:
        The three dense Theorem-2 bound lists, guarded by
        ``bound_stamps`` (parent + height are always written together)
        and ``lcount_stamps`` respectively.
    """

    __slots__ = (
        "_capacity",
        "queries_served",
        "tree_heap",
        "refine_heap",
        "tree_settled",
        "refine_settled",
        "refine_notified",
        "bound_stamps",
        "lcount_stamps",
        "parent_bound",
        "height_bound",
        "lcount",
        "generic_tree_heap",
        "generic_refine_heap",
        "generic_refine_settled",
    )

    def __init__(self, capacity: int = 0) -> None:
        self._capacity = 0
        #: How many queries have drawn scratch from this arena (telemetry).
        self.queries_served = 0
        self.tree_heap = IntHeap(0)
        self.refine_heap = IntHeap(0)
        self.tree_settled = EpochStamps()
        self.refine_settled = EpochStamps()
        self.refine_notified = EpochStamps()
        self.bound_stamps = EpochStamps()
        self.lcount_stamps = EpochStamps()
        self.parent_bound: list = []
        self.height_bound: list = []
        self.lcount: list = []
        # Scratch for the generic (dict-backed) loops: node ids are
        # arbitrary hashables there, so reuse works by clearing, not by
        # epoch stamps.
        self.generic_tree_heap: AddressableHeap = AddressableHeap()
        self.generic_refine_heap: AddressableHeap = AddressableHeap()
        self.generic_refine_settled: Dict = {}
        if capacity:
            self.ensure_capacity(capacity)

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Number of dense node slots currently allocated."""
        return self._capacity

    def ensure_capacity(self, capacity: int) -> None:
        """Grow every dense structure to cover ``capacity`` node indexes.

        Growth never invalidates epochs: fresh slots carry stamp 0,
        which no live epoch matches, so they read as the defaults until
        first written.  The arena never shrinks.
        """
        if capacity <= self._capacity:
            return
        extra = capacity - self._capacity
        self.tree_heap.grow(capacity)
        self.refine_heap.grow(capacity)
        self.tree_settled.grow(capacity)
        self.refine_settled.grow(capacity)
        self.refine_notified.grow(capacity)
        self.bound_stamps.grow(capacity)
        self.lcount_stamps.grow(capacity)
        self.parent_bound.extend([0.0] * extra)
        self.height_bound.extend([1] * extra)
        self.lcount.extend([0] * extra)
        self._capacity = capacity

    # ------------------------------------------------------------------
    def acquire_tree_heap(self) -> IntHeap:
        """The SDS-tree frontier heap, emptied and ready for a new query."""
        heap = self.tree_heap
        heap.clear()
        return heap

    def acquire_refine_heap(self) -> IntHeap:
        """The refinement frontier heap, emptied for one refinement run.

        Refinements that abort early (``PRUNED``, or the query node
        settling) leave entries behind; clearing resets only the touched
        position slots, so acquisition stays proportional to the
        previous frontier, not to ``n``.
        """
        heap = self.refine_heap
        heap.clear()
        return heap

    def acquire_generic_tree_heap(self) -> AddressableHeap:
        """Reusable :class:`AddressableHeap` for the generic SDS traversal."""
        heap = self.generic_tree_heap
        heap.clear()
        return heap

    def acquire_generic_refine(self) -> Tuple[AddressableHeap, Dict]:
        """Reusable ``(heap, settled dict)`` pair for one generic refinement."""
        heap = self.generic_refine_heap
        heap.clear()
        settled = self.generic_refine_settled
        settled.clear()
        return heap, settled

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<ScratchArena capacity={self._capacity} "
            f"queries_served={self.queries_served}>"
        )
