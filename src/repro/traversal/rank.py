"""Exact ``Rank(s, t)`` computation (paper Definition 1).

``Rank(s, t)`` is one plus the number of nodes strictly closer to ``s`` than
``t`` is.  These functions compute it directly from full shortest-path
distances and serve as the ground truth for every optimised algorithm in
:mod:`repro.core` (the property-based tests compare against them).

They are intentionally simple and unoptimised — correctness reference first.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro.errors import NodeNotFoundError
from repro.traversal.dijkstra import shortest_path_distances

NodeId = Hashable

__all__ = ["exact_rank", "rank_row", "rank_matrix"]


def exact_rank(
    graph,
    source: NodeId,
    target: NodeId,
    counted: Optional[Callable[[NodeId], bool]] = None,
) -> float:
    """Exact ``Rank(source, target)`` per Definition 1 (or Definition 3).

    Parameters
    ----------
    graph:
        Adjacency provider.
    source:
        The node doing the ranking (``s``).
    target:
        The node being ranked (``t``).
    counted:
        Optional predicate restricting which nodes contribute to the rank.
        For bichromatic queries (Definition 3) this is "is a facility node";
        monochromatic queries count every node.

    Returns
    -------
    float
        ``1 + |{p != source, target : d(source, p) < d(source, target)}|``
        restricted to counted nodes, or ``math.inf`` when ``target`` is not
        reachable from ``source``.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)

    distances = shortest_path_distances(graph, source)
    if target not in distances:
        return float("inf")
    threshold = distances[target]
    closer = 0
    for node, distance in distances.items():
        if node == source or node == target:
            continue
        if counted is not None and not counted(node):
            continue
        if distance < threshold:
            closer += 1
    return closer + 1


def rank_row(
    graph,
    source: NodeId,
    counted: Optional[Callable[[NodeId], bool]] = None,
) -> Dict[NodeId, float]:
    """``Rank(source, t)`` for every node ``t`` reachable from ``source``.

    One full Dijkstra run is shared across all targets, so this is the
    efficient way to build whole rows of the rank matrix (Table 1).
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances = shortest_path_distances(graph, source)

    # Sort reachable nodes by distance; the rank of a node is 1 + the number
    # of counted nodes with strictly smaller distance.
    others = [
        (distance, node)
        for node, distance in distances.items()
        if node != source
    ]
    others.sort(key=lambda pair: pair[0])

    ranks: Dict[NodeId, float] = {}
    closer_counted = 0
    index = 0
    while index < len(others):
        # Process a tie group: all nodes at the same distance share the same
        # "number of strictly closer" count.
        tie_distance = others[index][0]
        group = []
        while index < len(others) and others[index][0] == tie_distance:
            group.append(others[index][1])
            index += 1
        for node in group:
            ranks[node] = closer_counted + 1
        for node in group:
            if counted is None or counted(node):
                closer_counted += 1
    return ranks


def rank_matrix(
    graph,
    counted: Optional[Callable[[NodeId], bool]] = None,
) -> Dict[NodeId, Dict[NodeId, float]]:
    """The full rank matrix ``{s: {t: Rank(s, t)}}`` (Table 1 of the paper).

    Only practical for small graphs; used by tests and the toy example.
    """
    return {node: rank_row(graph, node, counted=counted) for node in graph.nodes()}
