"""Exact ``Rank(s, t)`` computation (paper Definition 1).

``Rank(s, t)`` is one plus the number of nodes strictly closer to ``s`` than
``t`` is.  These functions compute it directly from full shortest-path
distances and serve as the ground truth for every optimised algorithm in
:mod:`repro.core` (the property-based tests compare against them).

They are intentionally simple and unoptimised — correctness reference first.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterator, Optional, Tuple

from repro.errors import NodeNotFoundError
from repro.traversal.csr_ops import compact_exact_rank, compact_rank_stream
from repro.traversal.dijkstra import DijkstraSearch, shortest_path_distances

NodeId = Hashable

__all__ = ["exact_rank", "rank_row", "rank_stream", "rank_matrix"]


def exact_rank(
    graph,
    source: NodeId,
    target: NodeId,
    counted: Optional[Callable[[NodeId], bool]] = None,
) -> float:
    """Exact ``Rank(source, target)`` per Definition 1 (or Definition 3).

    Parameters
    ----------
    graph:
        Adjacency provider.
    source:
        The node doing the ranking (``s``).
    target:
        The node being ranked (``t``).
    counted:
        Optional predicate restricting which nodes contribute to the rank.
        For bichromatic queries (Definition 3) this is "is a facility node";
        monochromatic queries count every node.

    Returns
    -------
    float
        ``1 + |{p != source, target : d(source, p) < d(source, target)}|``
        restricted to counted nodes, or ``math.inf`` when ``target`` is not
        reachable from ``source``.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if getattr(graph, "is_compact", False):
        # Array fast path; additionally early-exits when ``target`` settles.
        return compact_exact_rank(graph, source, target, counted=counted)

    distances = shortest_path_distances(graph, source)
    if target not in distances:
        return float("inf")
    threshold = distances[target]
    closer = 0
    for node, distance in distances.items():
        if node == source or node == target:
            continue
        if counted is not None and not counted(node):
            continue
        if distance < threshold:
            closer += 1
    return closer + 1


def rank_stream(
    graph,
    source: NodeId,
    counted: Optional[Callable[[NodeId], bool]] = None,
) -> Iterator[Tuple[NodeId, float, float]]:
    """Yield ``(node, distance, Rank(source, node))`` in settling order.

    One lazy Dijkstra run from ``source``; nodes settled at the same
    distance form a tie group and share the same "number of strictly
    closer counted nodes".  :func:`rank_row` and the hub-index
    construction both consume this stream (the bounded refinement keeps
    its own loop because of its ``kRank`` abort and radius-gated hooks);
    consumers may stop iterating at any point (e.g. after ``M`` nodes)
    and every rank yielded so far is exact.
    """
    if getattr(graph, "is_compact", False):
        return compact_rank_stream(graph, source, counted=counted)
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    return _rank_stream(graph, source, counted)


def _rank_stream(
    graph,
    source: NodeId,
    counted: Optional[Callable[[NodeId], bool]],
) -> Iterator[Tuple[NodeId, float, float]]:
    search = DijkstraSearch(graph, source)
    closer_counted = 0
    tie_counted = 0
    previous_distance: Optional[float] = None
    for node, distance in search.iter_settle():
        if node == source:
            continue
        if previous_distance is None or distance > previous_distance:
            closer_counted += tie_counted
            tie_counted = 0
            previous_distance = distance
        yield node, distance, closer_counted + 1
        if counted is None or counted(node):
            tie_counted += 1


def rank_row(
    graph,
    source: NodeId,
    counted: Optional[Callable[[NodeId], bool]] = None,
) -> Dict[NodeId, float]:
    """``Rank(source, t)`` for every node ``t`` reachable from ``source``.

    One full Dijkstra run is shared across all targets, so this is the
    efficient way to build whole rows of the rank matrix (Table 1).
    """
    return {node: rank for node, _, rank in rank_stream(graph, source, counted=counted)}


def rank_matrix(
    graph,
    counted: Optional[Callable[[NodeId], bool]] = None,
) -> Dict[NodeId, Dict[NodeId, float]]:
    """The full rank matrix ``{s: {t: Rank(s, t)}}`` (Table 1 of the paper).

    Only practical for small graphs; used by tests and the toy example.
    """
    return {node: rank_row(graph, node, counted=counted) for node in graph.nodes()}
