"""Array-specialised Dijkstra/SSSP/rank loops over :class:`CompactGraph`.

These are the hot-loop twins of :mod:`repro.traversal.dijkstra` and
:mod:`repro.traversal.rank`: same semantics, but the search runs over the
CSR buffers with integer node indexes, flat ``list`` distance tables and a
``heapq``-based lazy-deletion frontier instead of hashing node identifiers
through the addressable heap on every relaxation.  The public traversal
entry points dispatch here automatically when handed a graph with the
``is_compact`` marker.

Exactness
---------
The distances produced are bit-identical to the dict-backend searches: both
loops settle nodes in nondecreasing distance order and assign each settled
node the minimum over the same set of candidate sums ``d(u) + w(u, v)``
(computed from the same IEEE doubles), so the float result of the ``min``
is the same even though the tie order *within* an equal-distance group may
differ (heapq breaks ties by node index, the addressable heap by insertion
order).  Rank values only depend on strictly-closer tie groups, hence they
are identical as well — the cross-validation tests assert exactly this.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, Hashable, Iterator, Optional, Tuple

from repro.errors import NodeNotFoundError
from repro.traversal.sssp import ShortestPathTree

NodeId = Hashable

__all__ = [
    "compact_distance_map",
    "compact_shortest_path_tree",
    "compact_distance_between",
    "compact_rank_stream",
    "compact_exact_rank",
]

_INF = float("inf")


def _settle_stream(
    csr, source_index: int
) -> Iterator[Tuple[int, float, list]]:
    """Yield ``(index, distance, predecessors)`` in settling order.

    The predecessor list is the live internal table (index -> predecessor
    index or -1); callers that need it must copy or consume it before
    resuming iteration.

    Delta-overlays: when ``csr`` carries a mutation side-table
    (:class:`~repro.graph.overlay.OverlayGraph`, ``overlay_out`` not
    ``None``) the search dispatches to a row-aware twin; the common
    static-graph case pays exactly one attribute check.  Both loops relax
    each node's neighbours in the same enumeration order a from-scratch
    recompile would use (overlay rows are full rows extracted in source
    order), so distances, settle order and tie groups are bit-identical
    between the two paths.
    """
    rows = csr.overlay_out
    if rows is not None:
        return _settle_stream_overlay(csr, source_index, rows)
    return _settle_stream_base(csr, source_index)


def _settle_stream_base(
    csr, source_index: int
) -> Iterator[Tuple[int, float, list]]:
    offsets, endpoints, weights = csr.out_csr()
    num_nodes = csr.num_nodes
    distances = [_INF] * num_nodes
    predecessors = [-1] * num_nodes
    settled = bytearray(num_nodes)
    frontier = [(0.0, source_index)]
    distances[source_index] = 0.0

    while frontier:
        distance, node = heappop(frontier)
        if settled[node]:
            continue
        settled[node] = 1
        yield node, distance, predecessors
        for position in range(offsets[node], offsets[node + 1]):
            neighbor = endpoints[position]
            if settled[neighbor]:
                continue
            candidate = distance + weights[position]
            if candidate < distances[neighbor]:
                distances[neighbor] = candidate
                predecessors[neighbor] = node
                heappush(frontier, (candidate, neighbor))


def _settle_stream_overlay(
    csr, source_index: int, rows
) -> Iterator[Tuple[int, float, list]]:
    """Row-aware twin of :func:`_settle_stream_base`.

    Per settled node: one ``dict.get`` against the side-table selects the
    overlay row (a complete replacement) or the frozen base slice.
    """
    base_offsets, base_endpoints, base_weights = csr.out_csr()
    row_get = rows.get
    num_nodes = csr.num_nodes
    distances = [_INF] * num_nodes
    predecessors = [-1] * num_nodes
    settled = bytearray(num_nodes)
    frontier = [(0.0, source_index)]
    distances[source_index] = 0.0

    while frontier:
        distance, node = heappop(frontier)
        if settled[node]:
            continue
        settled[node] = 1
        yield node, distance, predecessors
        row = row_get(node)
        if row is None:
            endpoints, weights = base_endpoints, base_weights
            start, stop = base_offsets[node], base_offsets[node + 1]
        else:
            endpoints, weights = row
            start, stop = 0, len(endpoints)
        for position in range(start, stop):
            neighbor = endpoints[position]
            if settled[neighbor]:
                continue
            candidate = distance + weights[position]
            if candidate < distances[neighbor]:
                distances[neighbor] = candidate
                predecessors[neighbor] = node
                heappush(frontier, (candidate, neighbor))


def compact_distance_map(csr, source: NodeId) -> Dict[NodeId, float]:
    """Exact distances from ``source`` to every reachable node."""
    source_index = csr.index_of(source)
    node_at = csr.node_at
    return {
        node_at(index): distance
        for index, distance, _ in _settle_stream(csr, source_index)
    }


def compact_shortest_path_tree(csr, source: NodeId) -> ShortestPathTree:
    """Full single-source shortest-path tree from ``source``."""
    source_index = csr.index_of(source)
    node_at = csr.node_at
    distances: Dict[NodeId, float] = {}
    settled_order = []
    settled_indexes = []
    final_predecessors = None
    for index, distance, predecessors in _settle_stream(csr, source_index):
        node = node_at(index)
        distances[node] = distance
        settled_order.append(node)
        settled_indexes.append(index)
        final_predecessors = predecessors
    tree_predecessors: Dict[NodeId, Optional[NodeId]] = {}
    for node, index in zip(settled_order, settled_indexes):
        predecessor_index = final_predecessors[index]
        tree_predecessors[node] = (
            None if predecessor_index < 0 else node_at(predecessor_index)
        )
    return ShortestPathTree(
        source=source,
        distances=distances,
        predecessors=tree_predecessors,
        settled_order=settled_order,
        complete=True,
    )


def compact_distance_between(csr, source: NodeId, target: NodeId) -> float:
    """Point-to-point shortest distance (``inf`` when unreachable)."""
    source_index = csr.index_of(source)
    target_index = csr.index_of(target)
    for index, distance, _ in _settle_stream(csr, source_index):
        if index == target_index:
            return distance
    return _INF


def compact_rank_stream(
    csr,
    source: NodeId,
    counted: Optional[Callable[[NodeId], bool]] = None,
) -> Iterator[Tuple[NodeId, float, float]]:
    """Yield ``(node, distance, Rank(source, node))`` in settling order.

    The tie-group bookkeeping mirrors :func:`repro.traversal.rank.rank_stream`
    exactly; only the underlying search is array-specialised.
    """
    if not csr.has_node(source):
        raise NodeNotFoundError(source)
    return _compact_rank_stream(csr, source, counted)


def _compact_rank_stream(
    csr,
    source: NodeId,
    counted: Optional[Callable[[NodeId], bool]],
) -> Iterator[Tuple[NodeId, float, float]]:
    source_index = csr.index_of(source)
    node_at = csr.node_at
    closer_counted = 0
    tie_counted = 0
    previous_distance: Optional[float] = None
    for index, distance, _ in _settle_stream(csr, source_index):
        if index == source_index:
            continue
        if previous_distance is None or distance > previous_distance:
            closer_counted += tie_counted
            tie_counted = 0
            previous_distance = distance
        node = node_at(index)
        yield node, distance, closer_counted + 1
        if counted is None or counted(node):
            tie_counted += 1


def compact_exact_rank(
    csr,
    source: NodeId,
    target: NodeId,
    counted: Optional[Callable[[NodeId], bool]] = None,
) -> float:
    """Exact ``Rank(source, target)``, terminating when ``target`` settles."""
    if not csr.has_node(source):
        raise NodeNotFoundError(source)
    if not csr.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        # Matches the full-distance definition: nothing is strictly closer
        # to the source than the source itself.
        return 1
    for node, _, rank in _compact_rank_stream(csr, source, counted):
        if node == target:
            return rank
    return _INF
