"""Addressable binary min-heap over dense integer keys.

:class:`IntHeap` is the array-specialised twin of
:class:`~repro.traversal.heap.AddressableHeap` for searches that run in
CSR index space: keys are ints in ``[0, capacity)``, and the key -> heap
position mapping is an ``array('q')`` slot table instead of a dict, so no
key is ever hashed on the hot path.

Tie-breaking is **identical** to :class:`AddressableHeap`: ties on priority
are broken by insertion order, and :meth:`decrease_key` preserves a key's
original insertion counter.  This is load-bearing — the CSR-specialised
SDS-tree (:mod:`repro.traversal.csr_sds`) must settle nodes in exactly the
same order as the dict-backed framework so that ranks, refinement counts
and every other :class:`~repro.core.types.QueryStats` counter come out
bit-identical between the two backends.

The sift loops move a hole instead of swapping entries pairwise, and
compare ``(priority, counter)`` inline rather than through slice
allocations, which is where the pure-Python :class:`AddressableHeap`
spends most of its time.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Tuple

__all__ = ["IntHeap"]


class IntHeap:
    """Binary min-heap over int keys ``0 <= key < capacity`` with decrease-key.

    Parameters
    ----------
    capacity:
        Exclusive upper bound on keys (the number of CSR node indexes).
        The position table is allocated once, so construction is O(capacity)
        and every operation afterwards is O(log n) with no hashing.

    Examples
    --------
    >>> heap = IntHeap(4)
    >>> heap.push(0, 3.0)
    >>> heap.push(2, 1.0)
    >>> heap.decrease_key(0, 0.5)
    True
    >>> heap.pop()
    (0, 0.5)
    >>> heap.pop()
    (2, 1.0)
    """

    __slots__ = ("_entries", "_positions", "_counter", "_capacity")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = capacity
        # Each entry is [priority, insertion_counter, key].
        self._entries: List[list] = []
        # key -> heap position, -1 when absent.
        self._positions = array("q", [-1]) * capacity if capacity else array("q")
        self._counter = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """The exclusive key bound this heap was sized for."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, key: int) -> bool:
        return 0 <= key < self._capacity and self._positions[key] >= 0

    def _slot(self, key: int) -> int:
        """Position slot of ``key``; rejects negative keys.

        A bare ``self._positions[key]`` would let Python's negative
        indexing silently alias key ``-1`` to key ``capacity - 1`` and
        corrupt the table; keys above capacity already raise naturally.
        """
        if key < 0:
            raise IndexError(f"key {key!r} is outside [0, {self._capacity})")
        return self._positions[key]

    def __iter__(self) -> Iterator[int]:
        """Iterate over keys currently in the heap (unspecified order)."""
        return iter(entry[2] for entry in self._entries)

    # ------------------------------------------------------------------
    def push(self, key: int, priority: float) -> None:
        """Insert ``key`` with ``priority``.

        Raises
        ------
        ValueError
            If the key is already in the heap.
        IndexError
            If the key is outside ``[0, capacity)``.
        """
        if self._slot(key) >= 0:
            raise ValueError(f"key {key!r} is already in the heap")
        entry = [priority, self._counter, key]
        self._counter += 1
        self._entries.append(entry)
        self._sift_up(len(self._entries) - 1, entry)

    def pop(self) -> Tuple[int, float]:
        """Remove and return the ``(key, priority)`` pair with smallest priority."""
        entries = self._entries
        if not entries:
            raise IndexError("pop from an empty heap")
        top = entries[0]
        last = entries.pop()
        self._positions[top[2]] = -1
        if entries:
            self._sift_down(0, last)
        return top[2], top[0]

    def peek(self) -> Tuple[int, float]:
        """Return (without removing) the smallest ``(key, priority)`` pair."""
        if not self._entries:
            raise IndexError("peek into an empty heap")
        top = self._entries[0]
        return top[2], top[0]

    def get_priority(self, key: int) -> Optional[float]:
        """Current priority of ``key`` or ``None`` if absent."""
        position = self._slot(key)
        if position < 0:
            return None
        return self._entries[position][0]

    def decrease_key(self, key: int, priority: float) -> bool:
        """Lower the priority of ``key``; ``False`` when not a strict decrease.

        The key's original insertion counter is preserved, matching
        :meth:`AddressableHeap.decrease_key` tie semantics exactly.
        """
        position = self._slot(key)
        if position < 0:
            raise KeyError(key)
        entry = self._entries[position]
        if priority >= entry[0]:
            return False
        entry[0] = priority
        self._sift_up(position, entry)
        return True

    def push_or_decrease(self, key: int, priority: float) -> bool:
        """Insert ``key`` or lower its priority, whichever applies.

        Returns ``True`` if the heap changed (new key, or key decreased) —
        the exact operation the paper's pseudo-code performs on ``Q``, and
        the single call the CSR hot loops make per relaxation (one position
        lookup instead of a membership test plus a push/decrease pair).
        """
        if key < 0:
            raise IndexError(f"key {key!r} is outside [0, {self._capacity})")
        position = self._positions[key]
        if position < 0:
            entry = [priority, self._counter, key]
            self._counter += 1
            self._entries.append(entry)
            self._sift_up(len(self._entries) - 1, entry)
            return True
        entry = self._entries[position]
        if priority >= entry[0]:
            return False
        entry[0] = priority
        self._sift_up(position, entry)
        return True

    def clear(self) -> None:
        """Remove every key (resets only the touched position slots).

        The insertion counter deliberately keeps counting: tie-breaking
        only ever compares entries of the same search, where relative
        insertion order is what matters, so a cleared-and-reused heap
        pops in exactly the order a fresh one would.
        """
        positions = self._positions
        for entry in self._entries:
            positions[entry[2]] = -1
        self._entries.clear()

    def grow(self, capacity: int) -> None:
        """Raise the exclusive key bound (for scratch-arena reuse).

        Existing entries and position slots are untouched; new keys
        start absent.  Shrinking is not supported — a smaller capacity
        is simply ignored, matching the arena's grow-only contract.
        """
        if capacity > self._capacity:
            self._positions.extend([-1] * (capacity - self._capacity))
            self._capacity = capacity

    # ------------------------------------------------------------------
    # Heap maintenance (hole-based sifting; compares (priority, counter))
    # ------------------------------------------------------------------
    def _sift_up(self, index: int, entry: list) -> None:
        entries = self._entries
        positions = self._positions
        priority = entry[0]
        counter = entry[1]
        while index > 0:
            parent_index = (index - 1) >> 1
            parent = entries[parent_index]
            if priority < parent[0] or (
                priority == parent[0] and counter < parent[1]
            ):
                entries[index] = parent
                positions[parent[2]] = index
                index = parent_index
            else:
                break
        entries[index] = entry
        positions[entry[2]] = index

    def _sift_down(self, index: int, entry: list) -> None:
        entries = self._entries
        positions = self._positions
        size = len(entries)
        priority = entry[0]
        counter = entry[1]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            child_entry = entries[child]
            right = child + 1
            if right < size:
                right_entry = entries[right]
                if right_entry[0] < child_entry[0] or (
                    right_entry[0] == child_entry[0]
                    and right_entry[1] < child_entry[1]
                ):
                    child = right
                    child_entry = right_entry
            if child_entry[0] < priority or (
                child_entry[0] == priority and child_entry[1] < counter
            ):
                entries[index] = child_entry
                positions[child_entry[2]] = index
                index = child
            else:
                break
        entries[index] = entry
        positions[entry[2]] = index

    # ------------------------------------------------------------------
    def check_invariant(self) -> bool:
        """Verify the heap property and the position table (used by tests)."""
        entries = self._entries
        size = len(entries)
        for index in range(size):
            left = 2 * index + 1
            right = left + 1
            here = (entries[index][0], entries[index][1])
            if left < size and (entries[left][0], entries[left][1]) < here:
                return False
            if right < size and (entries[right][0], entries[right][1]) < here:
                return False
            if self._positions[entries[index][2]] != index:
                return False
        occupied = sum(1 for slot in self._positions if slot >= 0)
        return occupied == size
