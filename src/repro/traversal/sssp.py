"""Shortest-path tree result objects.

:class:`ShortestPathTree` stores the outcome of a (possibly partial) Dijkstra
search: settled distances, predecessor links and the order in which nodes
were settled.  The order matters for rank computations — the i-th settled
node is (modulo ties) the node with the i-th smallest distance from the
source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import NodeNotFoundError

NodeId = Hashable

__all__ = ["ShortestPathTree"]


@dataclass
class ShortestPathTree:
    """The (partial) result of a single-source shortest-path search.

    Attributes
    ----------
    source:
        The search source.
    distances:
        Mapping from settled node to its exact shortest-path distance.
    predecessors:
        Mapping from settled node to its predecessor on a shortest path
        from ``source`` (the source maps to ``None``).
    settled_order:
        Nodes in the order they were settled (popped from the heap).
    complete:
        ``True`` when the search exhausted the reachable part of the graph,
        ``False`` when it stopped early (bounded searches).
    """

    source: NodeId
    distances: Dict[NodeId, float] = field(default_factory=dict)
    predecessors: Dict[NodeId, Optional[NodeId]] = field(default_factory=dict)
    settled_order: List[NodeId] = field(default_factory=list)
    complete: bool = True

    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self.distances

    def __len__(self) -> int:
        return len(self.distances)

    def distance(self, node: NodeId) -> float:
        """Shortest distance from the source to ``node``.

        Returns ``math.inf`` for nodes not settled by the search (either
        unreachable, or beyond the bound of a bounded search).
        """
        return self.distances.get(node, float("inf"))

    def path_to(self, node: NodeId) -> List[NodeId]:
        """Reconstruct the node sequence of a shortest path ``source -> node``.

        Raises
        ------
        NodeNotFoundError
            If ``node`` was not settled by the search.
        """
        if node not in self.distances:
            raise NodeNotFoundError(node)
        path: List[NodeId] = []
        current: Optional[NodeId] = node
        while current is not None:
            path.append(current)
            current = self.predecessors.get(current)
        path.reverse()
        return path

    def depth(self, node: NodeId) -> int:
        """Number of edges on the shortest path from the source to ``node``."""
        return len(self.path_to(node)) - 1

    def nearest(self, count: int, include_source: bool = False) -> List[Tuple[NodeId, float]]:
        """The ``count`` nearest settled nodes as ``(node, distance)`` pairs.

        Parameters
        ----------
        count:
            Maximum number of nodes to return.
        include_source:
            Whether the source itself (distance 0) is included.
        """
        result: List[Tuple[NodeId, float]] = []
        for node in self.settled_order:
            if node == self.source and not include_source:
                continue
            result.append((node, self.distances[node]))
            if len(result) >= count:
                break
        return result

    def settled_nodes(self) -> Sequence[NodeId]:
        """Nodes settled by the search, in settling order."""
        return tuple(self.settled_order)
