"""Shared startup plumbing for the serve CLI, load generator and smoke jobs.

Turning a fixture spec (or a dataset file) into a warm, durable engine is
the same three steps everywhere — build the graph, load-or-build the
learned index through the :class:`~repro.serve.journal.DurableIndexStore`,
wrap an engine around it — so they live here once.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bench.workloads import (
    Workload,
    gnp_workload,
    grid_workload,
    lattice_workload,
    path_workload,
    powerlaw_workload,
)
from repro.core.engine import ReverseKRanksEngine
from repro.errors import ServeError
from repro.serve.journal import DurableIndexStore

__all__ = [
    "FIXTURE_FAMILIES",
    "parse_fixture",
    "prepare_engine",
]

#: Monochromatic fixture families servable out of the box (the
#: bichromatic family is excluded: the indexed algorithm — the one the
#: durable journal exists for — is monochromatic-only).
FIXTURE_FAMILIES = {
    "path": path_workload,
    "grid": grid_workload,
    "gnp": gnp_workload,
    "powerlaw": powerlaw_workload,
    "lattice": lattice_workload,
}


def parse_fixture(spec: str) -> Workload:
    """Build the workload named by a ``family[:size[:seed]]`` spec.

    ``size`` is the generator's leading size parameter (nodes for
    path/gnp/powerlaw, side length for grid/lattice); both it and
    ``seed`` default to the generator's own defaults.  Examples:
    ``gnp``, ``gnp:200``, ``powerlaw:300:7``.
    """
    parts = spec.split(":")
    family = parts[0]
    generator = FIXTURE_FAMILIES.get(family)
    if generator is None:
        raise ServeError(
            f"unknown fixture family {family!r}; "
            f"choose from {sorted(FIXTURE_FAMILIES)}"
        )
    if len(parts) > 3:
        raise ServeError(
            f"fixture spec {spec!r} has too many fields; "
            "expected family[:size[:seed]]"
        )
    kwargs = {}
    try:
        if len(parts) > 1 and parts[1]:
            size = int(parts[1])
            # Every generator's first parameter is its size knob, but the
            # name differs per family.
            if family in ("grid", "lattice"):
                kwargs["side"] = size
            else:
                kwargs["num_nodes"] = size
        if len(parts) > 2 and parts[2]:
            kwargs["seed"] = int(parts[2])
    except ValueError as exc:
        raise ServeError(
            f"fixture spec {spec!r}: size and seed must be integers"
        ) from exc
    return generator(**kwargs)


def prepare_engine(
    workload: Workload,
    store: Optional[DurableIndexStore] = None,
    num_hubs="auto",
    explore_limit="auto",
    capacity: int = 16,
    workers: int = 1,
    worker_context: Optional[str] = None,
    registry=None,
) -> Tuple[ReverseKRanksEngine, bool]:
    """Engine around ``workload.graph`` with a warm, optionally durable index.

    With a ``store``: an existing snapshot (+ journal replay) is adopted
    — the restarted server resumes exactly as learned as it stopped —
    and a first boot builds the index and installs it as the store's
    base snapshot.  Without a store the index is simply built in
    process.

    ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`) is
    forwarded to the engine so a caller can collect engine, pool and
    journal metrics in one scrape; ``None`` keeps the engine's default
    private registry.

    Returns ``(engine, restored)`` where ``restored`` says whether the
    index came from the store rather than a fresh build.
    """
    engine = ReverseKRanksEngine(
        workload.graph, partition=workload.partition, registry=registry
    )
    if workload.partition is not None:
        if store is not None:
            raise ServeError(
                "durable learned state is monochromatic-only (bichromatic "
                "engines have no hub index to journal)"
            )
        return engine, False
    if store is not None:
        index = store.load(workload.graph)
        if index is not None:
            engine.adopt_index(index)
            return engine, True
    index_params = dict(workload.index_params)
    engine.build_index(
        num_hubs=index_params.get("num_hubs", num_hubs),
        explore_limit=index_params.get("explore_limit", explore_limit),
        capacity=capacity,
        workers=workers,
        worker_context=worker_context,
    )
    if store is not None:
        store.install(engine.index)
    return engine, False
