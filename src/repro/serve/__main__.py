"""``python -m repro.serve`` — boot the always-on query server.

Examples::

    # serve a seeded synthetic fixture on a random free TCP port
    python -m repro.serve --fixture gnp:200:7 --state-dir /tmp/repro-state

    # serve a real dataset over a unix socket, 4 worker processes
    python -m repro.serve --dataset data/roads.gr --unix /tmp/repro.sock \\
        --workers 4

The process prints one ``READY <host>:<port> pid=<pid>`` line (or
``READY unix:<path> pid=<pid>``) on stdout once it accepts connections —
smoke jobs wait for that line — then serves until SIGTERM/SIGINT or a
client ``shutdown`` op, both of which shut down gracefully (final
journal compaction included).

With ``--metrics-port`` the process additionally prints one
``METRICS <host>:<port>`` line and serves the shared metrics registry as
Prometheus text over plain HTTP at ``/metrics`` on that port;
``--trace`` turns batch tracing on from boot (see :mod:`repro.obs`).

With ``--state-dir`` the learned index is durable: the first boot builds
it and snapshots it there; every later boot replays snapshot + journal
and resumes exactly as warm as the previous process stopped — even after
kill -9, minus at most the final un-fsynced in-flight batch.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.serve.bootstrap import parse_fixture, prepare_engine
from repro.serve.journal import DurableIndexStore
from repro.serve.server import QueryServer, ServeConfig


def _start_metrics_endpoint(registry: MetricsRegistry, host: str, port: int):
    """Serve ``registry.render()`` over plain HTTP on a daemon thread.

    Returns the bound ``(host, port)``.  Stdlib-only on purpose — any
    Prometheus scraper (or ``curl``) can hit ``/metrics`` without the
    framed-JSON client; the endpoint is read-only and shares the exact
    registry the query server writes, so both views always agree.
    """
    import threading
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class _MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
            if self.path not in ("/", "/metrics"):
                self.send_error(404)
                return
            body = registry.render().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # scrapes are periodic; don't spam the server's stderr

    httpd = ThreadingHTTPServer((host, port), _MetricsHandler)
    httpd.daemon_threads = True
    threading.Thread(
        target=httpd.serve_forever, name="repro-metrics-http", daemon=True
    ).start()
    return httpd.server_address[:2]


def _int_or_auto(value: str):
    return value if value == "auto" else int(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-running reverse k-ranks query server.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--fixture",
        help="synthetic graph spec: family[:size[:seed]] "
        "(families: path, grid, gnp, powerlaw, lattice)",
    )
    source.add_argument(
        "--dataset", help="dataset file (edge list, DIMACS .gr, or JSON)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port; 0 picks a free one"
    )
    parser.add_argument("--unix", default=None, help="unix socket path")
    parser.add_argument(
        "--state-dir",
        default=None,
        help="directory for the durable index snapshot + delta journal; "
        "omit for in-memory-only learning",
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--worker-context",
        default=None,
        choices=("fork", "spawn", "forkserver"),
    )
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--max-pending", type=int, default=1024)
    parser.add_argument("--default-k", type=int, default=8)
    parser.add_argument("--default-algorithm", default="indexed")
    parser.add_argument(
        "--num-hubs", type=_int_or_auto, default="auto",
        help="hub-index build budget (int or 'auto')",
    )
    parser.add_argument(
        "--explore-limit", type=_int_or_auto, default="auto",
        help="per-hub exploration budget (int or 'auto')",
    )
    parser.add_argument("--capacity", type=int, default=16)
    parser.add_argument(
        "--batch-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="deadline per parallel batch dispatch; a batch that "
        "overruns it kills the stuck workers and fails over per "
        "--on-pool-failure (default: no deadline)",
    )
    parser.add_argument(
        "--on-pool-failure",
        default="retry",
        choices=("retry", "sequential", "raise"),
        help="what a worker-pool crash/timeout does to the batch: retry "
        "on a healed pool, fall back to in-process sequential "
        "execution, or surface the error (default: retry)",
    )
    parser.add_argument(
        "--compact-bytes",
        type=int,
        default=4 * 1024 * 1024,
        help="journal size that triggers snapshot compaction",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose Prometheus text metrics over plain HTTP on this "
        "port (0 picks a free one); prints a METRICS line after READY",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable batch tracing from boot (clients can also toggle "
        "it at runtime via the 'trace' op)",
    )
    args = parser.parse_args(argv)

    if args.fixture:
        workload = parse_fixture(args.fixture)
    else:
        from repro.bench.workloads import dataset_workload

        workload = dataset_workload(args.dataset)

    # One registry spans the whole process — store (journal metrics),
    # engine (dispatch + pool metrics) and server (batcher metrics) — so
    # a single scrape, via the `metrics` op or --metrics-port, sees all
    # of them.
    registry = MetricsRegistry()
    store = (
        DurableIndexStore(
            args.state_dir,
            compact_bytes=args.compact_bytes,
            registry=registry,
        )
        if args.state_dir
        else None
    )
    engine, restored = prepare_engine(
        workload,
        store=store,
        num_hubs=args.num_hubs,
        explore_limit=args.explore_limit,
        capacity=args.capacity,
        workers=args.workers,
        worker_context=args.worker_context,
        registry=registry,
    )
    if args.trace:
        engine.tracer.enabled = True
    if store is not None:
        origin = "restored from" if restored else "installed into"
        print(
            f"index {origin} {args.state_dir} "
            f"(journal_seq={store.last_seq})",
            file=sys.stderr,
            flush=True,
        )

    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        workers=args.workers,
        worker_context=args.worker_context,
        default_k=args.default_k,
        default_algorithm=args.default_algorithm,
        batch_timeout_s=args.batch_timeout,
        on_pool_failure=args.on_pool_failure,
    )
    server = QueryServer(
        engine,
        config=config,
        store=store,
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        registry=registry,
    )

    def handle_signal(signum, frame):  # noqa: ARG001 - signal signature
        server.stop()

    signal.signal(signal.SIGTERM, handle_signal)
    signal.signal(signal.SIGINT, handle_signal)

    with server:
        if args.unix:
            endpoint = f"unix:{args.unix}"
        else:
            host, port = server.address
            endpoint = f"{host}:{port}"
        print(f"READY {endpoint} pid={os.getpid()}", flush=True)
        if args.metrics_port is not None:
            metrics_host, metrics_port = _start_metrics_endpoint(
                registry, args.host, args.metrics_port
            )
            print(f"METRICS {metrics_host}:{metrics_port}", flush=True)
        server.serve_forever()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
