"""Always-on query serving with durable learned-index state.

The package turns the batch-oriented engine into a long-running service:

* :mod:`repro.serve.protocol` — length-prefixed JSON framing (TCP or
  unix sockets, stdlib only);
* :mod:`repro.serve.server` — :class:`QueryServer`: a threaded accept
  loop whose single batcher thread coalesces concurrent client queries
  into ``query_many`` batches under a max-latency window, with bounded
  admission and explicit overload responses;
* :mod:`repro.serve.client` — :class:`ServeClient`, the blocking
  client;
* :mod:`repro.serve.journal` — :class:`DeltaJournal` and
  :class:`DurableIndexStore`: CRC-framed append-only learning journal,
  snapshot compaction, and crash-safe replay so a restarted server is
  exactly as warm as it stopped;
* :mod:`repro.serve.loadgen` — the closed-loop benchmark client
  (latency percentiles, throughput, batched-vs-unbatched comparison);
* ``python -m repro.serve`` — the CLI entry point.
"""

from repro.serve.client import ServeClient
from repro.serve.journal import DeltaJournal, DurableIndexStore
from repro.serve.protocol import MAX_FRAME_BYTES, recv_message, send_message
from repro.serve.server import QueryServer, ServeConfig

__all__ = [
    "DeltaJournal",
    "DurableIndexStore",
    "MAX_FRAME_BYTES",
    "QueryServer",
    "ServeClient",
    "ServeConfig",
    "recv_message",
    "send_message",
]
