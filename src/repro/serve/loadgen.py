"""Closed-loop load generator for the query service.

``python -m repro.serve.loadgen`` drives a running server with N client
threads, each issuing one request at a time (closed loop: the next
request leaves only when the previous response lands), and reports
per-request latency percentiles plus end-to-end throughput.  Overloaded
responses — the server's explicit backpressure — are retried with
capped exponential backoff and full jitter (so a herd of rejected
clients decorrelates instead of re-colliding on the same tick) and
counted, both in aggregate and per client.

``--compare-batching`` is the acceptance harness for the coalescing
claim: it boots two servers *in process* over identically built fixture
engines, both with a durable journal and both dispatching on the same
worker-pool configuration — one with the configured ``max_batch``, one
with ``max_batch=1`` (one query per pool dispatch and per fsync, the
per-request baseline) — drives both with the same closed-loop workload
at saturation, and prints the throughput ratio.  The batched server
must win by >= 2x.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ServeError, ServerOverloadedError
from repro.serve.client import ServeClient

__all__ = [
    "LoadReport",
    "overload_backoff_s",
    "run_load",
    "compare_batching",
    "main",
]

_OVERLOAD_BACKOFF_S = 0.002
_OVERLOAD_BACKOFF_CAP_S = 0.25
_MAX_OVERLOAD_RETRIES = 1000


def overload_backoff_s(
    attempt: int,
    rng: random.Random,
    base_s: float = _OVERLOAD_BACKOFF_S,
    cap_s: float = _OVERLOAD_BACKOFF_CAP_S,
) -> float:
    """Sleep before overload retry ``attempt`` (0-based): full jitter.

    ``uniform(0, min(cap_s, base_s * 2**attempt))`` — the classic
    capped-exponential window with full jitter.  A fixed (or linearly
    growing) delay marches every rejected client back through the
    admission gate in lockstep, re-creating the very burst that was
    rejected; sampling the whole window spreads the herd out while the
    cap keeps the worst-case wait bounded.
    """
    window = min(cap_s, base_s * (2.0 ** attempt))
    return rng.uniform(0.0, window)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over an already sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, int(round(fraction * (len(sorted_values) - 1)))),
    )
    return sorted_values[rank]


@dataclass
class LoadReport:
    """What one closed-loop run measured."""

    clients: int
    requests: int
    queries: int
    duration_s: float
    overload_retries: int
    retries_per_client: List[int] = field(default_factory=list)
    latencies_ms: List[float] = field(repr=False, default_factory=list)

    @property
    def throughput_qps(self) -> float:
        """Completed queries per second over the whole run."""
        return self.queries / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def p50_ms(self) -> float:
        return _percentile(sorted(self.latencies_ms), 0.50)

    @property
    def p99_ms(self) -> float:
        return _percentile(sorted(self.latencies_ms), 0.99)

    def as_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "queries": self.queries,
            "duration_s": round(self.duration_s, 4),
            "throughput_qps": round(self.throughput_qps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "overload_retries": self.overload_retries,
            "retries_per_client": list(self.retries_per_client),
        }


def run_load(
    queries: List,
    k: int,
    algorithm: str,
    num_clients: int,
    requests_per_client: int,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
    queries_per_request: int = 1,
) -> LoadReport:
    """Drive the server with a closed loop of ``num_clients`` threads.

    Each thread owns one connection and walks the query list round-robin
    from its own offset (so concurrent clients hit different nodes),
    sending ``queries_per_request`` queries per request.  An overloaded
    response retries the same request after a capped-exponential,
    fully-jittered backoff (see :func:`overload_backoff_s`); any other
    error aborts the run.  The report carries both the aggregate retry
    count and a per-client breakdown, so a single starved connection
    shows up instead of averaging away.
    """
    latencies_lock = threading.Lock()
    latencies: List[float] = []
    retries_per_client = [0] * num_clients
    errors: List[BaseException] = []

    def client_loop(client_id: int) -> None:
        rng = random.Random(client_id)  # jitter decorrelates anyway
        retries = 0
        try:
            with ServeClient(
                host=host, port=port, unix_path=unix_path, timeout=120.0
            ) as client:
                local: List[float] = []
                cursor = client_id  # offset so clients interleave the pool
                for _ in range(requests_per_client):
                    request = [
                        queries[(cursor + j) % len(queries)]
                        for j in range(queries_per_request)
                    ]
                    cursor += queries_per_request
                    started = time.perf_counter()
                    for attempt in range(_MAX_OVERLOAD_RETRIES):
                        try:
                            client.query_many(request, k=k, algorithm=algorithm)
                            break
                        except ServerOverloadedError:
                            retries += 1
                            time.sleep(overload_backoff_s(attempt, rng))
                    else:
                        raise ServeError(
                            "request still overloaded after "
                            f"{_MAX_OVERLOAD_RETRIES} retries"
                        )
                    local.append((time.perf_counter() - started) * 1000.0)
                with latencies_lock:
                    latencies.extend(local)
                    retries_per_client[client_id] = retries
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            with latencies_lock:
                retries_per_client[client_id] = retries
                errors.append(exc)

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(num_clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started
    if errors:
        raise errors[0]
    total_requests = num_clients * requests_per_client
    return LoadReport(
        clients=num_clients,
        requests=total_requests,
        queries=total_requests * queries_per_request,
        duration_s=duration,
        overload_retries=sum(retries_per_client),
        retries_per_client=retries_per_client,
        latencies_ms=latencies,
    )


def compare_batching(
    fixture: str,
    k: int,
    algorithm: str,
    num_clients: int,
    requests_per_client: int,
    max_batch: int,
    max_wait_ms: float,
    workers: int = 2,
) -> dict:
    """Batched vs one-query-per-request server, same pool, same closed loop.

    Boots a fresh in-process server per configuration over identically
    built fixture engines, each with its own durable
    :class:`~repro.serve.journal.DurableIndexStore`, runs the same
    closed-loop load against each, and returns both reports plus the
    throughput ratio.

    Both sides dispatch on a ``workers``-way persistent pool and journal
    their learning with fsync at batch boundaries; the only difference
    is coalescing.  The baseline (``max_batch=1``,
    ``parallel_min_batch=1``) pays one pool round trip and one fsync
    *per query*; the batched side amortises both — plus intra-window
    dedupe — across every query the window coalesced.  The baseline
    runs first so hub-index warm-up (the learned state starts equally
    cold on both) cannot favour batching.
    """
    import tempfile
    from pathlib import Path

    from repro.serve.bootstrap import parse_fixture, prepare_engine
    from repro.serve.journal import DurableIndexStore
    from repro.serve.server import QueryServer, ServeConfig

    reports = {}
    with tempfile.TemporaryDirectory(prefix="repro-compare-") as tmp:
        for label, batch_limit in (("unbatched", 1), ("batched", max_batch)):
            workload = parse_fixture(fixture)
            store = DurableIndexStore(Path(tmp) / label)
            engine, _ = prepare_engine(workload, store=store)
            if batch_limit == 1:
                # The honest per-request baseline: every query rides the
                # pool alone instead of quietly taking the cheaper
                # sequential fallback.
                engine.parallel_min_batch = 1
            config = ServeConfig(
                max_batch=batch_limit,
                max_wait_ms=max_wait_ms if batch_limit > 1 else 0.0,
                max_pending=max(1024, num_clients * 4),
                workers=workers,
            )
            server = QueryServer(engine, config=config, store=store)
            try:
                server.start()
                host, port = server.address
                reports[label] = run_load(
                    list(workload.queries) or list(workload.graph.nodes()),
                    k,
                    algorithm,
                    num_clients,
                    requests_per_client,
                    host=host,
                    port=port,
                )
            finally:
                server.stop()
    ratio = (
        reports["batched"].throughput_qps
        / reports["unbatched"].throughput_qps
        if reports["unbatched"].throughput_qps > 0
        else float("inf")
    )
    return {
        "fixture": fixture,
        "k": k,
        "algorithm": algorithm,
        "workers": workers,
        "unbatched": reports["unbatched"].as_dict(),
        "batched": reports["batched"].as_dict(),
        "throughput_ratio": round(ratio, 2),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Closed-loop load generator for the repro query service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--unix", default=None, help="unix socket path")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--requests", type=int, default=50, help="requests per client"
    )
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--algorithm", default="indexed")
    parser.add_argument(
        "--queries",
        default=None,
        help="comma-separated int query nodes; default: asks the server "
        "for its graph size and uses every node id",
    )
    parser.add_argument(
        "--queries-per-request", type=int, default=1,
    )
    parser.add_argument(
        "--compare-batching",
        metavar="FIXTURE",
        default=None,
        help="self-hosted mode: boot batched vs unbatched servers over "
        "this fixture spec (family[:size[:seed]]) and print the "
        "throughput ratio",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="batched side's coalescing ceiling (compare mode)",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=5.0,
        help="batched side's flush window (compare mode)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="pool width both servers dispatch on (compare mode)",
    )
    args = parser.parse_args(argv)

    if args.compare_batching:
        payload = compare_batching(
            args.compare_batching,
            args.k,
            args.algorithm,
            args.clients,
            args.requests,
            args.max_batch,
            args.max_wait_ms,
            workers=args.workers,
        )
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0

    if args.port is None and args.unix is None:
        parser.error("need --port or --unix (or --compare-batching)")
    if args.queries:
        queries = [int(item) for item in args.queries.split(",")]
    else:
        with ServeClient(
            host=args.host, port=args.port, unix_path=args.unix
        ) as client:
            queries = list(range(client.info()["num_nodes"]))
    report = run_load(
        queries,
        args.k,
        args.algorithm,
        args.clients,
        args.requests,
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        queries_per_request=args.queries_per_request,
    )
    json.dump(report.as_dict(), sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
