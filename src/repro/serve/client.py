"""Blocking client for the query service (stdlib only).

One :class:`ServeClient` wraps one connection; requests on a connection
are strictly sequential (send one frame, read one frame), so share a
client across threads only behind your own lock — or give each thread
its own, which is what the closed-loop load generator does.

Failure surfacing: a socket that dies mid-request (server killed,
connection reset, timeout) raises the typed
:class:`~repro.errors.ServeConnectionError` instead of a bare
``OSError``.  Because every op the client speaks is an idempotent read
(or the idempotent ``shutdown``), the opt-in ``retries=`` knob may
transparently reconnect and retry on connection failures — and on
:class:`~repro.errors.ServerOverloadedError`, where the server
explicitly promised no work was done — with capped exponential backoff
and full jitter between attempts.
"""

from __future__ import annotations

import random
import socket
import time
from typing import List, Optional, Tuple

from repro.errors import (
    ProtocolError,
    ServeConnectionError,
    ServeError,
    ServerOverloadedError,
)
from repro.serve.protocol import recv_message, send_message

__all__ = ["ServeClient"]


class ServeClient:
    """Connect to a :class:`~repro.serve.server.QueryServer` and talk to it.

    Parameters mirror the server's transports: give ``host``/``port`` for
    TCP or ``unix_path`` for a unix domain socket (which wins when both
    are given).  Use as a context manager or call :meth:`close`.

    ``retries`` (default 0: fail fast) is how many times a failed call
    may be transparently retried on transient failures — a refused or
    dropped connection (:class:`~repro.errors.ServeConnectionError`;
    the client reconnects first) or explicit overload backpressure
    (:class:`~repro.errors.ServerOverloadedError`).  Attempt ``n`` sleeps
    ``uniform(0, min(backoff_cap_s, backoff_s * 2**n))`` first — full
    jitter, so a thundering herd of retrying clients decorrelates
    instead of re-colliding.  :attr:`retries_used` counts retries spent
    over the client's lifetime.  Server-side *request* errors (bad node,
    bad k) are never retried: the server answered; the answer was no.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff_s: float = 0.01,
        backoff_cap_s: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not isinstance(retries, int) or isinstance(retries, bool) or retries < 0:
            raise ServeError(
                f"retries must be a non-negative integer, got {retries!r}"
            )
        if unix_path is None and port is None:
            raise ServeError("ServeClient needs a port (or a unix_path)")
        self._host = host
        self._port = port
        self._unix_path = unix_path
        self._timeout = timeout
        self._retries = retries
        self._backoff_s = backoff_s
        self._backoff_cap_s = backoff_cap_s
        self._rng = rng if rng is not None else random.Random()
        #: Retries spent over this client's lifetime (transparent
        #: reconnect/overload retries; load reports aggregate it).
        self.retries_used = 0
        self._sock: Optional[socket.socket] = None
        self._connect()

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        try:
            if self._unix_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self._timeout)
                sock.connect(self._unix_path)
            else:
                sock = socket.create_connection(
                    (self._host, self._port), timeout=self._timeout
                )
                # Frames are small and latency-bound; don't let Nagle
                # delay the final segment of a request.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            target = self._unix_path or f"{self._host}:{self._port}"
            raise ServeConnectionError(
                f"could not connect to the query server at {target}: {exc}"
            ) from exc
        self._sock = sock

    def _call_once(self, message: dict) -> dict:
        try:
            send_message(self._sock, message)
            response = recv_message(self._sock)
        except (ProtocolError, ServeError):
            raise
        except OSError as exc:
            raise ServeConnectionError(
                f"connection to the query server failed mid-request: {exc}"
            ) from exc
        if response is None:
            raise ServeConnectionError(
                "server closed the connection mid-request"
            )
        if response.get("ok"):
            return response
        if response.get("overloaded"):
            raise ServerOverloadedError(
                response.get("error", "server overloaded")
            )
        raise ServeError(response.get("error", "request failed"))

    def _call(self, message: dict) -> dict:
        attempt = 0
        while True:
            try:
                if self._sock is None:
                    self._connect()
                return self._call_once(message)
            except (ServeConnectionError, ServerOverloadedError) as exc:
                if attempt >= self._retries:
                    raise
                attempt += 1
                self.retries_used += 1
                if isinstance(exc, ServeConnectionError):
                    # The socket's state is unknowable; reconnect (at the
                    # top of the loop, so a refused reconnect also counts
                    # against the retry budget).
                    self.close()
                delay = min(
                    self._backoff_cap_s, self._backoff_s * (2 ** attempt)
                )
                time.sleep(self._rng.uniform(0.0, delay))

    # ------------------------------------------------------------------
    def query_many(
        self,
        queries: List,
        k: Optional[int] = None,
        algorithm: Optional[str] = None,
    ) -> List[List[Tuple[object, float]]]:
        """Answer a batch; one ``[(node, rank), ...]`` list per query.

        Omitted ``k``/``algorithm`` use the server's configured defaults.

        Raises
        ------
        ServeConnectionError
            When the connection failed (mid-request or reconnecting) and
            the retry budget is exhausted.
        ServerOverloadedError
            When admission control refused the request (past any
            retries); safe to retry — no work was done.
        ServeError
            On any other server-reported failure (bad node, bad k, ...).
        """
        message = {"op": "query", "queries": list(queries)}
        if k is not None:
            message["k"] = k
        if algorithm is not None:
            message["algorithm"] = algorithm
        response = self._call(message)
        return [
            [(node, rank) for node, rank in result]
            for result in response["results"]
        ]

    def query(
        self,
        query,
        k: Optional[int] = None,
        algorithm: Optional[str] = None,
    ) -> List[Tuple[object, float]]:
        """Answer one query; returns its ``[(node, rank), ...]`` list."""
        return self.query_many([query], k=k, algorithm=algorithm)[0]

    def ping(self) -> bool:
        """Round-trip a liveness probe (never enters the batch queue)."""
        return bool(self._call({"op": "ping"}).get("pong"))

    def info(self) -> dict:
        """The server's static configuration and graph shape."""
        return self._call({"op": "info"})

    def stats(self) -> dict:
        """Live counters: batches, queries, overloads, journal state."""
        return self._call({"op": "stats"})

    def health(self) -> dict:
        """Pool liveness, degraded mode, and crash/respawn/journal counters."""
        return self._call({"op": "health"})

    def metrics(self) -> str:
        """The server's metrics registry in Prometheus text exposition."""
        return self._call({"op": "metrics"})["metrics"]

    def trace(self, enable: Optional[bool] = None) -> dict:
        """Read (and optionally toggle) batch tracing on the server.

        Returns ``{"enabled": bool, "trace": <last batch span tree or
        None>}``; pass ``enable=True``/``False`` to flip tracing for all
        subsequent batches first.
        """
        message = {"op": "trace"}
        if enable is not None:
            message["enable"] = bool(enable)
        response = self._call(message)
        return {"enabled": response["enabled"], "trace": response["trace"]}

    def shutdown(self) -> None:
        """Ask the server to stop gracefully (acknowledged before it does)."""
        self._call({"op": "shutdown"})

    # ------------------------------------------------------------------
    def close(self) -> None:
        sock = self._sock
        self._sock = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self.close()
