"""Blocking client for the query service (stdlib only).

One :class:`ServeClient` wraps one connection; requests on a connection
are strictly sequential (send one frame, read one frame), so share a
client across threads only behind your own lock — or give each thread
its own, which is what the closed-loop load generator does.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Tuple

from repro.errors import ProtocolError, ServeError, ServerOverloadedError
from repro.serve.protocol import recv_message, send_message

__all__ = ["ServeClient"]


class ServeClient:
    """Connect to a :class:`~repro.serve.server.QueryServer` and talk to it.

    Parameters mirror the server's transports: give ``host``/``port`` for
    TCP or ``unix_path`` for a unix domain socket (which wins when both
    are given).  Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> None:
        if unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        else:
            if port is None:
                raise ServeError("ServeClient needs a port (or a unix_path)")
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
            # Frames are small and latency-bound; don't let Nagle delay
            # the final segment of a request.
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )

    # ------------------------------------------------------------------
    def _call(self, message: dict) -> dict:
        send_message(self._sock, message)
        response = recv_message(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if response.get("ok"):
            return response
        if response.get("overloaded"):
            raise ServerOverloadedError(
                response.get("error", "server overloaded")
            )
        raise ServeError(response.get("error", "request failed"))

    # ------------------------------------------------------------------
    def query_many(
        self,
        queries: List,
        k: Optional[int] = None,
        algorithm: Optional[str] = None,
    ) -> List[List[Tuple[object, float]]]:
        """Answer a batch; one ``[(node, rank), ...]`` list per query.

        Omitted ``k``/``algorithm`` use the server's configured defaults.

        Raises
        ------
        ServerOverloadedError
            When admission control refused the request; safe to retry —
            no work was done.
        ServeError
            On any other server-reported failure (bad node, bad k, ...).
        """
        message = {"op": "query", "queries": list(queries)}
        if k is not None:
            message["k"] = k
        if algorithm is not None:
            message["algorithm"] = algorithm
        response = self._call(message)
        return [
            [(node, rank) for node, rank in result]
            for result in response["results"]
        ]

    def query(
        self,
        query,
        k: Optional[int] = None,
        algorithm: Optional[str] = None,
    ) -> List[Tuple[object, float]]:
        """Answer one query; returns its ``[(node, rank), ...]`` list."""
        return self.query_many([query], k=k, algorithm=algorithm)[0]

    def ping(self) -> bool:
        """Round-trip a liveness probe (never enters the batch queue)."""
        return bool(self._call({"op": "ping"}).get("pong"))

    def info(self) -> dict:
        """The server's static configuration and graph shape."""
        return self._call({"op": "info"})

    def stats(self) -> dict:
        """Live counters: batches, queries, overloads, journal state."""
        return self._call({"op": "stats"})

    def shutdown(self) -> None:
        """Ask the server to stop gracefully (acknowledged before it does)."""
        self._call({"op": "shutdown"})

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self.close()
