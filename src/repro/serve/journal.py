"""Durable learned-index state: the delta journal and its snapshot store.

The always-on server keeps answering indexed queries cheaper because the
hub index *learns* (Algorithm 4).  This module makes that learning
survive a restart — including a kill -9 — with two pieces:

* :class:`DeltaJournal` — an append-only file of
  :class:`~repro.core.hub_index.HubIndexDelta` records, each framed as a
  little-endian ``(length, crc32)`` header plus a pickled payload, and
  fsynced at batch boundaries.  A crash mid-append leaves a *torn tail
  record*, which the next open detects and truncates away; corruption
  anywhere **before** the tail (a CRC mismatch followed by more data) is
  not silently skippable and raises
  :class:`~repro.errors.JournalCorruptionError` instead.

* :class:`DurableIndexStore` — a directory pairing one atomic
  :meth:`~repro.core.hub_index.HubIndex.save` snapshot with one journal.
  Batches append deltas; once the journal outgrows a threshold the store
  *compacts*: it folds everything into a fresh snapshot and resets the
  journal.  Restart replays snapshot + journal and the rebuilt index is
  **bit-identical** (pickled ``export_state`` equality) to one that
  never restarted.

Crash-safety of compaction
--------------------------
Compaction is two steps — write snapshot, reset journal — and a crash
can land between them.  Replaying the old journal on top of the new
snapshot would double-apply exploration counters (they are additive), so
every journal record carries a monotonically increasing **sequence
number**, and the snapshot records (atomically, inside its own payload
via ``save(meta=...)``) the sequence it already folds in.  Replay skips
records at or below the snapshot's sequence; applying the journal is
therefore idempotent whichever side of the compaction the crash fell on.

Durability windows: a delta is durable once :meth:`DeltaJournal.append`
returns with ``sync=True`` (the server appends *before* releasing client
responses, so any answered query's learning survives).  A kill -9 loses
at most the in-flight, not-yet-fsynced batch.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import time
import zlib
from pathlib import Path
from typing import List, Optional, Tuple

from repro import faults
from repro.core.hub_index import HubIndex, HubIndexDelta
from repro.errors import JournalCorruptionError
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, get_registry

__all__ = ["DeltaJournal", "DurableIndexStore"]

#: File magic: the journal's first 16 bytes.  Versioned like the
#: hub-index snapshot magic; bump on any frame-format change.
JOURNAL_MAGIC = b"REPRO-JOURNAL/1\n"

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

#: Sanity cap on one record's payload.  A single batch delta is a few
#: KiB; anything near this is a corrupted length field.
_MAX_RECORD_BYTES = 256 * 1024 * 1024


def _fsync_directory(path: Path) -> None:
    """fsync a directory so a just-renamed file survives power loss.

    Best-effort: some platforms/filesystems refuse O_RDONLY directory
    fds; the rename itself is still atomic there.
    """
    try:
        descriptor = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(descriptor)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(descriptor)


class DeltaJournal:
    """An append-only, CRC-framed, torn-tail-tolerant delta journal.

    Opening scans the whole file: the valid record prefix is parsed, a
    torn tail (the partial record a crash mid-append leaves) is
    truncated away, and appends then continue from the healed end.  Use
    :meth:`entries` for the records the open found; :meth:`append` to
    add more; :meth:`reset` to atomically replace the file with an empty
    one (the compaction step).

    Records are ``(seq, HubIndexDelta)`` pairs; ``seq`` is assigned by
    the caller (:class:`DurableIndexStore` keeps it monotonic across
    resets) and is what makes replay idempotent.

    The payload is pickle-based like every repro on-disk format: only
    open journal files your own deployment wrote (the CRC catches
    corruption, not tampering).
    """

    def __init__(self, path, sync: bool = True, registry=None) -> None:
        self.path = Path(path)
        self._sync = sync
        self._entries: List[Tuple[int, HubIndexDelta]] = []
        self._last_seq = 0
        # Injected by the serve layer (one shared scrape) or the
        # process-global default for standalone journals.
        metrics = registry if registry is not None else get_registry()
        self._m_appends = metrics.counter(
            "repro_journal_appends_total",
            "Journal records appended successfully.",
        )
        self._m_append_failures = metrics.counter(
            "repro_journal_append_failures_total",
            "Journal appends rolled back after a write/flush/fsync failure.",
        )
        self._m_append_bytes = metrics.counter(
            "repro_journal_append_bytes_total",
            "Frame + payload bytes appended to the journal.",
        )
        self._m_fsync_seconds = metrics.histogram(
            "repro_journal_fsync_seconds",
            "Seconds spent in the journal append's durability fsync.",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        created = not self.path.exists() or self.path.stat().st_size == 0
        # "a+" then reopen: create the file if missing without clobbering
        # an existing one, then take the real read/write handle.
        if created:
            with open(self.path, "ab") as handle:
                handle.write(JOURNAL_MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            _fsync_directory(self.path.parent)
        self._handle = open(self.path, "r+b")
        try:
            valid_end = self._scan()
            # Heal the torn tail, if any: truncate back to the last
            # complete record so the next append cannot bury a partial
            # frame mid-file (where it would read as real corruption).
            self._handle.truncate(valid_end)
            self._handle.seek(valid_end)
        except BaseException:
            self._handle.close()
            raise

    # ------------------------------------------------------------------
    def _scan(self) -> int:
        """Parse the file, fill ``_entries``; return the valid prefix end."""
        handle = self._handle
        handle.seek(0, os.SEEK_END)
        file_size = handle.tell()
        handle.seek(0)
        magic = handle.read(len(JOURNAL_MAGIC))
        if magic != JOURNAL_MAGIC:
            raise JournalCorruptionError(
                f"{self.path} is not a repro delta journal (bad magic); "
                "refusing to append to it"
            )
        offset = len(JOURNAL_MAGIC)
        while offset < file_size:
            header = handle.read(_FRAME.size)
            if len(header) < _FRAME.size:
                return offset  # torn tail: partial frame header
            length, crc = _FRAME.unpack(header)
            if length > _MAX_RECORD_BYTES:
                raise JournalCorruptionError(
                    f"{self.path} record at offset {offset} claims "
                    f"{length} bytes (cap {_MAX_RECORD_BYTES}); the journal "
                    "is corrupted — restore from the snapshot and discard it"
                )
            payload = handle.read(length)
            record_end = offset + _FRAME.size + length
            if len(payload) < length:
                return offset  # torn tail: payload cut short by the crash
            if zlib.crc32(payload) != crc:
                if record_end >= file_size:
                    # CRC mismatch on the *final* record: a torn write the
                    # filesystem padded, or bit-rot at the tail.  Either
                    # way nothing durable follows it — drop it.
                    return offset
                raise JournalCorruptionError(
                    f"{self.path} record at offset {offset} fails its CRC "
                    "check with more records following — mid-file "
                    "corruption cannot be skipped safely; restore from "
                    "the snapshot and discard the journal"
                )
            try:
                record = pickle.loads(payload)
                seq = int(record["seq"])
                delta = record["delta"]
                if not isinstance(delta, HubIndexDelta):
                    raise TypeError(type(delta).__name__)
            except JournalCorruptionError:
                raise
            except Exception as exc:
                # The CRC passed, so the bytes are what append() wrote —
                # an undecodable payload is a format bug, not bit-rot.
                raise JournalCorruptionError(
                    f"{self.path} record at offset {offset} has a valid "
                    f"CRC but an undecodable payload "
                    f"({type(exc).__name__}: {exc})"
                ) from exc
            if seq <= self._last_seq:
                raise JournalCorruptionError(
                    f"{self.path} record at offset {offset} has sequence "
                    f"{seq} <= preceding {self._last_seq}; sequences must "
                    "increase strictly"
                )
            self._entries.append((seq, delta))
            self._last_seq = seq
            offset = record_end
        return offset

    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Highest record sequence in the journal (0 when empty)."""
        return self._last_seq

    @property
    def num_records(self) -> int:
        """How many complete records the journal holds."""
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        """Current journal file size (the compaction trigger input)."""
        return self._handle.tell()

    def entries(self) -> List[Tuple[int, HubIndexDelta]]:
        """The ``(seq, delta)`` records, oldest first (copy)."""
        return list(self._entries)

    # ------------------------------------------------------------------
    def append(self, seq: int, delta: HubIndexDelta, sync: Optional[bool] = None) -> int:
        """Append one record; returns the journal size afterwards.

        With ``sync`` (defaulting to the journal's construction-time
        setting) the record is fsynced before returning — the server's
        batch-boundary durability point.

        Failure atomicity: if the write, flush or fsync raises (ENOSPC,
        an injected ``journal.write`` / ``journal.fsync`` failpoint, a
        dying disk), the file is truncated back to the pre-append offset
        and the in-memory state is untouched — the journal stays exactly
        as if the append never happened, so a later append may legally
        reuse the sequence number and replay never sees a half-durable
        record.
        """
        if seq <= self._last_seq:
            raise ValueError(
                f"journal sequence must increase: got {seq} after "
                f"{self._last_seq}"
            )
        payload = pickle.dumps(
            {"seq": seq, "delta": delta}, protocol=pickle.HIGHEST_PROTOCOL
        )
        start = self._handle.tell()
        try:
            faults.fire("journal.write")
            self._handle.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
            self._handle.write(payload)
            self._handle.flush()
            faults.fire("journal.fsync")
            if self._sync if sync is None else sync:
                fsync_started = time.perf_counter()
                os.fsync(self._handle.fileno())
                self._m_fsync_seconds.observe(
                    time.perf_counter() - fsync_started
                )
        except BaseException:
            self._m_append_failures.inc()
            # Roll the file back so the failed record cannot linger as a
            # valid-looking frame the caller believes was never written.
            try:
                self._handle.truncate(start)
                self._handle.seek(start)
            except OSError:  # pragma: no cover - disk truly gone; open()'s
                pass  # torn-tail healing is the backstop
            raise
        self._entries.append((seq, delta))
        self._last_seq = seq
        self._m_appends.inc()
        self._m_append_bytes.inc(_FRAME.size + len(payload))
        return self._handle.tell()

    def reset(self) -> None:
        """Atomically replace the journal with an empty one.

        A fresh magic-only file is written to a temp name, fsynced, and
        renamed over the journal (then the directory is fsynced), so a
        crash mid-reset leaves either the old complete journal or the
        new empty one — never a truncated hybrid.  ``last_seq`` is
        preserved in memory so subsequent appends keep the sequence
        strictly increasing across the reset.
        """
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(self.path.parent) or ".",
            prefix=f".{self.path.name}.",
            suffix=".tmp",
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(JOURNAL_MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, self.path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        _fsync_directory(self.path.parent)
        self._handle.close()
        self._handle = open(self.path, "r+b")
        self._handle.seek(0, os.SEEK_END)
        self._entries = []

    def close(self) -> None:
        """Close the file handle.  Idempotent."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "DeltaJournal":
        return self

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<DeltaJournal {self.path} records={len(self._entries)} "
            f"last_seq={self._last_seq}>"
        )


class DurableIndexStore:
    """Snapshot + journal in one directory; the server's durable memory.

    Layout: ``<directory>/index.snapshot`` (an atomic
    :meth:`HubIndex.save` file whose ``meta`` records the folded-in
    journal sequence) and ``<directory>/journal.bin`` (a
    :class:`DeltaJournal`).

    Lifecycle::

        store = DurableIndexStore(state_dir)
        index = store.load(graph)          # None on first boot
        if index is None:
            index = HubIndex.build(graph, ...)
            store.install(index)           # base snapshot + empty journal
        ...
        store.record(delta)                # once per completed batch (fsync)
        store.maybe_compact(index)         # folds journal past the threshold

    :meth:`load` replays journal records **after** the snapshot's folded
    sequence through :meth:`HubIndex.merge_delta`, in record order — the
    same ``record_rank`` call sequence the live index executed, so the
    replayed index's ``export_state`` is pickle-identical to a
    never-restarted one's.
    """

    SNAPSHOT_NAME = "index.snapshot"
    JOURNAL_NAME = "journal.bin"
    #: ``meta`` key naming the journal sequence a snapshot folds in.
    META_SEQ = "journal_seq"

    def __init__(
        self,
        directory,
        compact_bytes: int = 4 * 1024 * 1024,
        sync: bool = True,
        registry=None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.directory / self.SNAPSHOT_NAME
        self.journal_path = self.directory / self.JOURNAL_NAME
        self.compact_bytes = compact_bytes
        metrics = registry if registry is not None else get_registry()
        self._journal = DeltaJournal(
            self.journal_path, sync=sync, registry=metrics
        )
        self._base_seq = 0
        self._next_seq = self._journal.last_seq + 1
        #: Compactions performed over this store's lifetime (stats).
        self.compactions = 0
        self._m_compactions = metrics.counter(
            "repro_journal_compactions_total",
            "Journal-into-snapshot compactions performed.",
        )
        self._m_compaction_seconds = metrics.histogram(
            "repro_journal_compaction_seconds",
            "Seconds per compaction (snapshot save + journal reset).",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._m_journal_size = metrics.gauge(
            "repro_journal_size_bytes",
            "Current journal file size (the compaction trigger input).",
        )
        self._m_journal_size.set(self._journal.size_bytes)

    # ------------------------------------------------------------------
    @property
    def journal(self) -> DeltaJournal:
        """The underlying journal (tests and the stats op look at it)."""
        return self._journal

    @property
    def last_seq(self) -> int:
        """Highest sequence recorded (snapshot- or journal-side)."""
        return self._next_seq - 1

    def has_snapshot(self) -> bool:
        """Whether a base snapshot exists on disk."""
        return self.snapshot_path.exists()

    # ------------------------------------------------------------------
    def load(self, graph) -> Optional[HubIndex]:
        """Rebuild the learned index for ``graph``, or ``None`` on first boot.

        Loads the snapshot (validating the graph fingerprint/digest as
        :meth:`HubIndex.load` always does), then merges every journal
        record whose sequence the snapshot does not already fold in.

        Raises
        ------
        JournalCorruptionError
            When journal records exist but no snapshot does — deltas
            alone cannot reconstruct an index (they carry no hubs or
            capacity), and silently dropping them would lose durable
            learning someone paid for.
        IndexParameterError
            When the snapshot does not match ``graph`` (see
            :meth:`HubIndex.load`).
        """
        if not self.snapshot_path.exists():
            if self._journal.num_records:
                raise JournalCorruptionError(
                    f"{self.journal_path} holds {self._journal.num_records} "
                    "journal records but no base snapshot exists at "
                    f"{self.snapshot_path}; the snapshot was deleted or "
                    "never installed — rebuild the index and discard the "
                    "journal"
                )
            return None
        index, meta = HubIndex.load_with_meta(self.snapshot_path, graph)
        self._base_seq = int(meta.get(self.META_SEQ, 0))
        applied = self._base_seq
        for seq, delta in self._journal.entries():
            if seq <= self._base_seq:
                continue  # already folded into the snapshot (compaction crash)
            if delta:
                index.merge_delta(delta)
            applied = seq
        self._next_seq = max(applied, self._journal.last_seq, self._base_seq) + 1
        return index

    def install(self, index: HubIndex) -> None:
        """Install a freshly built index as the store's base state."""
        self.compact(index)
        self.compactions -= 1  # the initial install is not a compaction

    def record(self, delta: HubIndexDelta, sync: Optional[bool] = None) -> int:
        """Journal one batch's learning; returns its sequence number.

        Call *after* :meth:`~repro.core.hub_index.HubIndex.merge_delta`
        (or after the master index learned in place) and *before*
        releasing the batch's responses: once this returns with sync on,
        the learning survives kill -9.
        """
        seq = self._next_seq
        self._journal.append(seq, delta, sync=sync)
        self._next_seq = seq + 1
        self._m_journal_size.set(self._journal.size_bytes)
        return seq

    def maybe_compact(self, index: HubIndex) -> bool:
        """Compact when the journal has outgrown ``compact_bytes``."""
        if self._journal.size_bytes < self.compact_bytes:
            return False
        self.compact(index)
        return True

    def compact(self, index: HubIndex) -> None:
        """Fold the journal into a fresh snapshot, then reset the journal.

        Both steps are individually atomic (temp + fsync + rename); the
        sequence number stored *inside* the snapshot makes the pair
        crash-safe — see the module docstring.
        """
        started = time.perf_counter()
        folded = self.last_seq
        index.save(self.snapshot_path, meta={self.META_SEQ: folded})
        _fsync_directory(self.directory)
        self._journal.reset()
        self._base_seq = folded
        self.compactions += 1
        self._m_compactions.inc()
        self._m_compaction_seconds.observe(time.perf_counter() - started)
        self._m_journal_size.set(self._journal.size_bytes)

    def close(self) -> None:
        """Close the journal handle.  Idempotent."""
        self._journal.close()

    def __enter__(self) -> "DurableIndexStore":
        return self

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<DurableIndexStore {self.directory} last_seq={self.last_seq} "
            f"journal_records={self._journal.num_records}>"
        )
