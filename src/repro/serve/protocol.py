"""Length-prefixed JSON framing for the query service (stdlib only).

One frame is a 4-byte little-endian payload length followed by a UTF-8
JSON document.  JSON keeps the protocol debuggable with ``nc``/``socat``
and — unlike pickle — safe to expose on a socket: a malicious frame can
at worst be malformed, never execute code.  The framing works over any
``SOCK_STREAM`` transport (TCP or a unix domain socket).

Request documents carry an ``op`` key (``"query"``, ``"ping"``,
``"info"``, ``"stats"``, ``"shutdown"``); responses always carry ``ok``
(bool) plus either the op's payload or an ``error`` string (and
``overloaded: true`` when admission control shed the request).  See
:mod:`repro.serve.server` for the op semantics.

Node identifiers travel as their JSON values, so served graphs must use
JSON-representable node ids (ints or strings — every ``python -m
repro.serve`` fixture and dataset loader produces int-keyed graphs).
Rank values are integer-valued doubles well below 2**53, so JSON
round-trips them bit-exactly — the restart smoke job's "answers match
bit-for-bit" check rides on that.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from repro.errors import ProtocolError

__all__ = ["MAX_FRAME_BYTES", "send_message", "recv_message"]

#: Hard cap on one frame's payload, both directions.  Far above any real
#: request or response, low enough that a garbage length prefix (or a
#: client speaking a different protocol) cannot make the server allocate
#: gigabytes.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct("<I")


def send_message(sock: socket.socket, message: dict) -> None:
    """Serialise ``message`` as one length-prefixed JSON frame and send it."""
    payload = json.dumps(
        message, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_message(sock: socket.socket) -> Optional[dict]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Raises
    ------
    ProtocolError
        On EOF mid-frame, an oversized length prefix, a payload that is
        not valid JSON, or a JSON payload that is not an object.
    """
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    payload = _recv_exact(sock, length, eof_ok=False)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def _recv_exact(
    sock: socket.socket, count: int, eof_ok: bool
) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on immediate EOF if allowed."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} "
                "bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
