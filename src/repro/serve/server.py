"""The always-on reverse k-ranks query server.

One resident :class:`~repro.core.engine.ReverseKRanksEngine` (with its
warm hub index and, optionally, its persistent worker pool) answers
queries from many concurrent clients.  Two ideas carry the design:

* **Batch coalescing.**  Per-connection handler threads never touch the
  engine; they enqueue admitted requests with a single :class:`_Batcher`
  thread, which flushes either when ``max_batch`` requests are pending or
  ``max_wait_ms`` after the oldest arrival — a *max-latency window*, so a
  lone query never waits longer than the window, while a burst is folded
  into one :meth:`~repro.core.engine.ReverseKRanksEngine.query_many`
  call that amortises CSR reuse, hub-index learning, and (with
  ``workers > 1``) shard dispatch across every concurrent client.

* **Admission control.**  The pending queue is bounded
  (``max_pending`` *queries*, not requests, so one giant batch cannot
  sneak past the limit).  A request that would overflow it is refused
  *immediately* with ``{"ok": false, "overloaded": true}`` — explicit
  backpressure the client can retry on — instead of queueing unbounded
  work.  Requests are also validated at admission
  (:meth:`~repro.core.engine.ReverseKRanksEngine.validate_batch`), so
  one client's bad node id fails that request alone, never the coalesced
  batch it would have joined.

Durability: with a :class:`~repro.serve.journal.DurableIndexStore`
attached, each flushed batch's learning (captured with the master
index's learning log — which sees both sequential ``record_*`` calls and
parallel merge-backs) is journalled **and fsynced before any of the
batch's responses are released**.  A client that has seen its answer can
therefore kill -9 the server and find the learning still there on
restart; at most the in-flight, unanswered batch is lost.

Protocol (length-prefixed JSON, :mod:`repro.serve.protocol`): requests
are objects with an ``"op"`` key —

``{"op": "query", "queries": [n, ...], "k": K, "algorithm": "indexed"}``
    → ``{"ok": true, "results": [[[node, rank], ...], ...]}`` (one
    pair-list per query, ranks ascending, same order as ``queries``).
``{"op": "ping"}``
    → ``{"ok": true, "pong": true}`` (liveness; never queued).
``{"op": "info"}`` / ``{"op": "stats"}``
    → static configuration / live counters, respectively.
``{"op": "metrics"}``
    → ``{"ok": true, "metrics": "<Prometheus text exposition>"}`` — the
    server's full :class:`~repro.obs.metrics.MetricsRegistry` render
    (engine + pool + batcher, plus journal when the CLI shared one
    registry across all three).
``{"op": "trace", "enable": true|false}``
    → toggles batch tracing on the serving engine (``enable`` optional)
    and returns the last finished batch's span tree, if any.
``{"op": "shutdown"}``
    → acknowledges, then stops the server gracefully.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.engine import ReverseKRanksEngine
from repro.core.config import AlgorithmKind
from repro.errors import ProtocolError, ReproError, ServeError
from repro.serve.journal import DurableIndexStore
from repro.serve.protocol import recv_message, send_message

__all__ = ["ServeConfig", "QueryServer"]


@dataclass
class ServeConfig:
    """Batching and admission knobs for :class:`QueryServer`.

    ``max_batch``
        Flush as soon as this many queries are pending (the coalescing
        ceiling).  ``1`` degenerates to one-query-per-request — the
        baseline the closed-loop benchmark compares against.
    ``max_wait_ms``
        Flush at latest this long after the *oldest* pending query
        arrived — the worst case batching adds to a lone query's
        latency.
    ``max_pending``
        Admission bound, counted in queries: a request whose queries
        would push the pending count past this is refused with an
        overloaded response instead of queued.
    ``workers`` / ``worker_context``
        Passed through to ``query_many``; with ``workers > 1`` each
        coalesced batch is sharded across the engine's persistent
        worker pool.
    ``default_k`` / ``default_algorithm``
        Applied to query requests that omit ``k`` / ``algorithm``.
    ``batch_timeout_s``
        Wall-clock bound on one coalesced batch's *parallel* execution;
        a pool batch that exceeds it has its stuck workers killed and is
        handled per ``on_pool_failure``.  ``None`` (default) waits
        indefinitely (worker crashes still surface via liveness
        polling).
    ``on_pool_failure``
        The engine's graceful-degradation mode (see
        :meth:`~repro.core.engine.ReverseKRanksEngine.query_many`):
        ``"retry"`` (default) retries on a fresh pool then falls back to
        bit-identical sequential execution, ``"sequential"`` falls back
        immediately, ``"raise"`` fails the affected requests.  With
        ``"retry"``/``"sequential"`` the server keeps answering
        correctly while the pool heals (or stays degraded).
    """

    max_batch: int = 64
    max_wait_ms: float = 5.0
    max_pending: int = 1024
    workers: int = 1
    worker_context: Optional[str] = None
    default_k: int = 1
    default_algorithm: str = "dynamic"
    batch_timeout_s: Optional[float] = None
    on_pool_failure: str = "retry"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ServeError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.max_pending < 1:
            raise ServeError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.batch_timeout_s is not None and self.batch_timeout_s <= 0:
            raise ServeError(
                f"batch_timeout_s must be > 0 (or None), got "
                f"{self.batch_timeout_s}"
            )
        if self.on_pool_failure not in ("retry", "sequential", "raise"):
            raise ServeError(
                f"on_pool_failure must be 'retry', 'sequential' or 'raise', "
                f"got {self.on_pool_failure!r}"
            )


class _PendingRequest:
    """One admitted query request waiting for its coalesced batch."""

    __slots__ = ("queries", "k", "kind", "done", "results", "error")

    def __init__(self, queries: List, k: int, kind: AlgorithmKind) -> None:
        self.queries = queries
        self.k = k
        self.kind = kind
        self.done = threading.Event()
        self.results: Optional[List] = None
        self.error: Optional[BaseException] = None

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.done.set()

    def succeed(self, results: List) -> None:
        self.results = results
        self.done.set()


class _Batcher:
    """The single engine-owning thread: coalesce, execute, journal, release.

    Handler threads call :meth:`submit`; this thread wakes on the first
    pending request, sleeps out the remainder of its ``max_wait_ms``
    window (flushing early when ``max_batch`` queries accumulate), then
    drains everything pending, groups it by ``(k, algorithm)`` — requests
    in one group share one ``query_many`` call — and journals the
    learning before completing the requests.
    """

    def __init__(
        self,
        engine: ReverseKRanksEngine,
        config: ServeConfig,
        store: Optional[DurableIndexStore],
        registry=None,
    ) -> None:
        self._engine = engine
        self._config = config
        self._store = store
        self._lock = threading.Condition()
        self._pending: List[_PendingRequest] = []
        self._pending_queries = 0
        self._oldest_arrival: Optional[float] = None
        self._stopping = False
        self._paused = False
        # "Hot" = the engine just finished a batch: anything pending now
        # arrived while it was busy, so flush immediately instead of
        # waiting out the window (the window is a latency cap for
        # arrivals during idle, not a mandatory delay at saturation).
        self._hot = False
        self._idle = threading.Condition(self._lock)
        # Counters live in the metrics registry (shared with the engine
        # unless a dedicated one is injected); the legacy attribute names
        # (`batcher.batches` etc.) are properties over the same samples,
        # keeping the stats/health op payloads byte-compatible with one
        # source of truth.
        metrics = registry if registry is not None else engine.registry
        self._m_batches = metrics.counter(
            "repro_serve_batches_total",
            "Coalesced batches the serve batcher executed.",
        )
        self._m_queries = metrics.counter(
            "repro_serve_queries_total",
            "Queries answered through the serve batcher.",
        )
        self._m_requests = metrics.counter(
            "repro_serve_requests_total",
            "Query requests admitted by the batcher.",
        )
        self._m_overloads = metrics.counter(
            "repro_serve_overloads_total",
            "Requests refused by admission control (max_pending exceeded).",
        )
        self._m_journal_failures = metrics.counter(
            "repro_serve_journal_failures_total",
            "Batches whose journal write failed (responses withheld).",
        )
        flushes = metrics.counter(
            "repro_serve_flushes_total",
            "Batch flushes by trigger: max_batch reached (full), engine "
            "just freed up (hot), or the latency window elapsed (window).",
            labels=("cause",),
        )
        self._m_flush_full = flushes.labels(cause="full")
        self._m_flush_hot = flushes.labels(cause="hot")
        self._m_flush_window = flushes.labels(cause="window")
        self._m_batch_occupancy = metrics.histogram(
            "repro_serve_batch_queries",
            "Queries drained per flushed batch (window occupancy).",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
        )
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )

    # -- legacy counter views (stats/health ops, tests) -----------------
    @property
    def batches(self) -> int:
        return int(self._m_batches.value)

    @property
    def queries(self) -> int:
        return int(self._m_queries.value)

    @property
    def requests(self) -> int:
        return int(self._m_requests.value)

    @property
    def overloads(self) -> int:
        return int(self._m_overloads.value)

    @property
    def journal_failures(self) -> int:
        """Batches whose journal write/fsync failed — their responses
        were withheld (failed loudly) to preserve the durability
        contract."""
        return int(self._m_journal_failures.value)

    def start(self) -> None:
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, request: _PendingRequest) -> bool:
        """Admit ``request`` or refuse it; ``False`` means overloaded."""
        with self._lock:
            if self._stopping:
                request.fail(ServeError("server is shutting down"))
                return True
            if (
                self._pending_queries + len(request.queries)
                > self._config.max_pending
            ):
                self._m_overloads.inc()
                return False
            self._pending.append(request)
            self._pending_queries += len(request.queries)
            self._m_requests.inc()
            if self._oldest_arrival is None:
                self._oldest_arrival = time.monotonic()
            self._lock.notify_all()
            return True

    def pause(self) -> None:
        """Hold flushing (tests use this to build a deterministic batch)."""
        with self._lock:
            self._paused = True

    def resume(self) -> None:
        with self._lock:
            self._paused = False
            self._lock.notify_all()

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is pending (and no flush is mid-air)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._pending or self._pending_queries:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
            return True

    def stop(self) -> None:
        """Stop the thread; pending requests fail with a shutdown error."""
        with self._lock:
            self._stopping = True
            self._paused = False
            self._lock.notify_all()
        self._thread.join()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            self._execute(batch)
            with self._lock:
                self._hot = True
                # _pending_queries still counts the in-flight batch while
                # it executes, so admission control covers queued + running
                # work; release it only now.
                self._pending_queries -= sum(
                    len(request.queries) for request in batch
                )
                if not self._pending and not self._pending_queries:
                    self._idle.notify_all()

    def _collect(self) -> Optional[List[_PendingRequest]]:
        """Wait out the batching window; return the drained batch.

        Returns ``None`` exactly once, at shutdown, after failing any
        stragglers.
        """
        window = self._config.max_wait_ms / 1000.0
        with self._lock:
            while True:
                if self._stopping:
                    for request in self._pending:
                        request.fail(ServeError("server is shutting down"))
                    self._pending.clear()
                    self._pending_queries = 0
                    self._idle.notify_all()
                    return None
                if self._pending and not self._paused:
                    elapsed = time.monotonic() - self._oldest_arrival
                    full = self._pending_queries >= self._config.max_batch
                    if full or self._hot or elapsed >= window:
                        # Attribute the flush to its trigger, in the same
                        # precedence the condition fires.
                        if full:
                            self._m_flush_full.inc()
                        elif self._hot:
                            self._m_flush_hot.inc()
                        else:
                            self._m_flush_window.inc()
                        # Drain at most max_batch queries: the limit caps
                        # the engine call (bounded batch latency), not
                        # just the flush trigger — a backlog is worked
                        # off in max_batch-sized chunks, immediately
                        # (leftovers keep the stale window, so the next
                        # iteration flushes without waiting).  A single
                        # request larger than max_batch still goes
                        # through whole; admission already vetted it.
                        batch: List[_PendingRequest] = []
                        taken = 0
                        while self._pending:
                            request = self._pending[0]
                            size = len(request.queries)
                            if batch and taken + size > self._config.max_batch:
                                break
                            batch.append(self._pending.pop(0))
                            taken += size
                        if not self._pending:
                            self._oldest_arrival = None
                        self._m_batch_occupancy.observe(taken)
                        # _pending_queries intentionally left counting the
                        # batch until execution finishes (see _run).
                        return batch
                    self._lock.wait(window - elapsed)
                elif self._hot:
                    # Responses were just released: closed-loop clients
                    # resubmit within about one socket round trip.  Give
                    # the stream that long before declaring it idle, so a
                    # saturating load never pays the full window between
                    # consecutive batches.
                    self._lock.wait(max(0.001, window / 4))
                    if not self._pending:
                        self._hot = False
                else:
                    # Truly idle: the next arrival starts a fresh window
                    # (it should coalesce with its burst, not flush alone).
                    self._lock.wait()

    def _execute(self, batch: List[_PendingRequest]) -> None:
        """Run one drained batch group-by-group, journal, then release."""
        groups: Dict[Tuple[int, AlgorithmKind], List[_PendingRequest]] = {}
        for request in batch:
            groups.setdefault((request.k, request.kind), []).append(request)
        index = self._engine.index
        for (k, kind), requests in groups.items():
            queries: List = []
            for request in requests:
                queries.extend(request.queries)
            if index is not None:
                index.start_learning_log()
            try:
                try:
                    # cache_size=len(queries): concurrent clients asking
                    # the same (query, k, algorithm) in one window share
                    # a single execution — coalescing's dedupe half.
                    results = self._engine.query_many(
                        queries,
                        k,
                        algorithm=kind,
                        workers=self._config.workers,
                        worker_context=self._config.worker_context,
                        cache_size=len(queries),
                        stats="none",
                        on_pool_failure=self._config.on_pool_failure,
                        batch_timeout=self._config.batch_timeout_s,
                    )
                finally:
                    delta = (
                        index.pop_learning_log() if index is not None else None
                    )
            except BaseException as exc:  # noqa: BLE001 - forwarded per request
                for request in requests:
                    request.fail(exc)
                continue
            # Durability point: the batch's learning hits the fsynced
            # journal BEFORE any response is released, so an answer a
            # client has seen implies learning that survives kill -9.
            # A journal I/O failure therefore fails THIS batch's requests
            # loudly (no response escapes un-fsynced learning) and never
            # the batcher thread — the server keeps serving, and
            # DeltaJournal.append's truncate-back keeps later appends and
            # replay consistent.
            if self._store is not None and delta:
                try:
                    self._store.record(delta)
                    self._store.maybe_compact(index)
                except BaseException as exc:  # noqa: BLE001 - forwarded per request
                    self._m_journal_failures.inc()
                    for request in requests:
                        request.fail(exc)
                    continue
            offset = 0
            for request in requests:
                request.succeed(results[offset:offset + len(request.queries)])
                offset += len(request.queries)
            self._m_batches.inc()
            self._m_queries.inc(len(queries))


class QueryServer:
    """Threaded socket front-end around one resident engine.

    Listens on TCP (``host``/``port``; port ``0`` picks a free one — read
    :attr:`address` after :meth:`start`) or a unix domain socket
    (``unix_path``, which wins when both are given).  One daemon thread
    accepts connections; each connection gets a handler thread that
    speaks the framed-JSON protocol and forwards query ops to the shared
    :class:`_Batcher`.

    Use as a context manager, or pair :meth:`start` with :meth:`stop`.
    ``stop()`` (also reachable via the ``shutdown`` op) closes the
    listener, fails pending requests, closes live connections, and — when
    the server owns a durable store — compacts the journal into a final
    snapshot so the next boot starts with an empty journal.
    """

    def __init__(
        self,
        engine: ReverseKRanksEngine,
        config: Optional[ServeConfig] = None,
        store: Optional[DurableIndexStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        registry=None,
    ) -> None:
        self._engine = engine
        self._config = config or ServeConfig()
        self._store = store
        self._host = host
        self._port = port
        self._unix_path = unix_path
        # One registry per server: defaults to the engine's so a single
        # `metrics` scrape covers batcher + engine + pool (+ journal,
        # when the CLI wired the store to the same registry).
        self.registry = registry if registry is not None else engine.registry
        self._batcher = _Batcher(engine, self._config, store, self.registry)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: Dict[int, socket.socket] = {}
        self._conn_lock = threading.Lock()
        self._conn_ids = iter(range(1, 1 << 62))
        self._stopped = threading.Event()
        self._done = threading.Event()
        self._stop_lock = threading.Lock()
        self._started = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (TCP) — valid after :meth:`start`."""
        if self._listener is None:
            raise ServeError("server is not started")
        if self._unix_path is not None:
            raise ServeError("server is bound to a unix socket, not TCP")
        return self._listener.getsockname()[:2]

    @property
    def engine(self) -> ReverseKRanksEngine:
        return self._engine

    @property
    def batcher(self) -> _Batcher:
        """The batcher (tests pause/resume it for deterministic flushes)."""
        return self._batcher

    # ------------------------------------------------------------------
    def start(self) -> "QueryServer":
        if self._started:
            raise ServeError("server already started")
        self._started = True
        if self._unix_path is not None:
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                os.unlink(self._unix_path)
            except FileNotFoundError:
                pass
            listener.bind(self._unix_path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
        listener.listen(128)
        # Poll with a short timeout instead of blocking forever: closing
        # a listener does not reliably wake a thread parked in accept()
        # (notably on Linux), so stop() would otherwise hang on join.
        listener.settimeout(0.1)
        self._listener = listener
        self._batcher.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block the calling thread until a :meth:`stop` has completed."""
        self._done.wait()

    def stop(self) -> None:
        """Graceful shutdown; idempotent (late callers wait for the first)."""
        with self._stop_lock:
            if self._stopped.is_set():
                already_stopping = True
            else:
                self._stopped.set()
                already_stopping = False
        if already_stopping:
            self._done.wait()
            return
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join()
        self._batcher.stop()
        with self._conn_lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
        # Fold the journal into a parting snapshot: a clean shutdown
        # leaves an empty journal, so the next boot replays nothing.
        if self._store is not None and self._engine.index is not None:
            self._store.compact(self._engine.index)
            self._store.close()
        self._engine.close_pool()
        self._done.set()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by stop()
            conn.settimeout(None)
            conn_id = next(self._conn_ids)
            with self._conn_lock:
                if self._stopped.is_set():
                    conn.close()
                    return
                self._connections[conn_id] = conn
            threading.Thread(
                target=self._handle_connection,
                args=(conn_id, conn),
                name=f"repro-serve-conn-{conn_id}",
                daemon=True,
            ).start()

    def _handle_connection(self, conn_id: int, conn: socket.socket) -> None:
        try:
            while not self._stopped.is_set():
                try:
                    message = recv_message(conn)
                except ProtocolError as exc:
                    self._send_safe(conn, {"ok": False, "error": str(exc)})
                    return
                except OSError:
                    return
                if message is None:
                    return  # client closed cleanly
                try:
                    response, stop_after = self._dispatch(message)
                except BaseException as exc:  # noqa: BLE001 - reply, keep serving
                    response, stop_after = (
                        {"ok": False, "error": f"{type(exc).__name__}: {exc}"},
                        False,
                    )
                if not self._send_safe(conn, response):
                    return
                if stop_after:
                    # Shutdown must come from outside the handler thread:
                    # stop() joins every connection, including this one.
                    threading.Thread(
                        target=self.stop, name="repro-serve-stop", daemon=True
                    ).start()
                    return
        finally:
            with self._conn_lock:
                self._connections.pop(conn_id, None)
            try:
                conn.close()
            except OSError:
                pass

    def _send_safe(self, conn: socket.socket, message: dict) -> bool:
        try:
            send_message(conn, message)
            return True
        except (OSError, ProtocolError):
            return False

    # ------------------------------------------------------------------
    def _dispatch(self, message: dict) -> Tuple[dict, bool]:
        """Handle one request; returns ``(response, stop_after_send)``."""
        op = message.get("op")
        if op == "query":
            return self._op_query(message), False
        if op == "ping":
            return {"ok": True, "pong": True}, False
        if op == "info":
            return self._op_info(), False
        if op == "stats":
            return self._op_stats(), False
        if op == "health":
            return self._op_health(), False
        if op == "metrics":
            return (
                {
                    "ok": True,
                    "content_type": "text/plain; version=0.0.4",
                    "metrics": self.registry.render(),
                },
                False,
            )
        if op == "trace":
            return self._op_trace(message), False
        if op == "shutdown":
            return {"ok": True, "stopping": True}, True
        return {"ok": False, "error": f"unknown op {op!r}"}, False

    def _op_trace(self, message: dict) -> dict:
        """Toggle and/or read batch tracing on the serving engine.

        An optional boolean ``enable`` flips the engine tracer; either
        way the reply carries the current setting plus the most recent
        finished batch trace (``None`` until a traced batch completes).
        """
        tracer = self._engine.tracer
        enable = message.get("enable")
        if enable is not None:
            if not isinstance(enable, bool):
                return {"ok": False, "error": "'enable' must be a boolean"}
            tracer.enabled = enable
        return {
            "ok": True,
            "enabled": tracer.enabled,
            "trace": self._engine.last_trace,
        }

    def _op_query(self, message: dict) -> dict:
        config = self._config
        queries = message.get("queries")
        if queries is None and "query" in message:
            queries = [message["query"]]
        if not isinstance(queries, list) or not queries:
            return {
                "ok": False,
                "error": "query op needs a non-empty 'queries' list "
                "(or a single 'query')",
            }
        k = message.get("k", config.default_k)
        algorithm = message.get("algorithm", config.default_algorithm)
        # Admission-time validation: a bad node / k / algorithm fails THIS
        # request, before it can poison a coalesced batch.
        try:
            kind = self._engine.validate_batch(queries, k, algorithm)
        except (ReproError, ValueError, TypeError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        request = _PendingRequest(list(queries), k, kind)
        if not self._batcher.submit(request):
            return {
                "ok": False,
                "overloaded": True,
                "error": (
                    f"admission queue full "
                    f"(max_pending={config.max_pending} queries); retry"
                ),
            }
        request.done.wait()
        if request.error is not None:
            exc = request.error
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        return {
            "ok": True,
            "results": [
                [[node, rank] for node, rank in result.as_pairs()]
                for result in request.results
            ],
        }

    def _op_info(self) -> dict:
        graph = self._engine.graph
        index = self._engine.index
        config = self._config
        info = {
            "ok": True,
            "pid": os.getpid(),
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "bichromatic": self._engine.is_bichromatic,
            "max_batch": config.max_batch,
            "max_wait_ms": config.max_wait_ms,
            "max_pending": config.max_pending,
            "workers": config.workers,
            "default_k": config.default_k,
            "default_algorithm": config.default_algorithm,
            "has_index": index is not None,
            "durable": self._store is not None,
        }
        if index is not None:
            info["index_capacity"] = index.capacity
            info["index_num_hubs"] = len(index.hubs)
        return info

    def _op_health(self) -> dict:
        """Liveness + self-healing counters (never queued; always answers).

        ``healthy`` means the serving machinery itself is intact (batcher
        thread alive, not stopping); ``degraded`` means the engine's
        circuit breaker gave up on parallel execution and batches run
        sequentially — correct answers, reduced throughput.  The
        worker-level counters come from
        :meth:`~repro.core.engine.ReverseKRanksEngine.pool_health` and
        survive pool rebuilds.
        """
        batcher = self._batcher
        health = {
            "ok": True,
            "healthy": batcher._thread.is_alive() and not self._stopped.is_set(),
            "journal_failures": batcher.journal_failures,
        }
        health.update(self._engine.pool_health())
        return health

    def _op_stats(self) -> dict:
        batcher = self._batcher
        index = self._engine.index
        stats = {
            "ok": True,
            "batches": batcher.batches,
            "queries": batcher.queries,
            "requests": batcher.requests,
            "overloads": batcher.overloads,
        }
        if index is not None:
            stats["index_known_ranks"] = index.num_known_ranks
            stats["index_revision"] = index.revision
        if self._store is not None:
            stats["journal_seq"] = self._store.last_seq
            stats["journal_records"] = self._store.journal.num_records
            stats["journal_bytes"] = self._store.journal.size_bytes
            stats["compactions"] = self._store.compactions
        return stats
