"""Lightweight span tracing with cross-process reassembly.

A :class:`Tracer` records a tree of named spans per batch — monotonic
``time.perf_counter()`` timings, parent/child nesting, small metadata
dicts — and publishes the finished tree as plain JSON-serialisable dicts
on :attr:`Tracer.last_trace`:

.. code-block:: python

    {"trace_id": "9f2c...", "root": {
        "name": "engine.query_many",
        "start_offset_s": 0.0, "duration_s": 0.0123,
        "meta": {"algorithm": "indexed", "queries": 64},
        "children": [...]}}

``start_offset_s`` is relative to the *root span of the process that
recorded it*: wall clocks and ``perf_counter`` epochs are not comparable
across processes, so worker-side spans ship durations + local offsets
only, and the parent grafts each worker's tree under its dispatch span
via :meth:`Tracer.attach`.  The one cross-process invariant worth
asserting is therefore ``worker root duration <= parent dispatch
duration`` — the batch cannot be faster than its slowest worker.

Cross-IPC propagation: the engine passes ``tracer.trace_id`` in each
worker task tuple; the worker enables its private engine's tracer for
exactly that task, roots a ``worker.shard`` span carrying the id, and
returns the finished tree in the result payload.

Disabled mode (the default) is allocation-free on the hot path: ``span``
/ ``trace`` return one shared no-op context manager, and
:attr:`Tracer.spans_created` counts real span objects so tests can
assert the zero.

Tracers are deliberately single-threaded like the engine that owns them
(one batch at a time); the registry handles concurrent metrics instead.
"""

from __future__ import annotations

import time
import uuid
from typing import Any, Dict, List, Optional

__all__ = ["Tracer", "summarize_trace", "NOOP_SPAN"]


class _NoopSpan:
    """Shared do-nothing span for disabled tracers (zero allocations)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc_value, tb) -> bool:
        return False

    def set(self, **meta: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _SpanNode:
    __slots__ = ("name", "meta", "start", "duration", "children")

    def __init__(self, name: str, meta: Dict[str, Any]) -> None:
        self.name = name
        self.meta = meta
        self.start = time.perf_counter()
        self.duration = 0.0
        self.children: List[Any] = []  # _SpanNode or attached plain dicts

    def to_dict(self, root_start: float) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "start_offset_s": self.start - root_start,
            "duration_s": self.duration,
        }
        if self.meta:
            payload["meta"] = self.meta
        if self.children:
            payload["children"] = [
                child.to_dict(root_start)
                if isinstance(child, _SpanNode)
                else child
                for child in self.children
            ]
        return payload


class _ActiveSpan:
    __slots__ = ("_tracer", "_node")

    def __init__(self, tracer: "Tracer", node: _SpanNode) -> None:
        self._tracer = tracer
        self._node = node

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc_value, tb) -> bool:
        if exc_type is not None:
            self._node.meta["error"] = exc_type.__name__
        self._tracer._finish(self._node)
        return False

    def set(self, **meta: Any) -> "_ActiveSpan":
        self._node.meta.update(meta)
        return self


class Tracer:
    """Records one span tree at a time; disabled (and free) by default."""

    __slots__ = (
        "enabled",
        "spans_created",
        "trace_id",
        "last_trace",
        "_stack",
        "_root_start",
    )

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: Real span objects ever allocated — the disabled-overhead probe.
        self.spans_created = 0
        #: Trace id of the active (or most recent) trace.
        self.trace_id: Optional[str] = None
        #: The most recent finished trace: {"trace_id": ..., "root": {...}}.
        self.last_trace: Optional[Dict[str, Any]] = None
        self._stack: List[_SpanNode] = []
        self._root_start = 0.0

    @property
    def active(self) -> bool:
        """Whether a trace is currently open (a root span is on the stack)."""
        return bool(self._stack)

    def trace(self, name: str, trace_id: Optional[str] = None, **meta: Any):
        """Open a new root span (abandoning any unfinished trace).

        ``trace_id`` propagates an id minted elsewhere (the parent process);
        ``None`` mints a fresh one.
        """
        if not self.enabled:
            return NOOP_SPAN
        self._stack = []
        self.trace_id = trace_id if trace_id else uuid.uuid4().hex[:16]
        return self._start(name, meta)

    def span(self, name: str, **meta: Any):
        """Open a child of the innermost open span; no-op outside a trace."""
        if not self.enabled or not self._stack:
            return NOOP_SPAN
        return self._start(name, meta)

    def attach(self, subtrees: List[Dict[str, Any]]) -> None:
        """Graft pre-built span dicts (a worker's tree) under the open span."""
        if self.enabled and self._stack and subtrees:
            self._stack[-1].children.extend(subtrees)

    # -- internals ------------------------------------------------------
    def _start(self, name: str, meta: Dict[str, Any]) -> _ActiveSpan:
        node = _SpanNode(name, meta)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self._root_start = node.start
        self._stack.append(node)
        self.spans_created += 1
        return _ActiveSpan(self, node)

    def _finish(self, node: _SpanNode) -> None:
        node.duration = time.perf_counter() - node.start
        # Close any children abandoned by an exception between their
        # __enter__ and __exit__ (shouldn't happen with `with`, but a
        # wrong nesting must not corrupt the tree).
        while self._stack and self._stack[-1] is not node:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if not self._stack:
            self.last_trace = {
                "trace_id": self.trace_id,
                "root": node.to_dict(self._root_start),
            }


def summarize_trace(
    trace: Optional[Dict[str, Any]], top: int = 5
) -> List[Dict[str, Any]]:
    """Top-``top`` span names by inclusive time: the bench ``trace_summary``.

    Accepts either the ``{"trace_id", "root"}`` envelope or a bare span
    dict; attached worker subtrees are included.  Inclusive time means a
    parent's total contains its children — the ranking answers "which
    phases is the batch inside", not "which leaf burns CPU".
    """
    if not trace:
        return []
    totals: Dict[str, List[float]] = {}

    def walk(span: Any) -> None:
        if not isinstance(span, dict):
            return
        name = span.get("name")
        if isinstance(name, str):
            entry = totals.setdefault(name, [0.0, 0])
            entry[0] += float(span.get("duration_s") or 0.0)
            entry[1] += 1
        for child in span.get("children", ()):
            walk(child)

    walk(trace.get("root", trace))
    ranked = sorted(totals.items(), key=lambda item: (-item[1][0], item[0]))
    return [
        {"name": name, "total_s": total, "count": int(count)}
        for name, (total, count) in ranked[:top]
    ]
