"""Thread-safe metrics primitives with Prometheus text exposition.

One dependency-free registry that every layer of the stack (engine, shard
planner, worker pool, journal, server) writes into, replacing the ad-hoc
per-object counters that previously had to be collected by hand through
``stats``/``health`` op payloads.  Three instrument types:

* :class:`Counter` — monotone float, ``inc(amount)``;
* :class:`Gauge` — settable float, ``set(value)`` / ``inc`` / ``dec``;
* :class:`Histogram` — fixed cumulative buckets, ``observe(value)``.

Each family optionally declares label names; ``family.labels(policy="cost")``
returns (and memoises) the child for that label combination.  A family with
no labels *is* its own child — ``family.inc()`` works directly.

Concurrency: family creation takes the registry lock; every child guards its
hot-path mutation with its own ``threading.Lock``, so increments from the
server's client threads and the batcher thread sum exactly.  Cross-process
aggregation is deliberate non-magic: worker processes own private default
registries, and the parent-side pool records everything observable at the
IPC boundary (bytes, latencies, crashes), which is where cross-layer cost
attribution actually lives.

Disabled mode: :data:`NULL_REGISTRY` (or any ``MetricsRegistry(enabled=
False)``) hands out one shared no-op instrument, so instrumented hot paths
cost a single attribute call and no allocation when observability is off.

``render()`` emits the Prometheus text exposition format (``# HELP`` /
``# TYPE`` / samples, histogram ``_bucket{le=...}`` + ``_sum`` + ``_count``)
without any client library, sorted for deterministic golden-testing.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "MetricsError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_REGISTRY",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS",
]


class MetricsError(ReproError, ValueError):
    """Invalid metric name, label set, or conflicting re-registration."""


#: Default buckets for latency histograms, in seconds (0.5 ms .. 10 s).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    # Prometheus accepts integer or float literals; emit the shortest
    # faithful form so golden tests read naturally.
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        '%s="%s"' % (name, _escape_label(value))
        for name, value in zip(names, values)
    )
    return "{%s}" % inner


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


# ----------------------------------------------------------------------
# Children (one per label combination; the hot-path objects)
# ----------------------------------------------------------------------
class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters are monotone; inc() amount must be >= 0")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        bounds = self._bounds
        index = len(bounds)
        for i, bound in enumerate(bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    def cumulative_counts(self) -> Tuple[int, ...]:
        """Cumulative per-bucket counts (including +Inf), le-inclusive."""
        with self._lock:
            raw = list(self._counts)
        out = []
        running = 0
        for count in raw:
            running += count
            out.append(running)
        return tuple(out)


class _NoopChild:
    """Shared instrument for disabled registries: every method is a no-op."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **labelvalues: str) -> "_NoopChild":
        return self

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def total(self) -> float:
        return 0.0

    def cumulative_counts(self) -> Tuple[int, ...]:
        return ()


_NOOP_CHILD = _NoopChild()


# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------
class _Family:
    kind = ""
    _child_cls = _CounterChild

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not labelnames:
            # A label-less family is its own single child.
            self._children[()] = self._make_child()

    def _make_child(self):
        return self._child_cls()

    def labels(self, **labelvalues: str):
        if set(labelvalues) != set(self.labelnames):
            raise MetricsError(
                "metric %r takes labels %r, got %r"
                % (self.name, self.labelnames, tuple(sorted(labelvalues)))
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _default_child(self):
        if self.labelnames:
            raise MetricsError(
                "metric %r is labelled (%r); call .labels(...) first"
                % (self.name, self.labelnames)
            )
        return self._children[()]

    def samples(self) -> Iterable[Tuple[str, Tuple[str, ...], object]]:
        with self._lock:
            items = sorted(self._children.items())
        return items

    def render(self) -> str:
        raise NotImplementedError


class Counter(_Family):
    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def render(self) -> str:
        lines = [
            "# HELP %s %s" % (self.name, self.help),
            "# TYPE %s counter" % self.name,
        ]
        for key, child in self.samples():
            lines.append(
                "%s%s %s"
                % (
                    self.name,
                    _format_labels(self.labelnames, key),
                    _format_value(child.value),
                )
            )
        return "\n".join(lines)


class Gauge(_Family):
    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def render(self) -> str:
        lines = [
            "# HELP %s %s" % (self.name, self.help),
            "# TYPE %s gauge" % self.name,
        ]
        for key, child in self.samples():
            lines.append(
                "%s%s %s"
                % (
                    self.name,
                    _format_labels(self.labelnames, key),
                    _format_value(child.value),
                )
            )
        return "\n".join(lines)


class Histogram(_Family):
    kind = "histogram"
    _child_cls = _HistogramChild

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...],
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricsError("histogram %r needs at least one bucket" % name)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricsError(
                "histogram %r buckets must be strictly increasing: %r"
                % (name, bounds)
            )
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _make_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def total(self) -> float:
        return self._default_child().total

    def cumulative_counts(self) -> Tuple[int, ...]:
        return self._default_child().cumulative_counts()

    def render(self) -> str:
        lines = [
            "# HELP %s %s" % (self.name, self.help),
            "# TYPE %s histogram" % self.name,
        ]
        bounds = [_format_value(b) for b in self.buckets] + ["+Inf"]
        for key, child in self.samples():
            cumulative = child.cumulative_counts()
            for bound, count in zip(bounds, cumulative):
                names = self.labelnames + ("le",)
                values = key + (bound,)
                lines.append(
                    "%s_bucket%s %d"
                    % (self.name, _format_labels(names, values), count)
                )
            labels = _format_labels(self.labelnames, key)
            lines.append(
                "%s_sum%s %s" % (self.name, labels, _format_value(child.total))
            )
            lines.append("%s_count%s %d" % (self.name, labels, child.count))
        return "\n".join(lines)


class _NoopFamily:
    """Family stand-in handed out by disabled registries."""

    __slots__ = ()

    def labels(self, **labelvalues: str) -> _NoopChild:
        return _NOOP_CHILD

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def total(self) -> float:
        return 0.0


_NOOP_FAMILY = _NoopFamily()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """A named collection of metric families, renderable as Prometheus text.

    Registration is idempotent: asking for an existing name with the same
    type and label set returns the existing family (so the engine and the
    pool can both declare ``repro_worker_crashes_total`` against a shared
    registry and write to one instrument).  Conflicting redeclarations
    raise :class:`MetricsError` — silently forking a family would split
    its samples.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self.enabled = enabled

    # -- registration ---------------------------------------------------
    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        return self._register(Histogram, name, help, labels, buckets=buckets)

    def _register(self, cls, name, help, labels, buckets=None):
        if not self.enabled:
            return _NOOP_FAMILY
        if not _NAME_RE.match(name or ""):
            raise MetricsError("invalid metric name: %r" % (name,))
        labelnames = tuple(labels)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricsError(
                    "invalid label name %r on metric %r" % (label, name)
                )
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != labelnames:
                    raise MetricsError(
                        "metric %r already registered as %s%r; cannot "
                        "re-register as %s%r"
                        % (
                            name,
                            existing.kind,
                            existing.labelnames,
                            cls.kind,
                            labelnames,
                        )
                    )
                if (
                    buckets is not None
                    and existing.buckets != tuple(float(b) for b in buckets)
                ):
                    raise MetricsError(
                        "histogram %r already registered with buckets %r"
                        % (name, existing.buckets)
                    )
                return existing
            if cls is Histogram:
                family = cls(name, help, labelnames, tuple(buckets))
            else:
                family = cls(name, help, labelnames)
            self._families[name] = family
            return family

    # -- reads ----------------------------------------------------------
    def get(self, name: str) -> Optional[_Family]:
        """The family registered under ``name``, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def sample(self, name: str, labels: Optional[dict] = None) -> float:
        """Current value of a counter/gauge sample; ``0.0`` when absent.

        The convenience read the byte-compatible ``stats``/``health`` op
        payloads are derived through.
        """
        family = self.get(name)
        if family is None:
            return 0.0
        try:
            child = family.labels(**labels) if labels else family._default_child()
        except MetricsError:
            return 0.0
        return child.value

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            families = sorted(self._families.items())
        blocks = [family.render() for _, family in families]
        return "\n".join(blocks) + ("\n" if blocks else "")


#: A permanently-disabled registry: hand this to a component to silence it.
NULL_REGISTRY = MetricsRegistry(enabled=False)

# The process-global default registry, used by components that were not
# handed an explicit one (standalone pools, journals opened directly).
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default :class:`MetricsRegistry`."""
    return _DEFAULT_REGISTRY
