"""`repro.obs` — the unified metrics + tracing substrate.

Two halves:

* :mod:`repro.obs.metrics` — a dependency-free, thread-safe
  :class:`MetricsRegistry` (counters / gauges / fixed-bucket histograms
  with labels) with Prometheus text exposition.  Components accept an
  injectable ``registry=``; standalone objects fall back to the
  process-global default from :func:`get_registry`.
* :mod:`repro.obs.trace` — a per-batch span :class:`Tracer` whose trace
  ids ride the worker task tuples so worker-side spans stitch back into
  one tree per batch (``engine.last_trace``, serve ``trace`` op, bench
  ``--trace-dir``).

See the README "Observability" section for the metric catalogue and the
trace JSON schema.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NULL_REGISTRY,
    get_registry,
)
from repro.obs.trace import NOOP_SPAN, Tracer, summarize_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "Tracer",
    "summarize_trace",
    "NOOP_SPAN",
]
