"""Degree centrality.

The paper's *Degree First* hub-selection strategy picks the vertices with the
highest out-degree, reasoning that high-degree vertices are more likely to be
reverse k-ranks results of many queries.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.graph.graph import Graph

NodeId = Hashable

__all__ = ["degree_centrality", "nodes_by_degree"]


def degree_centrality(graph: Graph, normalized: bool = True) -> Dict[NodeId, float]:
    """Out-degree centrality for every node.

    Parameters
    ----------
    graph:
        The graph.
    normalized:
        When ``True`` (default) degrees are divided by ``|V| - 1`` so values
        lie in ``[0, 1]``.
    """
    denominator = max(graph.num_nodes - 1, 1) if normalized else 1
    return {node: graph.out_degree(node) / denominator for node in graph.nodes()}


def nodes_by_degree(graph: Graph, descending: bool = True) -> List[NodeId]:
    """Nodes sorted by out-degree (ties broken by node repr for determinism)."""
    return sorted(
        graph.nodes(),
        key=lambda node: (graph.out_degree(node), repr(node)),
        reverse=descending,
    )
