"""Closeness centrality, exact and sampled.

The paper defines closeness as the reciprocal of *farness*
``C(v) = 1 / sum_u d(u, v)`` and — because exact computation is
O(|V|·|E|) — approximates it by sampling a small number of source vertices
and averaging distances from the samples (Section 5.1, citing [1, 3]).

Both variants are provided:

* :func:`closeness_centrality` — exact, one SSSP per node, only sensible for
  small graphs and used as ground truth in tests;
* :func:`approximate_closeness_centrality` — the sampling estimator that the
  *Closeness First* hub strategy actually uses.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional

from repro.graph.graph import Graph
from repro.graph.views import transpose_view
from repro.traversal.dijkstra import shortest_path_distances

NodeId = Hashable

__all__ = [
    "closeness_centrality",
    "approximate_closeness_centrality",
    "nodes_by_closeness",
]


def closeness_centrality(graph: Graph) -> Dict[NodeId, float]:
    """Exact closeness centrality ``C(v) = 1 / sum_u d(u, v)``.

    Distances *towards* ``v`` are required (the definition sums ``d(u, v)``),
    so a single SSSP per node on the transpose graph is used.  Unreachable
    pairs contribute nothing (they are skipped rather than adding infinity),
    matching the usual treatment on disconnected graphs.  Nodes that no other
    node can reach get centrality ``0``.
    """
    reverse = transpose_view(graph)
    centrality: Dict[NodeId, float] = {}
    for node in graph.nodes():
        distances = shortest_path_distances(reverse, node)
        farness = sum(
            distance for other, distance in distances.items() if other != node
        )
        centrality[node] = 1.0 / farness if farness > 0 else 0.0
    return centrality


def approximate_closeness_centrality(
    graph: Graph,
    num_samples: int = 16,
    rng: Optional[random.Random] = None,
) -> Dict[NodeId, float]:
    """Sampled closeness centrality.

    ``num_samples`` source vertices are drawn uniformly at random; distances
    from each sample to every vertex are computed with one SSSP run per
    sample, and the farness of a vertex is estimated from the sampled
    distances scaled up to the full population.

    Parameters
    ----------
    graph:
        The graph.
    num_samples:
        Number of sampled sources (clamped to ``|V|``).
    rng:
        Random generator for reproducibility.
    """
    rng = rng or random.Random(0)
    nodes: List[NodeId] = list(graph.nodes())
    if not nodes:
        return {}
    num_samples = min(num_samples, len(nodes))
    samples = rng.sample(nodes, num_samples)

    totals: Dict[NodeId, float] = {node: 0.0 for node in nodes}
    counts: Dict[NodeId, int] = {node: 0 for node in nodes}
    for sample in samples:
        # d(sample, v) for all v: one SSSP from the sample on the original
        # graph (distances *from* samples approximate the farness sum).
        distances = shortest_path_distances(graph, sample)
        for node, distance in distances.items():
            if node == sample:
                continue
            totals[node] += distance
            counts[node] += 1

    scale = max(len(nodes) - 1, 1)
    centrality: Dict[NodeId, float] = {}
    for node in nodes:
        if counts[node] == 0:
            centrality[node] = 0.0
            continue
        estimated_farness = totals[node] / counts[node] * scale
        centrality[node] = 1.0 / estimated_farness if estimated_farness > 0 else 0.0
    return centrality


def nodes_by_closeness(
    graph: Graph,
    approximate: bool = True,
    num_samples: int = 16,
    rng: Optional[random.Random] = None,
) -> List[NodeId]:
    """Nodes sorted by (approximate) closeness centrality, most central first."""
    if approximate:
        centrality = approximate_closeness_centrality(graph, num_samples=num_samples, rng=rng)
    else:
        centrality = closeness_centrality(graph)
    return sorted(
        graph.nodes(),
        key=lambda node: (centrality[node], repr(node)),
        reverse=True,
    )
