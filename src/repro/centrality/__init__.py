"""Centrality measures used for hub selection (paper Section 5.1).

* :func:`~repro.centrality.degree.degree_centrality` backs the
  *Degree First* hub-selection strategy;
* :func:`~repro.centrality.closeness.closeness_centrality` (exact) and
  :func:`~repro.centrality.closeness.approximate_closeness_centrality`
  (sampled, following Eppstein-Wang style estimation as cited by the paper)
  back the *Closeness First* strategy.
"""

from repro.centrality.degree import degree_centrality, nodes_by_degree
from repro.centrality.closeness import (
    closeness_centrality,
    approximate_closeness_centrality,
    nodes_by_closeness,
)

__all__ = [
    "degree_centrality",
    "nodes_by_degree",
    "closeness_centrality",
    "approximate_closeness_centrality",
    "nodes_by_closeness",
]
