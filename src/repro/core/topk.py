"""Top-k proximity queries and the agreement rate (paper Section 6.2).

The effectiveness study compares what a plain top-k (k-nearest) query, a
reverse top-k query and a reverse k-ranks query each return.  This module
provides the top-k side plus the *agreement rate* metric used for Table 4.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Set, Union

from repro.core.types import QueryResult
from repro.traversal.knn import k_nearest_nodes

NodeId = Hashable
NodeCollection = Union[QueryResult, Iterable[NodeId]]

__all__ = ["top_k_nodes", "agreement_rate"]


def top_k_nodes(graph, source: NodeId, k: int) -> List[NodeId]:
    """The ``k`` nodes nearest to ``source``, nearest first.

    Thin convenience over :func:`~repro.traversal.knn.k_nearest_nodes` that
    drops the distances, matching how the effectiveness tables list results.
    """
    return [node for node, _ in k_nearest_nodes(graph, source, k)]


def _node_set(collection: NodeCollection) -> Set[NodeId]:
    if isinstance(collection, QueryResult):
        return set(collection.nodes())
    return set(collection)


def agreement_rate(first: NodeCollection, second: NodeCollection) -> float:
    """Jaccard agreement between two result node sets.

    Accepts :class:`~repro.core.types.QueryResult` objects or plain node
    iterables.  Two empty results agree perfectly (rate ``1.0``).
    """
    left = _node_set(first)
    right = _node_set(second)
    if not left and not right:
        return 1.0
    return len(left & right) / len(left | right)
