"""The running top-k result set ``R`` and its ``kRank`` bound.

Every algorithm in the framework maintains the set ``R`` of the ``k`` lowest
``Rank(p, q)`` values seen so far; the largest of those values (``kRank``)
drives all pruning.  :class:`TopKRankCollector` encapsulates that logic with
deterministic tie-breaking so that repeated runs produce identical results.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.types import QueryStats, QueryResult, RankedNode

NodeId = Hashable

__all__ = ["TopKRankCollector"]


class TopKRankCollector:
    """Maintains the ``k`` best (lowest-rank) nodes seen so far.

    Ties at the boundary are resolved in favour of the node with the smaller
    ``repr`` so results are deterministic regardless of traversal order.

    Parameters
    ----------
    k:
        Result size.
    """

    __slots__ = ("_k", "_heap", "_members")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self._k = k
        # Max-heap on (rank, tie_key) implemented by negating the comparison:
        # Python's heapq is a min-heap, so store (-rank, neg_tie_key, node).
        # The tie key must also be inverted; we store the repr string and
        # rely on a wrapper tuple with reversed lexicographic semantics.
        self._heap: List[Tuple[float, _ReversedStr, NodeId]] = []
        self._members: Dict[NodeId, float] = {}

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """The requested result size."""
        return self._k

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._members

    def rank_of(self, node: NodeId) -> Optional[float]:
        """Rank of ``node`` if it is currently in the collector."""
        return self._members.get(node)

    @property
    def k_rank(self) -> float:
        """The pruning bound ``kRank``.

        Equal to the largest rank currently held once ``k`` entries have
        accumulated, and ``inf`` before that (nothing can be pruned until the
        result set is full, exactly as in the paper).
        """
        if len(self._members) < self._k:
            return float("inf")
        return -self._heap[0][0]

    def is_full(self) -> bool:
        """Whether ``k`` entries have been collected."""
        return len(self._members) >= self._k

    # ------------------------------------------------------------------
    def offer(self, node: NodeId, rank: float) -> bool:
        """Offer a candidate; returns ``True`` if it (now) belongs to ``R``.

        A node already present is updated only if the new rank is smaller
        (ranks are exact, so this should not normally happen, but the indexed
        algorithm may re-offer a node whose rank was seeded from the index).
        """
        existing = self._members.get(node)
        if existing is not None:
            if rank >= existing:
                return True
            self._remove(node)

        if len(self._members) < self._k:
            self._push(node, rank)
            return True

        worst_rank = -self._heap[0][0]
        worst_key = self._heap[0][1].value
        if rank > worst_rank:
            return False
        if rank == worst_rank and repr(node) >= worst_key:
            return False
        # Evict the current worst and insert the new node.
        _, __, worst_node = heapq.heappop(self._heap)
        del self._members[worst_node]
        self._push(node, rank)
        return True

    def _push(self, node: NodeId, rank: float) -> None:
        heapq.heappush(self._heap, (-rank, _ReversedStr(repr(node)), node))
        self._members[node] = rank

    def _remove(self, node: NodeId) -> None:
        del self._members[node]
        self._heap = [entry for entry in self._heap if entry[2] != node]
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------
    def as_result(
        self,
        query: NodeId,
        stats: Optional[QueryStats] = None,
        algorithm: str = "",
    ) -> QueryResult:
        """Freeze the collected entries into a :class:`QueryResult`."""
        entries = sorted(
            (RankedNode.make(node, rank) for node, rank in self._members.items()),
            key=lambda entry: (entry.rank, entry.sort_key),
        )
        return QueryResult(
            query=query,
            k=self._k,
            entries=entries,
            stats=stats or QueryStats(),
            algorithm=algorithm,
        )

    def items(self) -> List[Tuple[NodeId, float]]:
        """Current ``(node, rank)`` pairs sorted by rank."""
        return sorted(self._members.items(), key=lambda pair: (pair[1], repr(pair[0])))


class _ReversedStr:
    """String wrapper with reversed ordering (for the max-heap tie break).

    In the max-heap (min-heap over negated ranks) we want the *largest*
    ``repr`` to be considered "worst" among equal ranks, so that
    :meth:`TopKRankCollector.offer` keeps the lexicographically smallest
    node identifiers — making tie-breaking globally deterministic.
    """

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __lt__(self, other: "_ReversedStr") -> bool:
        return self.value > other.value

    def __le__(self, other: "_ReversedStr") -> bool:
        return self.value >= other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReversedStr) and self.value == other.value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"_ReversedStr({self.value!r})"
