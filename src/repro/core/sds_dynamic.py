"""The Dynamic Bounded SDS-tree algorithm (paper Section 4).

Identical traversal skeleton to the static SDS-tree, but each settled
candidate is first tested against the Theorem-2 lower bound (parent rank,
tree-height and visit-count components); candidates whose bound already
reaches ``kRank`` skip rank refinement entirely.  The active components are
selectable via :class:`~repro.core.config.BoundSet`, which is how the paper's
``Dynamic-Parent`` / ``Dynamic-Count`` / ``Dynamic-Height`` / ``Dynamic-Three``
ablations (Section 6.3.2) are expressed.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from repro.core.config import BoundSet
from repro.core.framework import SDSTreeSearch
from repro.core.types import QueryResult

NodeId = Hashable
Predicate = Callable[[NodeId], bool]

__all__ = ["dynamic_reverse_k_ranks"]


def dynamic_reverse_k_ranks(
    graph,
    query: NodeId,
    k: int,
    bounds: Optional[BoundSet] = None,
    candidate: Optional[Predicate] = None,
    counted: Optional[Predicate] = None,
    backend=None,
    arena=None,
) -> QueryResult:
    """Answer a reverse k-ranks query with the Dynamic Bounded SDS-tree.

    Parameters
    ----------
    bounds:
        Active lower-bound components; defaults to
        :meth:`BoundSet.all` (``Dynamic-Three``).  The count component is
        automatically ignored by the framework on directed graphs and in
        bichromatic mode, where Lemmas 3/4 do not apply.
    backend:
        Optional fresh :class:`~repro.graph.csr.CompactGraph` compilation
        of ``graph``; the traversal then runs on the CSR fast path with
        bit-identical results and stats.
    arena:
        Optional reusable :class:`~repro.traversal.arena.ScratchArena`
        (results and stats are identical with or without it).
    """
    active = BoundSet.all() if bounds is None else bounds
    search = SDSTreeSearch(
        graph,
        query,
        k,
        bounds=active,
        candidate=candidate,
        counted=counted,
        backend=backend,
        arena=arena,
    )
    return search.run()
